//! BEAR reproduction umbrella crate.
