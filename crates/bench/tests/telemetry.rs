//! Guard tests for the observability layer's two core promises:
//!
//! 1. **Telemetry is free when off and harmless when on** — a cell's
//!    JSON-serialized stats are byte-identical whether or not a sink
//!    armed it (telemetry is read-only by construction; this pins it).
//! 2. **Resume never duplicates telemetry** — a checkpoint-cached cell
//!    returns before the sink is consulted, so rerunning a finished
//!    campaign neither re-simulates nor rewrites (or tears) its sample
//!    files.
//! 3. **The metrics registry rides the same double gate** — arming a
//!    campaign-wide registry records the cell's attributed decomposition
//!    without changing a single report byte, and with the registry off
//!    the run is byte-identical to one that never heard of metrics.
//!
//! The sink, checkpoint, and metrics registries are process-wide, so
//! everything runs in a single `#[test]` to keep activation windows
//! disjoint.

use bear_bench::checkpoint::{self, cell_stem, CellStore};
use bear_bench::metrics;
use bear_bench::report::{stats_to_json, Json};
use bear_bench::telemetry::{self, TelemetrySink};
use bear_bench::try_run_one;
use bear_core::config::{BearFeatures, DesignKind, SystemConfig};
use std::fs;
use std::path::PathBuf;

const WINDOW: u64 = 8_000;

fn config() -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline(DesignKind::Alloy);
    cfg.bear = BearFeatures::full();
    cfg.scale_shift = 12;
    cfg.warmup_cycles = 20_000;
    cfg.measure_cycles = 50_000;
    cfg
}

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bear_telemetry_guard_{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn telemetry_off_is_free_and_resume_does_not_duplicate() {
    let dir = tmp_dir();
    let cfg = config();
    let workload = bear_workloads::rate_workloads().remove(0);

    // Phase 1: identical reports with and without an active sink.
    let plain = try_run_one(&cfg, &workload).expect("plain run");
    let plain_json = stats_to_json(&plain).to_string_pretty();
    telemetry::set_active(Some(TelemetrySink::new(&dir, Some(WINDOW))));
    let armed = try_run_one(&cfg, &workload).expect("armed run");
    telemetry::set_active(None);
    let armed_json = stats_to_json(&armed).to_string_pretty();
    assert_eq!(
        plain_json, armed_json,
        "arming telemetry must not change a single byte of the report"
    );

    // The sink wrote one JSONL file: one line per window, each line valid
    // JSON, and the windows sum back to the run's aggregates.
    let jsonl_path = dir
        .join("telemetry")
        .join(format!("{}.jsonl", cell_stem(&cfg, &workload)));
    let text = fs::read_to_string(&jsonl_path).expect("sample file exists");
    let expected_windows = cfg.measure_cycles.div_ceil(WINDOW) as usize;
    assert_eq!(text.lines().count(), expected_windows);
    let mut lookup_sum = 0u64;
    let mut mem_sum = 0u64;
    for line in text.lines() {
        let doc = Json::parse(line).expect("every JSONL line re-parses");
        lookup_sum += doc
            .get("l4")
            .and_then(|l4| l4.get("read_lookups"))
            .and_then(Json::as_u64)
            .expect("l4.read_lookups present");
        mem_sum += doc
            .get("bytes")
            .and_then(|b| b.get("mem"))
            .and_then(Json::as_u64)
            .expect("bytes.mem present");
    }
    assert_eq!(lookup_sum, plain.l4.read_lookups, "window sums == totals");
    assert_eq!(mem_sum, plain.mem_bytes, "window sums == totals");

    // Phase 1b: the metrics registry obeys the same double gate. An
    // armed registry must observe the cell (non-empty, attributed bytes
    // recorded) while the stats stay byte-identical to the plain run.
    let reg = bear_telemetry::Registry::new();
    metrics::set_active(Some(reg.clone()));
    let metered = try_run_one(&cfg, &workload).expect("metered run");
    metrics::set_active(None);
    assert_eq!(
        plain_json,
        stats_to_json(&metered).to_string_pretty(),
        "arming the metrics registry must not change a single report byte"
    );
    assert!(!reg.is_empty(), "the armed registry saw the cell");
    let attributed: u64 = bear_telemetry::CACHE_BYTE_KEYS
        .iter()
        .map(|key| {
            reg.counter(
                "bear_cell_cache_bytes_total",
                &[
                    ("design", cfg.design.label()),
                    ("workload", &workload.name),
                    ("category", key),
                ],
            )
            .get()
        })
        .sum();
    assert_eq!(
        attributed,
        plain.bloat.total_bytes(),
        "registry counters carry the full attributed decomposition"
    );
    // And a disarmed follow-up run records nothing new.
    let before = reg.len();
    let unmetered = try_run_one(&cfg, &workload).expect("unmetered run");
    assert_eq!(plain_json, stats_to_json(&unmetered).to_string_pretty());
    assert_eq!(
        reg.len(),
        before,
        "a disarmed run must not touch the registry"
    );

    // Phase 2: resume. Commit the cell to a checkpoint store, delete its
    // sample file, then rerun with both store and sink active: the cached
    // cell must come back from disk without the sample file reappearing.
    checkpoint::set_active(Some(CellStore::new(&dir, "guard")));
    telemetry::set_active(Some(TelemetrySink::new(&dir, Some(WINDOW))));
    let first = try_run_one(&cfg, &workload).expect("fresh checkpointed run");
    fs::remove_file(&jsonl_path).expect("drop the sample file");
    let resumed = try_run_one(&cfg, &workload).expect("resumed run");
    telemetry::set_active(None);
    checkpoint::set_active(None);
    assert_eq!(first, resumed, "resume returns the committed stats");
    assert!(
        !jsonl_path.exists(),
        "a checkpoint-cached cell must not re-arm or rewrite telemetry"
    );

    fs::remove_dir_all(&dir).ok();
}
