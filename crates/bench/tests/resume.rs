//! Campaign fault-tolerance integration tests.
//!
//! The headline acceptance check for the checkpoint/resume layer: a
//! campaign killed with SIGKILL mid-flight, rerun with the same
//! `--out DIR`, resumes from the committed cells and produces a merged
//! report **byte-identical** to an uninterrupted campaign.

use bear_bench::checkpoint::{self, CellStore};
use bear_bench::{config_for, try_run_one, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bear_resume_{tag}_{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn in_process_resume_reloads_identical_stats() {
    let dir = tmp("inproc");
    let plan = RunPlan {
        warmup: 2_000,
        measure: 3_000,
        scale_shift: 12,
    };
    let cfg = config_for(DesignKind::Alloy, BearFeatures::full(), &plan);
    let workload = bear_workloads::rate_workloads().remove(0);
    checkpoint::set_active(Some(CellStore::new(&dir, "itest")));
    let first = try_run_one(&cfg, &workload).expect("first run");
    let resumed = try_run_one(&cfg, &workload).expect("resumed run");
    checkpoint::set_active(None);
    assert_eq!(
        first, resumed,
        "a reloaded cell must round-trip bit-for-bit"
    );
    let committed = fs::read_dir(dir.join("cells/itest"))
        .expect("cells directory")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "done"))
        .count();
    assert_eq!(committed, 1);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn cell_torn_by_a_kill_mid_store_is_rerun_not_trusted() {
    let dir = tmp("torn");
    let plan = RunPlan {
        warmup: 2_000,
        measure: 3_000,
        scale_shift: 12,
    };
    let cfg = config_for(DesignKind::Alloy, BearFeatures::full(), &plan);
    let workload = bear_workloads::rate_workloads().remove(0);
    checkpoint::set_active(Some(CellStore::new(&dir, "torn")));
    let first = try_run_one(&cfg, &workload).expect("first run");

    // Truncate the committed data file while its `.done` marker stands —
    // the artifact a `kill -9` (or a torn page-cache flush) can leave
    // between a cell's data write and its durability.
    let store = CellStore::new(&dir, "torn");
    let path = store
        .committed_path(&cfg, &workload)
        .expect("cell must be committed");
    let bytes = fs::read(&path).expect("committed cell bytes");
    fs::write(&path, &bytes[..bytes.len() / 2]).expect("tearing cell");
    assert!(
        store.load(&cfg, &workload).is_none(),
        "a torn cell must fail its digest check, not parse"
    );

    // The resumed run must re-simulate (not trust the torn bytes), land
    // on identical stats, and leave the cell loadable again.
    let resumed = try_run_one(&cfg, &workload).expect("resumed run");
    checkpoint::set_active(None);
    assert_eq!(
        first, resumed,
        "re-running a torn cell must reproduce the original stats"
    );
    assert!(
        store.load(&cfg, &workload).is_some(),
        "the re-run must recommit a digest-valid cell"
    );
    fs::remove_dir_all(&dir).ok();
}

/// The campaign under test: `all_experiments --only fig07 --out DIR`,
/// scaled down but long enough (~seconds) that a kill lands mid-run.
fn campaign_cmd(out: &Path) -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_all_experiments"));
    c.args(["--only", "fig07", "--out"])
        .arg(out)
        .env("BEAR_QUICK", "1")
        .env("BEAR_WARMUP", "50000")
        .env("BEAR_CYCLES", "150000")
        .env("BEAR_SCALE", "12")
        .env("BEAR_WORKERS", "2")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    c
}

fn done_cells(cells: &Path) -> usize {
    fs::read_dir(cells)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "done"))
                .count()
        })
        .unwrap_or(0)
}

#[test]
fn killed_campaign_resumes_to_byte_identical_report() {
    let dir_killed = tmp("killed");
    let dir_fresh = tmp("fresh");

    // Start a campaign, wait until at least two cells are committed, then
    // SIGKILL it (`Child::kill` is SIGKILL on unix) — no destructors, no
    // flushing, the harshest interrupt available.
    let mut child = campaign_cmd(&dir_killed).spawn().expect("spawn campaign");
    let cells = dir_killed.join("cells/fig07");
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        if done_cells(&cells) >= 2 || child.try_wait().expect("try_wait").is_some() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "campaign committed no cells in time"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    // (If the campaign was so fast it already finished, the rerun below
    // still exercises the every-cell-cached path.)
    child.kill().ok();
    child.wait().expect("reap child");
    let committed_before_resume = done_cells(&cells);

    // Resume in the same directory: must finish cleanly.
    let status = campaign_cmd(&dir_killed).status().expect("resume campaign");
    assert!(status.success(), "resumed campaign failed");
    assert!(
        done_cells(&cells) >= committed_before_resume,
        "resume must keep committed cells"
    );

    // Uninterrupted reference campaign in a clean directory.
    let status = campaign_cmd(&dir_fresh).status().expect("fresh campaign");
    assert!(status.success(), "fresh campaign failed");

    let resumed = fs::read(dir_killed.join("fig07.json")).expect("resumed report");
    let fresh = fs::read(dir_fresh.join("fig07.json")).expect("fresh report");
    assert!(!resumed.is_empty());
    assert_eq!(
        resumed, fresh,
        "report after kill -9 + resume must be byte-identical to an \
         uninterrupted campaign"
    );

    fs::remove_dir_all(&dir_killed).ok();
    fs::remove_dir_all(&dir_fresh).ok();
}
