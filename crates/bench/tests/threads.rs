//! Thread-invariance property test for the channel-sharded run loop.
//!
//! The sharded span advance claims `BEAR_SIM_THREADS` is purely a
//! wall-clock knob: any thread count must produce the *identical*
//! simulation — same observable-event stream, same statistics, same
//! attribution ledger, same report bytes. This test pins that contract
//! where it is hardest to keep: the four adversarial trace generators
//! (set-conflict storms, dirty-eviction floods, duel-set thrash, NTC
//! neighbor aliasing) crossed with the paper's B/BD/BDN/BEAR feature
//! ladder, each replayed at 1, 2, 4, and 7 threads (odd counts catch
//! uneven channel/worker splits).

use bear_bench::report::Report;
use bear_bench::RunPlan;
use bear_core::config::DesignKind;
use bear_core::system::System;
use bear_oracle::fuzz::{quick_config, trace_for, FeatureSet, FuzzCase};
use bear_workloads::{AdversarialPattern, ScriptedTrace, TraceSource};

/// The B/BD/BDN/BEAR rungs of the technique ladder.
const RUNGS: [FeatureSet; 4] = [
    FeatureSet::None,
    FeatureSet::Bab,
    FeatureSet::BabDcp,
    FeatureSet::Full,
];

/// Thread counts under test: serial, even splits, and a prime count that
/// cannot divide the channel set evenly.
const THREADS: [usize; 4] = [1, 2, 4, 7];

/// Everything an observer can extract from one run, rendered to bytes.
struct Fingerprint {
    events: String,
    stats: String,
    ledger: String,
    report: String,
}

/// Replays `case`'s trace at `threads` shard threads and fingerprints
/// every observable surface.
fn fingerprint(case: &FuzzCase, threads: usize) -> Fingerprint {
    let cfg = quick_config(case.design, case.features);
    let src: Box<dyn TraceSource> = Box::new(ScriptedTrace::new(
        case.pattern.label(),
        trace_for(case).to_vec(),
    ));
    let mut sys = System::build_with_sources(&cfg, vec![src]).expect("valid fuzz config");
    sys.set_event_driven(true);
    sys.set_sim_threads(threads);
    sys.set_observe(true);
    let stats = sys.run(0, case.cycles);
    sys.quiesce(case.quiesce_budget);
    let events = format!("{:?}", sys.drain_events());
    let ledger = format!("{:?}", sys.l4_cache().harness().ledger());
    let plan = RunPlan {
        warmup: 0,
        measure: case.cycles,
        scale_shift: cfg.scale_shift,
    };
    let mut report = Report::new("threads_invariance");
    report.add_run(case.pattern.label(), &stats, None);
    Fingerprint {
        events,
        stats: format!("{stats:?}"),
        ledger,
        report: report.to_json(&plan).to_string_pretty(),
    }
}

#[test]
fn thread_count_is_invisible_across_adversarial_grid() {
    for pattern in AdversarialPattern::ALL {
        for features in RUNGS {
            let mut case = FuzzCase::new(DesignKind::Alloy, features, pattern, 0xBEA2);
            case.cycles = 6_000;
            case.trace_len = 1_500;
            let baseline = fingerprint(&case, THREADS[0]);
            for &threads in &THREADS[1..] {
                let run = fingerprint(&case, threads);
                let cell = format!("{}/{}@t{threads}", pattern.label(), features.label());
                assert_eq!(
                    baseline.events, run.events,
                    "{cell}: ObsEvent stream diverged from serial"
                );
                assert_eq!(
                    baseline.stats, run.stats,
                    "{cell}: run statistics diverged from serial"
                );
                assert_eq!(
                    baseline.ledger, run.ledger,
                    "{cell}: attribution ledger diverged from serial"
                );
                assert_eq!(
                    baseline.report, run.report,
                    "{cell}: report bytes diverged from serial"
                );
            }
        }
    }
}
