//! Seed-determinism regression tests: the same (config, workload, seed)
//! must produce bit-identical `RunStats` whether run twice in-process or
//! through the parallel runner. This is what makes experiment logs
//! diffable and the JSON reports reproducible.

use bear_bench::runner::{run_matrix, run_suite};
use bear_bench::{config_for, run_one, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};
use bear_workloads::{rate_workloads, Workload};

fn tiny_plan() -> RunPlan {
    RunPlan {
        warmup: 1_000,
        measure: 2_000,
        scale_shift: 12,
    }
}

fn tiny_suite() -> Vec<Workload> {
    rate_workloads()
        .into_iter()
        .filter(|w| ["rate:gcc", "rate:mcf", "rate:libquantum"].contains(&w.name.as_str()))
        .collect()
}

#[test]
fn rerun_is_bit_identical() {
    let plan = tiny_plan();
    let suite = tiny_suite();
    for (design, bear) in [
        (DesignKind::Alloy, BearFeatures::none()),
        (DesignKind::Alloy, BearFeatures::full()),
        (DesignKind::LohHill, BearFeatures::none()),
    ] {
        let cfg = config_for(design, bear, &plan);
        for w in &suite {
            let a = run_one(&cfg, w);
            let b = run_one(&cfg, w);
            assert_eq!(a, b, "rerun diverged for {} on {}", a.design, w.name);
        }
    }
}

#[test]
fn parallel_runner_matches_serial_reference() {
    let plan = tiny_plan();
    let suite = tiny_suite();
    let cfgs = [
        config_for(DesignKind::Alloy, BearFeatures::none(), &plan),
        config_for(DesignKind::Alloy, BearFeatures::full(), &plan),
    ];

    // Serial reference, straight through run_one.
    let reference: Vec<Vec<_>> = cfgs
        .iter()
        .map(|cfg| suite.iter().map(|w| run_one(cfg, w)).collect())
        .collect();

    let via_suite: Vec<Vec<_>> = cfgs.iter().map(|cfg| run_suite(cfg, &suite)).collect();
    let via_matrix = run_matrix(&cfgs, &suite);

    assert_eq!(reference, via_suite, "run_suite diverged from run_one");
    assert_eq!(reference, via_matrix, "run_matrix diverged from run_one");
}
