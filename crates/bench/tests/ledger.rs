//! Property test for the bandwidth-attribution ledger's conservation
//! law: every DRAM byte the simulator moves must be attributed to
//! exactly one `BloatCategory`/`MemTraffic` source.
//!
//! Each case runs a full oracle lockstep (which arms the per-tick
//! attribution-conservation invariant and, once the system drains,
//! `bear_oracle::audit::audit_ledger` — an exact per-class and total
//! comparison of the ledger against both devices' byte meters). The grid
//! crosses all four adversarial trace generators with the paper's
//! B/BD/BDN/BEAR feature ladder, so the law holds under set-conflict
//! storms, dirty-eviction floods, duel-set thrash, and NTC neighbor
//! aliasing alike — on every rung of the technique stack.

use bear_core::config::DesignKind;
use bear_oracle::fuzz::{run_case, FeatureSet, FuzzCase};
use bear_workloads::AdversarialPattern;

/// The B/BD/BDN/BEAR rungs (`bloat_ledger`'s ladder, oracle-side).
const RUNGS: [FeatureSet; 4] = [
    FeatureSet::None,
    FeatureSet::Bab,
    FeatureSet::BabDcp,
    FeatureSet::Full,
];

#[test]
fn attributed_bytes_conserve_across_adversarial_grid() {
    for pattern in AdversarialPattern::ALL {
        for features in RUNGS {
            let mut case = FuzzCase::new(DesignKind::Alloy, features, pattern, 0xBEA2);
            // Short but drain-complete: the post-drain ledger audit is
            // the exact equality this test exists for.
            case.cycles = 6_000;
            case.trace_len = 1_500;
            let report = run_case(&case).unwrap_or_else(|e| {
                panic!(
                    "{}/{}: attribution conservation violated: {e}",
                    pattern.label(),
                    features.label()
                )
            });
            assert!(
                report.drained,
                "{}/{}: system failed to drain, so the ledger audit never ran",
                pattern.label(),
                features.label()
            );
            assert!(report.cycles > 0);
        }
    }
}
