//! End-to-end chaos recovery proof.
//!
//! Drives the quick fig07 campaign under the pinned chaos seed — worker
//! panics, stalls, torn checkpoints, failed fsyncs, and whole-process
//! kills, all injected deterministically — and asserts the supervision
//! layer's headline guarantees:
//!
//! - the campaign completes (within the restart budget) and its reports
//!   materialize with every row present;
//! - every cell the chaos run recovered is **byte-identical** to the
//!   fault-free reference run;
//! - cells that exhaust their retries are quarantined into
//!   `failures.json` and tagged in the report, never silently dropped;
//! - every fault class in [`ChaosKind::ALL`] observably fired.
//!
//! The `chaos` binary runs the same proof from the command line;
//! `scripts/verify.sh` wires it into CI and records the recovery
//! overhead in `BENCH_chaos.json`.

use bear_bench::chaos::{drive, DriveConfig, SMOKE_SEED};
use bear_sim::faultinject::ChaosKind;
use std::fs;
use std::path::PathBuf;

#[test]
fn seeded_chaos_campaign_recovers_byte_identically() {
    let work_dir = std::env::temp_dir().join(format!("bear_chaos_test_{}", std::process::id()));
    let cfg = DriveConfig::smoke(
        SMOKE_SEED,
        PathBuf::from(env!("CARGO_BIN_EXE_all_experiments")),
        work_dir.clone(),
    );
    let outcome = drive(&cfg).unwrap_or_else(|e| panic!("chaos recovery proof failed: {e}"));

    // The pinned seed draws at least one of everything (see
    // `chaos::tests::smoke_seed_covers_every_chaos_kind`), so each
    // recovery path must leave its footprint.
    assert!(
        outcome.restarts >= 1,
        "a kill point must have fired (restarts = {})",
        outcome.restarts
    );
    assert!(
        outcome.rows_quarantined >= 1,
        "a persistent fault must have quarantined a cell"
    );
    assert!(
        outcome.healed >= 1,
        "a transient fault must have healed through retry"
    );
    assert!(
        outcome.absorbed >= 1,
        "a checkpoint fault must have been absorbed"
    );
    assert!(
        outcome.rows_identical >= 1,
        "recovered healthy rows must byte-match the reference"
    );
    for kind in ChaosKind::ALL {
        assert!(
            outcome.covered.iter().any(|c| c == kind.label()),
            "fault kind {:?} never fired under SMOKE_SEED (covered: {:?})",
            kind.label(),
            outcome.covered
        );
    }
    fs::remove_dir_all(&work_dir).ok();
}
