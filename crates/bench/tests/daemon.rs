//! Service-level chaos proof for the `beard` campaign daemon.
//!
//! The central claim of the daemon PR: a daemon run riddled with every
//! daemon-level fault class — connections dropped mid-stream, workers
//! killed mid-job, the whole process kill-9'd in the worst window
//! (between a job's journal commit and its acknowledgment) — produces a
//! final `daemon_report.json` **byte-identical** to a fault-free run of
//! the same jobs. Faults may cost retries, reconnects, and restarts;
//! they may not cost (or change) a single result byte.
//!
//! The chaos client here is deliberately written the way a real client
//! must be: submissions are idempotent by job id, so its entire recovery
//! strategy is "reconnect and resubmit everything not yet settled".

use bear_bench::daemon::{smoke_jobs, Client, DAEMON_SMOKE_SEED};
use bear_bench::report::Json;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn beard_exe() -> &'static str {
    env!("CARGO_BIN_EXE_beard")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bear-daemon-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Spawns one `beard` incarnation on `out`, stderr appended to
/// `out/beard.log`. `chaos` arms `BEAR_CHAOS_SEED`.
fn spawn_beard(out: &Path, chaos: bool) -> Child {
    // A fresh incarnation rewrites daemon.addr after binding; remove the
    // previous one so waiters never dial a dead incarnation's port.
    std::fs::remove_file(out.join("daemon.addr")).ok();
    let log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(out.join("beard.log"))
        .expect("open beard log");
    let mut cmd = Command::new(beard_exe());
    cmd.args(["--listen", "127.0.0.1:0", "--out"])
        .arg(out)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(log);
    if chaos {
        cmd.env("BEAR_CHAOS_SEED", DAEMON_SMOKE_SEED.to_string());
    } else {
        cmd.env_remove("BEAR_CHAOS_SEED");
    }
    cmd.spawn().expect("spawn beard")
}

/// Waits for the incarnation to publish its address, bailing out early
/// if it dies first.
fn wait_addr(out: &Path, child: &mut Child) -> Option<String> {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(addr) = std::fs::read_to_string(out.join("daemon.addr")) {
            let addr = addr.trim().to_string();
            if !addr.is_empty() {
                return Some(addr);
            }
        }
        if child.try_wait().expect("try_wait").is_some() {
            return None; // died before binding (or aborted instantly)
        }
        assert!(
            Instant::now() < deadline,
            "beard never published an address"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn read_type(line: &Json) -> &str {
    line.get("type").and_then(Json::as_str).unwrap_or("")
}

/// Drives the full smoke grid to completion against a possibly
/// chaos-riddled daemon, restarting it whenever it dies. Returns the
/// number of restarts. On return the daemon has drained and exited 0.
fn run_grid_to_completion(out: &Path, chaos: bool, restart_budget: u32) -> u32 {
    let jobs = smoke_jobs();
    let mut settled: BTreeSet<String> = BTreeSet::new();
    let mut restarts = 0u32;
    let deadline = Instant::now() + Duration::from_secs(240);
    let mut child = spawn_beard(out, chaos);

    'incarnation: loop {
        assert!(Instant::now() < deadline, "chaos grid did not converge");
        let Some(addr) = wait_addr(out, &mut child) else {
            // Died before serving: restart.
            child.wait().expect("reap");
            restarts += 1;
            assert!(restarts <= restart_budget, "restart budget exhausted");
            child = spawn_beard(out, chaos);
            continue 'incarnation;
        };

        // One connection attempt: resubmit everything unsettled, then
        // collect notifications. Any I/O error (chaos connection drop,
        // daemon death) falls through to the reconnect/restart logic.
        let connection = (|| -> std::io::Result<()> {
            let mut c = Client::connect(&addr)?;
            c.set_timeout(Some(Duration::from_secs(30)))?;
            for job in &jobs {
                if !settled.contains(&job.id) {
                    c.send(&job.canonical_line())?;
                }
            }
            while settled.len() < jobs.len() {
                let Some(line) = c.recv()? else {
                    return Err(std::io::Error::other("connection closed"));
                };
                match read_type(&line) {
                    "completed" | "cancelled" => {
                        settled.insert(
                            line.get("id")
                                .and_then(Json::as_str)
                                .expect("settled line has id")
                                .to_string(),
                        );
                    }
                    "failed" => panic!("chaos must never fail a job: {line}"),
                    "accepted" | "telemetry" => {}
                    other => panic!("unexpected response {other:?}: {line}"),
                }
            }
            Ok(())
        })();

        match connection {
            Ok(()) => break 'incarnation,
            Err(_) => {
                // Daemon dead, or just a dropped connection?
                std::thread::sleep(Duration::from_millis(30));
                if child.try_wait().expect("try_wait").is_some() {
                    child.wait().expect("reap");
                    restarts += 1;
                    assert!(restarts <= restart_budget, "restart budget exhausted");
                    child = spawn_beard(out, chaos);
                }
                continue 'incarnation;
            }
        }
    }

    // Everything settled: drain the final incarnation and require a
    // clean exit.
    let addr = std::fs::read_to_string(out.join("daemon.addr")).expect("addr");
    let mut c = Client::connect(addr.trim()).expect("drain connect");
    c.set_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let drained = c.request("{\"op\":\"drain\"}").expect("drain");
    assert_eq!(read_type(&drained), "drained");
    assert_eq!(drained.get("pending").and_then(Json::as_u64), Some(0));
    let status = child.wait().expect("beard exit");
    assert!(
        status.success(),
        "beard must exit 0 after drain, got {status}"
    );
    restarts
}

/// The headline proof: a chaos-riddled daemon run (connection drops,
/// worker kills, a kill -9 between journal and ack) settles the same
/// grid as a fault-free run and produces a byte-identical report, with
/// every fault class observably fired along the way.
#[test]
fn chaos_riddled_daemon_reports_are_byte_identical() {
    // Fault-free reference.
    let ref_dir = temp_dir("ref");
    let ref_restarts = run_grid_to_completion(&ref_dir, false, 0);
    assert_eq!(ref_restarts, 0);
    let reference = std::fs::read(ref_dir.join("daemon_report.json")).expect("reference report");

    // Chaos run: same grid, same client strategy, every daemon fault
    // class armed.
    let chaos_dir = temp_dir("chaos");
    let restarts = run_grid_to_completion(&chaos_dir, true, 8);
    let recovered = std::fs::read(chaos_dir.join("daemon_report.json")).expect("recovered report");

    assert_eq!(
        String::from_utf8_lossy(&reference),
        String::from_utf8_lossy(&recovered),
        "chaos-riddled report must be byte-identical to the fault-free run"
    );
    assert_eq!(reference, recovered);

    // The faults must have actually happened — otherwise this proved
    // nothing. The pinned seed guarantees each class fires; the
    // accumulated stderr log of every incarnation is the witness.
    assert!(restarts >= 1, "the daemon kill must have forced a restart");
    let log = std::fs::read_to_string(chaos_dir.join("beard.log")).expect("beard log");
    assert!(
        log.contains("kill -9 between journal and ack"),
        "daemon-kill chaos never fired:\n{log}"
    );
    assert!(
        log.contains("died mid-job; requeued"),
        "worker-kill chaos never healed a worker:\n{log}"
    );
    assert!(
        log.contains("dropping connection"),
        "connection-drop chaos never fired:\n{log}"
    );

    // And the fault-free run must have seen none of that.
    let ref_log = std::fs::read_to_string(ref_dir.join("beard.log")).expect("ref log");
    assert!(
        !ref_log.contains("chaos"),
        "reference run saw chaos:\n{ref_log}"
    );

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&chaos_dir).ok();
}

/// Graceful drain ordering: once a drain is requested, the listener
/// socket closes (new connections are refused) strictly before the
/// worker pool stops — and every accepted job is then either completed
/// and reported or left journaled and resumable.
#[test]
fn drain_closes_listener_before_pool_stops() {
    let dir = temp_dir("drain");
    let mut child = spawn_beard(&dir, false);
    let addr = wait_addr(&dir, &mut child).expect("daemon up");

    // Load the daemon with the full grid on a pre-drain connection;
    // that connection outlives the listener. Wait for every acceptance
    // before draining so no submission races the intake cutoff.
    let mut submitter = Client::connect(&addr).expect("connect");
    submitter
        .set_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let jobs = smoke_jobs();
    for job in &jobs {
        submitter.send(&job.canonical_line()).expect("submit");
    }
    let mut accepted = 0usize;
    let mut seen = 0usize;
    while accepted < jobs.len() {
        let line = submitter.recv().expect("read").expect("open");
        match read_type(&line) {
            "accepted" => accepted += 1,
            "completed" => seen += 1,
            other => panic!("unexpected {other:?}: {line}"),
        }
    }

    // Request a drain from a second connection without waiting for it.
    let mut drainer = Client::connect(&addr).expect("connect");
    drainer
        .set_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    drainer.send("{\"op\":\"drain\"}").expect("drain request");

    // The listener goes down as soon as the drain is observed — new
    // connections are refused while the pre-existing connection below
    // still collects results from the (still running) pool.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match Client::connect(&addr) {
            Err(_) => break,
            Ok(_) => {
                assert!(Instant::now() < deadline, "listener never closed");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
    while seen < jobs.len() {
        let line = submitter
            .recv()
            .expect("pre-drain connection must survive the drain")
            .expect("open");
        match read_type(&line) {
            "completed" => seen += 1,
            other => panic!("unexpected {other:?}: {line}"),
        }
    }

    // The drain finishes the pool only after the queue is empty; its
    // response then accounts for every accepted job.
    let drained = drainer.recv().expect("drained line").expect("open");
    assert_eq!(read_type(&drained), "drained");
    assert_eq!(drained.get("pending").and_then(Json::as_u64), Some(0));
    let counters = drained.get("counters").expect("counters");
    assert_eq!(
        counters.get("completed").and_then(Json::as_u64),
        Some(jobs.len() as u64)
    );
    assert_eq!(
        counters.get("accepted").and_then(Json::as_u64),
        Some(jobs.len() as u64)
    );
    assert!(child.wait().expect("exit").success());

    // completed ∪ pending in the report covers every accepted job.
    let report =
        Json::parse(&std::fs::read_to_string(dir.join("daemon_report.json")).expect("report"))
            .expect("report parses");
    let rows = report.get("rows").and_then(Json::as_arr).expect("rows");
    let pending = report
        .get("pending")
        .and_then(Json::as_arr)
        .expect("pending");
    assert_eq!(rows.len() + pending.len(), jobs.len());
    assert!(pending.is_empty(), "full drain leaves nothing pending");
    std::fs::remove_dir_all(&dir).ok();
}

/// A half-written submission followed by a dead client must not wedge
/// the daemon or be accepted; the journal stays empty and a subsequent
/// drain is clean. (Byte-level malformed-input coverage lives in the
/// `daemon::tests` property test; this exercises the real socket path
/// end to end.)
#[test]
fn truncated_submissions_never_wedge_the_daemon() {
    let dir = temp_dir("trunc");
    let mut child = spawn_beard(&dir, false);
    let addr = wait_addr(&dir, &mut child).expect("daemon up");

    // Half a submit line, no newline, then EOF.
    let job = &smoke_jobs()[0];
    let line = job.canonical_line();
    let mut c = Client::connect(&addr).expect("connect");
    c.send_raw(&line.as_bytes()[..line.len() / 2])
        .expect("truncated write");
    drop(c);

    // Garbage and an oversized line on further connections.
    let mut c = Client::connect(&addr).expect("connect");
    c.set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let err = c
        .request("\u{1}\u{2}\u{3} definitely not json")
        .expect("typed error");
    assert_eq!(read_type(&err), "error");
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("protocol"));
    let status = c
        .request("{\"op\":\"status\"}")
        .expect("status after garbage");
    assert_eq!(
        status
            .get("counters")
            .and_then(|v| v.get("accepted"))
            .and_then(Json::as_u64),
        Some(0),
        "no malformed submission may be accepted"
    );

    let drained = c.request("{\"op\":\"drain\"}").expect("drain");
    assert_eq!(read_type(&drained), "drained");
    assert!(child.wait().expect("exit").success());
    std::fs::remove_dir_all(&dir).ok();
}
