//! Smoke test for the live `beard` metrics service: start an in-process
//! daemon, run two jobs (one with live telemetry), scrape
//! `{"op":"metrics"}`, and assert that
//!
//! - the Prometheus-style exposition text parses line by line,
//! - the registry snapshot's counters agree with `{"op":"status"}`,
//! - the per-job bloat decomposition and wall-time histogram are there,
//! - streamed telemetry lines carry the job's stable trace id.

use bear_bench::daemon::{smoke_jobs, Client, Daemon, DaemonConfig};
use bear_bench::report::Json;
use std::path::PathBuf;
use std::time::Duration;

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bear-metrics-smoke-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Validates every exposition line: comments are `# HELP`/`# TYPE`,
/// sample lines are `name{labels} value` with a numeric value. Returns
/// the number of sample lines.
fn assert_exposition_parses(text: &str) -> usize {
    let mut samples = 0;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            assert!(
                comment.starts_with(" HELP ") || comment.starts_with(" TYPE "),
                "exposition line {}: unknown comment {line:?}",
                i + 1
            );
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("exposition line {}: no value in {line:?}", i + 1));
        assert!(
            !series.is_empty() && !series.starts_with('{'),
            "exposition line {}: empty series name in {line:?}",
            i + 1
        );
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("exposition line {}: bad value {value:?}", i + 1));
        samples += 1;
    }
    samples
}

/// Sums the values of every series named `name` in the registry dump.
fn counter_sum(registry: &Json, name: &str) -> f64 {
    registry
        .get("metrics")
        .and_then(Json::as_arr)
        .expect("registry dump has a metrics array")
        .iter()
        .filter(|m| m.get("name").and_then(Json::as_str) == Some(name))
        .map(|m| m.get("value").and_then(Json::as_f64).unwrap_or(0.0))
        .sum()
}

/// Whether any series named `name` carries the given label pair.
fn has_series_with_label(registry: &Json, name: &str, key: &str, value: &str) -> bool {
    registry
        .get("metrics")
        .and_then(Json::as_arr)
        .expect("registry dump has a metrics array")
        .iter()
        .filter(|m| m.get("name").and_then(Json::as_str) == Some(name))
        .any(|m| {
            m.get("labels")
                .and_then(|l| l.get(key))
                .and_then(Json::as_str)
                == Some(value)
        })
}

#[test]
fn metrics_scrape_is_parseable_and_consistent() {
    let out = temp_dir();
    let daemon = Daemon::start(DaemonConfig::new(&out), "127.0.0.1:0").expect("start daemon");
    let mut c = Client::connect(daemon.addr()).expect("connect");
    c.set_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");

    // Two jobs; the first streams live telemetry so its lines must carry
    // the trace id and feed the live per-job decomposition gauges.
    let mut jobs = smoke_jobs().into_iter().take(2).collect::<Vec<_>>();
    jobs[0].telemetry = true;
    let traced_id = jobs[0].id.clone();
    let trace = jobs[0].trace_id();
    for job in &jobs {
        c.send(&job.canonical_line()).expect("submit");
    }

    // Collect notifications until both jobs settle, checking every
    // streamed telemetry line's trace id along the way.
    let mut accepted = 0;
    let mut completed = 0;
    let mut telemetry_lines = 0;
    while completed < jobs.len() {
        let line = c
            .recv()
            .expect("recv")
            .expect("connection stays open until settle");
        match line.get("type").and_then(Json::as_str).unwrap_or("") {
            "accepted" => accepted += 1,
            "completed" => completed += 1,
            "telemetry" => {
                assert_eq!(
                    line.get("id").and_then(Json::as_str),
                    Some(traced_id.as_str())
                );
                assert_eq!(
                    line.get("trace").and_then(Json::as_str),
                    Some(trace.as_str()),
                    "telemetry lines must carry the job's trace id"
                );
                telemetry_lines += 1;
            }
            other => panic!("unexpected notification type {other:?}: {line:?}"),
        }
    }
    assert_eq!(accepted, jobs.len());
    assert!(telemetry_lines > 0, "the traced job streamed samples");

    // Both jobs settled and nothing else is in flight, so plain
    // request/response is race-free from here on.
    let status = c.request("{\"op\":\"status\"}").expect("status");
    let counters = status.get("counters").expect("status counters");
    let metrics = c.request("{\"op\":\"metrics\"}").expect("metrics");
    assert_eq!(metrics.get("type").and_then(Json::as_str), Some("metrics"));

    // The exposition text parses line by line.
    let exposition = metrics
        .get("exposition")
        .and_then(Json::as_str)
        .expect("metrics response carries exposition text");
    assert!(assert_exposition_parses(exposition) > 0);

    // The registry snapshot agrees with the daemon's own counters.
    let registry = metrics.get("registry").expect("registry snapshot");
    assert_eq!(
        counter_sum(registry, "beard_admissions_total"),
        counters
            .get("accepted")
            .and_then(Json::as_f64)
            .expect("accepted"),
        "per-client admissions must sum to the accepted counter"
    );
    assert_eq!(counter_sum(registry, "beard_sheds_total"), 0.0);
    // Per-job decomposition gauges exist for both settled jobs…
    for job in &jobs {
        assert!(
            has_series_with_label(registry, "beard_job_bloat_factor", "job", &job.id),
            "job {} is missing its bloat-factor gauge",
            job.id
        );
        assert!(
            has_series_with_label(registry, "beard_job_cache_bytes", "job", &job.id),
            "job {} is missing its decomposition gauges",
            job.id
        );
    }
    // …and the wall-time histogram observed both of them.
    let wall = registry
        .get("metrics")
        .and_then(Json::as_arr)
        .expect("metrics array")
        .iter()
        .find(|m| m.get("name").and_then(Json::as_str) == Some("beard_job_wall_ms"))
        .expect("wall-time histogram present")
        .get("count")
        .and_then(Json::as_u64)
        .expect("histogram count");
    assert_eq!(wall as usize, jobs.len());
    // State-derived gauges reflect the drained-queue reality.
    assert_eq!(counter_sum(registry, "beard_queue_depth"), 0.0);
    assert_eq!(counter_sum(registry, "beard_draining"), 0.0);
    // The channel-shard thread count is scrapeable (serial in this test:
    // BEAR_SIM_THREADS is unset).
    assert_eq!(counter_sum(registry, "beard_sim_threads"), 1.0);

    // The exposition carries the same series (spot check).
    assert!(exposition.contains("beard_admissions_total"));
    assert!(exposition.contains("beard_job_wall_ms_bucket"));

    let drained = c.request("{\"op\":\"drain\"}").expect("drain");
    assert_eq!(drained.get("type").and_then(Json::as_str), Some("drained"));
    let summary = daemon.wait();
    assert_eq!(summary.pending, 0);
    std::fs::remove_dir_all(&out).ok();
}
