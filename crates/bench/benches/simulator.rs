//! Micro-benchmarks for the simulator itself: they quantify the cost of
//! the building blocks (DRAM channel scheduling, cache probes, NTC and
//! BAB decisions) and the end-to-end cycles-per-second of a small system,
//! so regressions in simulation speed are caught alongside correctness.
//!
//! Runs on the dependency-free [`bear_bench::microbench`] harness
//! (`cargo bench` — honors BEAR_BENCH_SAMPLES / BEAR_BENCH_QUICK).

use bear_bench::microbench::bench;
use bear_cache::{CacheGeometry, ReplacementPolicy, SetAssocCache};
use bear_core::bab::BypassPolicy;
use bear_core::config::{DesignKind, SystemConfig};
use bear_core::ntc::NeighboringTagCache;
use bear_core::system::System;
use bear_dram::config::DramConfig;
use bear_dram::device::DramDevice;
use bear_dram::request::{DramLocation, DramRequest, TrafficClass};
use bear_sim::rng::SimRng;
use bear_sim::time::Cycle;
use std::hint::black_box;

fn bench_dram_channel() {
    bench("dram/64_reads_through_device", 64, || {
        let mut dev = DramDevice::new(DramConfig::stacked_cache_8x());
        let mut rng = SimRng::new(7);
        let mut issued = 0u64;
        let mut done = Vec::new();
        let mut t = Cycle(0);
        while done.len() < 64 {
            if issued < 64 {
                let loc = DramLocation {
                    channel: (issued % 4) as u32,
                    rank: 0,
                    bank: rng.next_below(16) as u32,
                    row: rng.next_below(64),
                };
                if dev
                    .try_enqueue(DramRequest::read(issued, loc, 5, TrafficClass(0), t))
                    .is_ok()
                {
                    issued += 1;
                }
            }
            dev.tick(t, &mut done);
            t += 1;
        }
        black_box(t)
    });
}

fn bench_cache_ops() {
    let geom = CacheGeometry::new(256 << 10, 16, 64);
    bench("cache/l3_probe_fill_1000", 1000, || {
        let mut cache: SetAssocCache<bool> = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let addr = rng.next_below(1 << 20) * 64;
            if cache.access(addr, false).is_none() {
                cache.fill(addr, false, false);
            }
        }
        black_box(cache.occupancy())
    });
}

fn bench_bear_structures() {
    bench("bear/ntc_record_lookup_1000", 1000, || {
        let mut ntc = NeighboringTagCache::new(64, 8);
        let mut rng = SimRng::new(11);
        let mut hits = 0u64;
        for i in 0..1000u64 {
            let set = rng.next_below(1 << 15);
            ntc.record((set % 64) as usize, set, Some(i % 8), i % 3 == 0);
            if matches!(
                ntc.lookup((set % 64) as usize, set, i % 8),
                bear_core::ntc::NtcAnswer::Present
            ) {
                hits += 1;
            }
        }
        black_box(hits)
    });
    bench("bear/bab_duel_1000", 1000, || {
        let mut bab = BypassPolicy::paper_bab();
        let mut rng = SimRng::new(13);
        let mut bypassed = 0u64;
        for _ in 0..1000u64 {
            let set = rng.next_below(1 << 15);
            bab.record_access(set, rng.chance(0.6));
            if bab.should_bypass(set) {
                bypassed += 1;
            }
        }
        black_box(bypassed)
    });
}

fn bench_end_to_end() {
    let kcycles = 50_000u64;
    for design in [DesignKind::Alloy, DesignKind::LohHill] {
        bench(
            &format!("system/{}_50k_cycles", design.label()),
            kcycles,
            || {
                let mut cfg = SystemConfig::paper_baseline(design);
                cfg.scale_shift = 12;
                let mut sys = System::build_rate(&cfg, "gcc");
                for _ in 0..kcycles {
                    sys.tick();
                }
                black_box(sys.now())
            },
        );
    }
}

fn main() {
    bench_dram_channel();
    bench_cache_ops();
    bench_bear_structures();
    bench_end_to_end();
}
