#![warn(missing_docs)]

//! Experiment harness for the BEAR reproduction.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index). This library holds the shared
//! machinery: configuration presets, suite selection, normalized-speedup
//! computation, plain-text table formatting, the parallel grid [`runner`],
//! machine-readable [`report`]s, and the dependency-free [`microbench`]
//! harness.
//!
//! Environment knobs (all optional):
//! - `BEAR_QUICK=1` — shrink the suite (first 4 rate + 2 mixes) and halve
//!   the simulated windows; useful for smoke-testing every binary.
//! - `BEAR_WARMUP` / `BEAR_CYCLES` — override warmup/measure cycles.
//! - `BEAR_SCALE` — override the joint capacity scale shift.
//! - `BEAR_WORKERS` — worker threads for the grid runner (`1` = serial).
//!
//! Every experiment binary accepts `--out DIR` and then writes a
//! machine-readable JSON report next to its human-readable tables (see
//! [`report`] for the schema). `--scale {1/512,1/64,1/8,1}` selects a
//! joint capacity/budget preset (see
//! [`ScalePreset`](bear_core::config::ScalePreset)); the environment
//! knobs above still override it field by field.

use bear_core::config::{BearFeatures, DesignKind, ScalePreset, SystemConfig};
use bear_core::metrics::RunStats;
use bear_core::system::System;
use bear_cpu::metrics::{normalized_weighted_speedup, rate_mode_speedup};
use bear_sim::stats::geometric_mean;
use bear_workloads::{mix_workloads, named_mixes, rate_workloads, Workload};

pub mod chaos;
pub mod checkpoint;
pub mod cli;
pub mod daemon;
pub mod experiments;
pub mod metrics;
pub mod microbench;
pub mod report;
pub mod runner;
pub mod supervisor;
pub mod telemetry;

use bear_sim::error::RunOutcome;
use std::sync::Mutex;

/// Campaign-wide `--scale` preset, consulted by [`RunPlan::from_env`].
/// `None` means the default [`ScalePreset::Half512`] (the historical
/// 2 MB development scale).
static SCALE_PRESET: Mutex<Option<ScalePreset>> = Mutex::new(None);

/// Selects the joint capacity/budget scale for the rest of the process.
///
/// The CLI layer calls this once, before any plan is built; every
/// subsequent [`RunPlan::from_env`] picks the preset up. Explicit
/// `BEAR_SCALE` / `BEAR_WARMUP` / `BEAR_CYCLES` overrides still win over
/// the preset, knob by knob.
pub fn set_scale_preset(preset: ScalePreset) {
    *SCALE_PRESET.lock().unwrap() = Some(preset);
}

/// The active `--scale` preset (default [`ScalePreset::Half512`]).
pub fn scale_preset() -> ScalePreset {
    SCALE_PRESET.lock().unwrap().unwrap_or_default()
}

/// Cycle/scale parameters for one experiment campaign.
#[derive(Debug, Clone, Copy)]
pub struct RunPlan {
    /// Warmup cycles before statistics reset.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Joint capacity scale shift (see DESIGN.md §2).
    pub scale_shift: u32,
}

impl RunPlan {
    /// The default experiment plan, honoring the active `--scale` preset
    /// and the environment knobs.
    pub fn from_env() -> Self {
        Self::from_env_with(scale_preset())
    }

    /// [`RunPlan::from_env`] under an explicit preset: the preset sets
    /// the capacity shift and multiplies the cycle budget (bigger caches
    /// need longer windows to warm), then the environment knobs override
    /// whichever fields they name.
    pub fn from_env_with(preset: ScalePreset) -> Self {
        let quick = quick_mode();
        let factor = preset.budget_factor();
        let mut plan = RunPlan {
            warmup: if quick { 400_000 } else { 1_500_000 } * factor,
            measure: if quick { 300_000 } else { 1_000_000 } * factor,
            scale_shift: preset.shift(),
        };
        if let Ok(v) = std::env::var("BEAR_WARMUP") {
            plan.warmup = v.parse().expect("BEAR_WARMUP must be an integer");
        }
        if let Ok(v) = std::env::var("BEAR_CYCLES") {
            plan.measure = v.parse().expect("BEAR_CYCLES must be an integer");
        }
        if let Ok(v) = std::env::var("BEAR_SCALE") {
            plan.scale_shift = v.parse().expect("BEAR_SCALE must be an integer");
        }
        plan
    }

    /// Applies the plan to a configuration.
    pub fn configure(&self, mut cfg: SystemConfig) -> SystemConfig {
        cfg.scale_shift = self.scale_shift;
        cfg.warmup_cycles = self.warmup;
        cfg.measure_cycles = self.measure;
        cfg
    }
}

/// Whether `BEAR_QUICK` is set.
pub fn quick_mode() -> bool {
    std::env::var("BEAR_QUICK").is_ok_and(|v| v != "0")
}

/// The rate-mode suite (possibly truncated in quick mode).
pub fn suite_rate() -> Vec<Workload> {
    let mut v = rate_workloads();
    if quick_mode() {
        v.truncate(4);
    }
    v
}

/// The mix suite (possibly truncated in quick mode).
pub fn suite_mix() -> Vec<Workload> {
    let mut v = mix_workloads();
    if quick_mode() {
        v.truncate(2);
    }
    v
}

/// The full evaluation suite.
pub fn suite_all() -> Vec<Workload> {
    let mut v = suite_rate();
    v.extend(suite_mix());
    v
}

/// Reduced suite for multi-configuration sensitivity sweeps (the paper
/// reports only aggregate bars for these): 16 rate + 8 named mixes.
pub fn suite_sensitivity() -> Vec<Workload> {
    let mut v = suite_rate();
    let mut m = named_mixes();
    if quick_mode() {
        m.truncate(2);
    }
    v.extend(m);
    v
}

/// Builds a configuration for `design` with `bear` features under `plan`.
pub fn config_for(design: DesignKind, bear: BearFeatures, plan: &RunPlan) -> SystemConfig {
    let mut cfg = plan.configure(SystemConfig::paper_baseline(design));
    if matches!(design, DesignKind::Alloy) {
        cfg.bear = bear;
    }
    cfg
}

/// Runs one workload under one configuration.
///
/// # Panics
///
/// Panics on any simulation failure. Grid code uses [`try_run_one`]
/// instead, which reports failures as typed errors.
pub fn run_one(cfg: &SystemConfig, workload: &Workload) -> RunStats {
    try_run_one(cfg, workload)
        .unwrap_or_else(|e| panic!("{} × {} failed: {e}", cfg.design.label(), workload.name))
}

/// Fallible cell runner: validates the configuration, runs under the
/// forward-progress watchdog, and reports failures as typed
/// [`SimError`](bear_sim::error::SimError)s instead of panicking.
///
/// When a campaign activated a [`checkpoint`] store, a committed cell is
/// loaded from disk instead of re-simulating, and a freshly simulated
/// cell is persisted before returning — this is what makes interrupted
/// campaigns resumable.
///
/// When a campaign activated a [`telemetry`] sink, each freshly simulated
/// cell is armed for windowed sampling and its time series written next
/// to the reports. Cached cells skip both arming and writing, so a
/// resumed campaign never duplicates or tears a cell's sample file.
///
/// When a campaign armed a [`metrics`] registry (`--metrics-out`), each
/// freshly simulated cell additionally records its attributed byte
/// decomposition there — observability-only, never touching the stats.
///
/// # Errors
///
/// Anything [`System::try_build`](bear_core::system::System::try_build)
/// or the monitored run loop rejects: bad configs, watchdog stalls, and
/// (in debug builds) invariant violations.
pub fn try_run_one(cfg: &SystemConfig, workload: &Workload) -> RunOutcome<RunStats> {
    if let Some(cached) = checkpoint::load_active(cfg, workload) {
        runner::heartbeat(cfg, workload);
        return Ok(cached);
    }
    let mut sys = System::try_build(cfg, workload)?;
    telemetry::arm_active(&mut sys);
    let mut stats = sys.run_monitored(cfg.warmup_cycles, cfg.measure_cycles)?;
    stats.workload = workload.name.clone();
    telemetry::write_active(cfg, workload, &mut sys);
    metrics::record_cell(cfg, workload, &stats);
    checkpoint::store_active(cfg, workload, &stats);
    runner::heartbeat(cfg, workload);
    Ok(stats)
}

/// Normalized speedup of `sys` over `base` for `workload` (rate mode uses
/// throughput, mixes use weighted speedup — Section 3.3).
///
/// A quarantined *baseline* cell leaves zeroed placeholder stats behind;
/// dividing by those would violate the metrics' positive-baseline
/// contract and panic the whole experiment. Such a cell degrades to a
/// speedup of `0.0` instead — exactly the value [`gmean`] filters out —
/// so one dead baseline pollutes its workload's column, not the campaign.
pub fn speedup(workload: &Workload, sys: &RunStats, base: &RunStats) -> f64 {
    if base.ipc_per_core.len() != sys.ipc_per_core.len() {
        return 0.0;
    }
    if workload.is_rate {
        if base.ipc_per_core.iter().sum::<f64>() <= 0.0 {
            return 0.0;
        }
        rate_mode_speedup(&sys.ipc_per_core, &base.ipc_per_core)
    } else {
        if !base.ipc_per_core.iter().all(|&b| b > 0.0) {
            return 0.0;
        }
        normalized_weighted_speedup(&sys.ipc_per_core, &base.ipc_per_core)
    }
}

/// Geometric mean over the *surviving* values: non-finite and
/// non-positive entries — the speedups that quarantined placeholder
/// cells produce (0, `inf` against a zeroed baseline, `NaN`) — are
/// excluded, so one dead cell degrades its aggregate instead of
/// poisoning the whole experiment. With every cell healthy this is the
/// plain geometric mean, bit for bit.
pub fn gmean(values: &[f64]) -> f64 {
    let survivors: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| v.is_finite() && *v > 0.0)
        .collect();
    geometric_mean(&survivors)
}

/// Prints a row of fixed-width cells.
pub fn print_row(label: &str, cells: &[String]) {
    print!("{label:<16}");
    for c in cells {
        print!(" {c:>10}");
    }
    println!();
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_configures_config() {
        let plan = RunPlan {
            warmup: 10,
            measure: 20,
            scale_shift: 9,
        };
        let cfg = plan.configure(SystemConfig::paper_baseline(DesignKind::Alloy));
        assert_eq!(cfg.warmup_cycles, 10);
        assert_eq!(cfg.measure_cycles, 20);
        assert_eq!(cfg.scale_shift, 9);
    }

    #[test]
    fn scale_presets_move_shift_and_budget_together() {
        // Compare presets against each other rather than against absolute
        // numbers so the test is immune to BEAR_QUICK in the environment.
        let base = RunPlan::from_env_with(ScalePreset::Half512);
        assert_eq!(base.scale_shift, 9, "historical default preserved");
        for preset in ScalePreset::ALL {
            let plan = RunPlan::from_env_with(preset);
            assert_eq!(plan.scale_shift, preset.shift());
            assert_eq!(plan.warmup, base.warmup * preset.budget_factor());
            assert_eq!(plan.measure, base.measure * preset.budget_factor());
        }
    }

    #[test]
    fn config_for_applies_bear_only_to_alloy() {
        let plan = RunPlan {
            warmup: 1,
            measure: 1,
            scale_shift: 9,
        };
        let bear = config_for(DesignKind::Alloy, BearFeatures::full(), &plan);
        assert!(bear.bear.ntc);
        let lh = config_for(DesignKind::LohHill, BearFeatures::full(), &plan);
        assert!(!lh.bear.ntc, "non-Alloy designs ignore BEAR features");
    }

    #[test]
    fn speedup_dispatches_on_mode() {
        let rate = Workload::rate(bear_workloads::BenchmarkProfile::by_name("mcf").unwrap());
        let a = RunStats {
            ipc_per_core: vec![1.0, 1.0],
            ..Default::default()
        };
        let b = RunStats {
            ipc_per_core: vec![2.0, 0.5],
            ..Default::default()
        };
        // Rate: throughput ratio (2.5/2); weighted: (2 + 0.5)/2 = 1.25.
        assert!((speedup(&rate, &b, &a) - 1.25).abs() < 1e-12);
        let mix = Workload::mix(
            "m",
            ["mcf", "lbm", "mcf", "lbm", "mcf", "lbm", "mcf", "lbm"],
        );
        let a8 = RunStats {
            ipc_per_core: vec![1.0; 8],
            ..Default::default()
        };
        let mut b8 = RunStats {
            ipc_per_core: vec![1.0; 8],
            ..Default::default()
        };
        b8.ipc_per_core[0] = 3.0;
        assert!((speedup(&mix, &b8, &a8) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn quarantined_baseline_degrades_speedup_instead_of_panicking() {
        let rate = Workload::rate(bear_workloads::BenchmarkProfile::by_name("mcf").unwrap());
        let mix = Workload::mix(
            "m",
            ["mcf", "lbm", "mcf", "lbm", "mcf", "lbm", "mcf", "lbm"],
        );
        let healthy = RunStats {
            ipc_per_core: vec![1.0; 8],
            ..Default::default()
        };
        // A quarantined cell's placeholder: zeroed stats.
        let placeholder = RunStats::default();
        assert_eq!(speedup(&rate, &healthy, &placeholder), 0.0);
        assert_eq!(speedup(&mix, &healthy, &placeholder), 0.0);
        let mut one_dead_core = healthy.clone();
        one_dead_core.ipc_per_core[3] = 0.0;
        assert_eq!(speedup(&mix, &healthy, &one_dead_core), 0.0);
        // Rate mode only needs positive total throughput.
        assert!(speedup(&rate, &healthy, &one_dead_core) > 1.0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
        assert!((gmean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }
}
