//! Dependency-free micro-benchmark harness (std `Instant` only).
//!
//! Replaces the former criterion benches so `cargo bench` works with zero
//! registry crates. The methodology is deliberately simple and robust:
//!
//! 1. **Calibrate**: time single calls until a batch size is found whose
//!    wall-clock is at least the target batch duration (so timer
//!    granularity is negligible).
//! 2. **Warm up**: run batches for a fixed warmup budget.
//! 3. **Sample**: time N batches and report the **median** ns/iteration
//!    (the median is robust to scheduler noise in a way a mean is not),
//!    plus min/max for dispersion.
//!
//! Knobs: `BEAR_BENCH_SAMPLES` overrides the sample count,
//! `BEAR_BENCH_QUICK=1` shrinks the time budgets ~20× for smoke runs.
//!
//! ```
//! use bear_bench::microbench::{BenchConfig, run_bench};
//! let cfg = BenchConfig { samples: 3, target_batch_ns: 1_000, warmup_ns: 1_000 };
//! let r = run_bench(&cfg, "noop", 1, || std::hint::black_box(1 + 1));
//! assert!(r.median_ns >= 0.0 && r.samples == 3);
//! ```

use std::time::Instant;

/// Tunable time budgets of the harness.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Number of timed batches (median taken across them).
    pub samples: u64,
    /// Minimum wall-clock per timed batch, in nanoseconds.
    pub target_batch_ns: u64,
    /// Total warmup budget, in nanoseconds.
    pub warmup_ns: u64,
}

impl BenchConfig {
    /// Default budgets, honoring `BEAR_BENCH_SAMPLES` / `BEAR_BENCH_QUICK`.
    pub fn from_env() -> Self {
        let quick = std::env::var("BEAR_BENCH_QUICK").is_ok_and(|v| v != "0");
        let samples = std::env::var("BEAR_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(11);
        BenchConfig {
            samples,
            target_batch_ns: if quick { 2_000_000 } else { 40_000_000 },
            warmup_ns: if quick { 10_000_000 } else { 200_000_000 },
        }
    }
}

/// Result of one benchmark: median/min/max ns per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample, ns/iter.
    pub min_ns: f64,
    /// Slowest sample, ns/iter.
    pub max_ns: f64,
    /// Iterations per timed batch (calibrated).
    pub batch_iters: u64,
    /// Number of timed batches.
    pub samples: u64,
    /// Logical elements processed per iteration (for throughput).
    pub elements_per_iter: u64,
}

impl BenchResult {
    /// Throughput in elements per second at the median time.
    pub fn elements_per_sec(&self) -> f64 {
        if self.median_ns <= 0.0 {
            0.0
        } else {
            self.elements_per_iter as f64 * 1e9 / self.median_ns
        }
    }

    /// One human-readable summary line (criterion-style).
    pub fn summary(&self) -> String {
        format!(
            "{:<32} median {:>12}  (min {}, max {}; {}x{} iters)  {:.2} Melem/s",
            self.name,
            fmt_ns(self.median_ns),
            fmt_ns(self.min_ns),
            fmt_ns(self.max_ns),
            self.samples,
            self.batch_iters,
            self.elements_per_sec() / 1e6,
        )
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Times `batch_iters` calls of `f`, returning total nanoseconds.
fn time_batch<R>(batch_iters: u64, f: &mut impl FnMut() -> R) -> u64 {
    let t0 = Instant::now();
    for _ in 0..batch_iters {
        std::hint::black_box(f());
    }
    t0.elapsed().as_nanos() as u64
}

/// Runs one benchmark under `cfg` and returns its result (no printing).
pub fn run_bench<R>(
    cfg: &BenchConfig,
    name: &str,
    elements_per_iter: u64,
    mut f: impl FnMut() -> R,
) -> BenchResult {
    // Calibrate: grow the batch until it meets the target duration.
    let mut batch_iters = 1u64;
    loop {
        let ns = time_batch(batch_iters, &mut f).max(1);
        if ns >= cfg.target_batch_ns || batch_iters >= 1 << 30 {
            break;
        }
        // Aim straight for the target, with 2x headroom, growing at least 2x.
        let scale = (cfg.target_batch_ns as f64 / ns as f64 * 2.0).ceil() as u64;
        batch_iters = (batch_iters * scale.max(2)).min(1 << 30);
    }

    // Warm up for the configured budget.
    let warm0 = Instant::now();
    while (warm0.elapsed().as_nanos() as u64) < cfg.warmup_ns {
        time_batch(batch_iters, &mut f);
    }

    // Sample.
    let mut per_iter: Vec<f64> = (0..cfg.samples.max(1))
        .map(|_| time_batch(batch_iters, &mut f) as f64 / batch_iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    BenchResult {
        name: name.to_string(),
        median_ns: median,
        min_ns: per_iter[0],
        max_ns: *per_iter.last().expect("at least one sample"),
        batch_iters,
        samples: per_iter.len() as u64,
        elements_per_iter,
    }
}

/// Runs one benchmark with [`BenchConfig::from_env`] and prints its
/// summary line. This is the entry point bench binaries use.
pub fn bench<R>(name: &str, elements_per_iter: u64, f: impl FnMut() -> R) -> BenchResult {
    let r = run_bench(&BenchConfig::from_env(), name, elements_per_iter, f);
    println!("{}", r.summary());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig {
            samples: 5,
            target_batch_ns: 10_000,
            warmup_ns: 10_000,
        }
    }

    #[test]
    fn measures_a_trivial_closure() {
        let r = run_bench(&tiny(), "add", 4, || std::hint::black_box(3u64 + 4));
        assert_eq!(r.samples, 5);
        assert!(r.batch_iters >= 1);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.elements_per_sec() > 0.0);
    }

    #[test]
    fn summary_line_contains_name_and_units() {
        let r = run_bench(&tiny(), "my_bench", 1, || ());
        let line = r.summary();
        assert!(line.contains("my_bench"));
        assert!(line.contains("median"));
        assert!(line.contains("Melem/s"));
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_500.0).ends_with("us"));
        assert!(fmt_ns(12_500_000.0).ends_with("ms"));
        assert!(fmt_ns(2_000_000_000.0).ends_with('s'));
    }
}
