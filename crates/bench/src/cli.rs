//! Shared command-line plumbing for the experiment binaries.
//!
//! Every binary accepts the same flag:
//!
//! - `--out DIR` (or `--out=DIR`) — after printing its human-readable
//!   tables, write the experiment's JSON [`Report`](crate::report::Report)
//!   to `DIR/<experiment>.json`.
//!
//! Report-path notices go to **stderr** so stdout stays byte-identical
//! with and without `--out` (experiment logs are diffed verbatim).

use crate::report::Report;
use crate::RunPlan;
use std::path::PathBuf;

/// Extracts `--out DIR` / `--out=DIR` from an argument list.
///
/// # Panics
///
/// Panics (with a usage message) on `--out` without a value or on any
/// unrecognized argument, so typos fail loudly instead of silently
/// dropping reports.
///
/// ```
/// use bear_bench::cli::parse_out_dir;
/// let out = parse_out_dir(["--out", "results"].iter().map(|s| s.to_string()));
/// assert_eq!(out.unwrap().to_str(), Some("results"));
/// assert_eq!(parse_out_dir(std::iter::empty()), None);
/// ```
pub fn parse_out_dir(args: impl Iterator<Item = String>) -> Option<PathBuf> {
    let mut out = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if arg == "--out" {
            let dir = args
                .next()
                .unwrap_or_else(|| panic!("--out requires a directory argument"));
            out = Some(PathBuf::from(dir));
        } else if let Some(dir) = arg.strip_prefix("--out=") {
            out = Some(PathBuf::from(dir));
        } else {
            panic!("unrecognized argument `{arg}` (supported: --out DIR)");
        }
    }
    out
}

/// Entry point for a single-experiment binary: builds the plan from the
/// environment, runs `f`, and honors `--out DIR`.
pub fn run_single(experiment: &str, f: fn(&RunPlan, &mut Report)) {
    let out = parse_out_dir(std::env::args().skip(1));
    let plan = RunPlan::from_env();
    let mut report = Report::new(experiment);
    f(&plan, &mut report);
    write_report(&report, out.as_deref(), &plan);
}

/// Writes `report` to `out` (if any), logging the path to stderr.
pub fn write_report(report: &Report, out: Option<&std::path::Path>, plan: &RunPlan) {
    if let Some(dir) = out {
        let path = report
            .write(dir, plan)
            .unwrap_or_else(|e| panic!("writing report to {}: {e}", dir.display()));
        eprintln!("[report: {}]", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args<'a>(v: &'a [&'a str]) -> impl Iterator<Item = String> + 'a {
        v.iter().map(|s| s.to_string())
    }

    #[test]
    fn parses_both_out_forms() {
        assert_eq!(
            parse_out_dir(args(&["--out", "a/b"])),
            Some(PathBuf::from("a/b"))
        );
        assert_eq!(parse_out_dir(args(&["--out=c"])), Some(PathBuf::from("c")));
        assert_eq!(parse_out_dir(args(&[])), None);
    }

    #[test]
    #[should_panic(expected = "unrecognized argument")]
    fn rejects_unknown_flags() {
        parse_out_dir(args(&["--bogus"]));
    }

    #[test]
    #[should_panic(expected = "--out requires")]
    fn rejects_dangling_out() {
        parse_out_dir(args(&["--out"]));
    }
}
