//! Shared command-line plumbing for the experiment binaries.
//!
//! Every binary accepts the same flags:
//!
//! - `--out DIR` (or `--out=DIR`) — after printing its human-readable
//!   tables, write the experiment's JSON [`Report`](crate::report::Report)
//!   to `DIR/<experiment>.json`.
//! - `--telemetry` — additionally write one windowed time-series JSONL
//!   file per simulated cell under `DIR/telemetry/` (requires `--out`;
//!   see [`crate::telemetry`]).
//! - `--sample-window N` — telemetry window length in cycles (default
//!   10k; only meaningful with `--telemetry`).
//! - `--metrics-out PATH` — arm a process-wide metrics
//!   [`Registry`](bear_telemetry::Registry) for the campaign and write
//!   its stable JSON dump (per-cell attributed byte decomposition, bloat
//!   factors) to `PATH` when the run finishes (see [`crate::metrics`]).
//! - `--scale {1/512,1/64,1/8,1}` — joint capacity/budget preset (see
//!   [`ScalePreset`]): sets the capacity shift and proportionally grows
//!   the cycle budget. Default `1/512`, the historical 2 MB development
//!   scale; `BEAR_SCALE`/`BEAR_WARMUP`/`BEAR_CYCLES` still override the
//!   preset field by field.
//!
//! Report-path notices go to **stderr** so stdout stays byte-identical
//! with and without `--out` (experiment logs are diffed verbatim).

use crate::report::Report;
use crate::telemetry::TelemetrySink;
use crate::{runner, RunPlan};
use bear_core::config::ScalePreset;
use std::path::PathBuf;

/// Extracts `--out DIR` / `--out=DIR` from an argument list.
///
/// # Panics
///
/// Panics (with a usage message) on `--out` without a value or on any
/// unrecognized argument, so typos fail loudly instead of silently
/// dropping reports.
///
/// ```
/// use bear_bench::cli::parse_out_dir;
/// let out = parse_out_dir(["--out", "results"].iter().map(|s| s.to_string()));
/// assert_eq!(out.unwrap().to_str(), Some("results"));
/// assert_eq!(parse_out_dir(std::iter::empty()), None);
/// ```
pub fn parse_out_dir(args: impl Iterator<Item = String>) -> Option<PathBuf> {
    let mut out = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if arg == "--out" {
            let dir = args
                .next()
                .unwrap_or_else(|| panic!("--out requires a directory argument"));
            out = Some(PathBuf::from(dir));
        } else if let Some(dir) = arg.strip_prefix("--out=") {
            out = Some(PathBuf::from(dir));
        } else {
            panic!("unrecognized argument `{arg}` (supported: --out DIR)");
        }
    }
    out
}

/// Arguments of the experiment binaries: the shared `--out DIR`,
/// telemetry switches, and (campaign driver only) `--only LIST`
/// (comma-separated experiment ids) to rerun a subset of steps.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct CampaignArgs {
    /// Report/checkpoint directory (`--out`).
    pub out: Option<PathBuf>,
    /// Experiment ids to run (`--only`); `None` runs everything.
    pub only: Option<Vec<String>>,
    /// Collect windowed telemetry for every simulated cell
    /// (`--telemetry`; requires `--out`).
    pub telemetry: bool,
    /// Telemetry window override in cycles (`--sample-window N`).
    pub sample_window: Option<u64>,
    /// Write the final metrics-registry dump here (`--metrics-out PATH`).
    pub metrics_out: Option<PathBuf>,
    /// Joint capacity/budget preset (`--scale`); `None` keeps the
    /// default [`ScalePreset::Half512`].
    pub scale: Option<ScalePreset>,
}

impl CampaignArgs {
    /// Whether the experiment named `id` is selected.
    pub fn selected(&self, id: &str) -> bool {
        self.only
            .as_ref()
            .is_none_or(|names| names.iter().any(|n| n == id))
    }

    /// The telemetry sink these arguments request, or `None` without
    /// `--telemetry`.
    ///
    /// # Panics
    ///
    /// Panics when `--telemetry` was given without `--out` — the samples
    /// need a directory to land in.
    pub fn telemetry_sink(&self) -> Option<TelemetrySink> {
        if !self.telemetry {
            return None;
        }
        let out = self.out.as_deref().unwrap_or_else(|| {
            panic!("--telemetry requires --out DIR (samples land in DIR/telemetry/)")
        });
        Some(TelemetrySink::new(out, self.sample_window))
    }
}

/// Shared flag loop behind [`parse_out_dir`]-style parsing: `--only` is
/// accepted only for the campaign driver.
fn parse_flags(
    args: impl Iterator<Item = String>,
    allow_only: bool,
    supported: &str,
) -> CampaignArgs {
    fn split_only(list: &str) -> Vec<String> {
        list.split(',')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect()
    }
    fn parse_window(v: &str) -> u64 {
        let n: u64 = v
            .parse()
            .unwrap_or_else(|_| panic!("--sample-window must be an integer (cycles), got `{v}`"));
        assert!(n > 0, "--sample-window must be positive");
        n
    }
    fn parse_scale(v: &str) -> ScalePreset {
        ScalePreset::parse(v).unwrap_or_else(|e| panic!("{e}"))
    }
    let mut parsed = CampaignArgs::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if arg == "--out" {
            let dir = args
                .next()
                .unwrap_or_else(|| panic!("--out requires a directory argument"));
            parsed.out = Some(PathBuf::from(dir));
        } else if let Some(dir) = arg.strip_prefix("--out=") {
            parsed.out = Some(PathBuf::from(dir));
        } else if allow_only && arg == "--only" {
            let list = args
                .next()
                .unwrap_or_else(|| panic!("--only requires a comma-separated experiment list"));
            parsed.only = Some(split_only(&list));
        } else if let Some(list) = arg.strip_prefix("--only=").filter(|_| allow_only) {
            parsed.only = Some(split_only(list));
        } else if arg == "--telemetry" {
            parsed.telemetry = true;
        } else if arg == "--sample-window" {
            let v = args
                .next()
                .unwrap_or_else(|| panic!("--sample-window requires a cycle count"));
            parsed.sample_window = Some(parse_window(&v));
        } else if let Some(v) = arg.strip_prefix("--sample-window=") {
            parsed.sample_window = Some(parse_window(v));
        } else if arg == "--metrics-out" {
            let path = args
                .next()
                .unwrap_or_else(|| panic!("--metrics-out requires a file path"));
            parsed.metrics_out = Some(PathBuf::from(path));
        } else if let Some(path) = arg.strip_prefix("--metrics-out=") {
            parsed.metrics_out = Some(PathBuf::from(path));
        } else if arg == "--scale" {
            let v = args
                .next()
                .unwrap_or_else(|| panic!("--scale requires a preset (1/512, 1/64, 1/8, or 1)"));
            parsed.scale = Some(parse_scale(&v));
        } else if let Some(v) = arg.strip_prefix("--scale=") {
            parsed.scale = Some(parse_scale(v));
        } else {
            panic!("unrecognized argument `{arg}` (supported: {supported})");
        }
    }
    parsed
}

/// Extracts the single-binary flags (`--out DIR`, `--telemetry`,
/// `--sample-window N`, `--metrics-out PATH`, `--scale PRESET`) from an
/// argument list.
///
/// # Panics
///
/// Panics (with a usage message) on a flag without its value or on any
/// unrecognized argument, matching [`parse_out_dir`]'s behavior.
pub fn parse_single_args(args: impl Iterator<Item = String>) -> CampaignArgs {
    parse_flags(
        args,
        false,
        "--out DIR, --telemetry, --sample-window N, --metrics-out PATH, --scale PRESET",
    )
}

/// Extracts the campaign-driver flags (`--out DIR`, `--only LIST`,
/// `--telemetry`, `--sample-window N`, `--metrics-out PATH`,
/// `--scale PRESET`) from an argument list.
///
/// # Panics
///
/// Panics (with a usage message) on a flag without its value or on any
/// unrecognized argument, matching [`parse_out_dir`]'s behavior.
pub fn parse_campaign_args(args: impl Iterator<Item = String>) -> CampaignArgs {
    parse_flags(
        args,
        true,
        "--out DIR, --only LIST, --telemetry, --sample-window N, --metrics-out PATH, --scale PRESET",
    )
}

/// Entry point for a single-experiment binary: builds the plan from the
/// environment, runs `f`, and honors `--out DIR` / `--telemetry` /
/// `--metrics-out`.
pub fn run_single(experiment: &str, f: fn(&RunPlan, &mut Report)) {
    run_single_with(experiment, parse_single_args(std::env::args().skip(1)), f);
}

/// [`run_single`] with pre-parsed arguments; returns the finished report
/// so wrapper binaries (e.g. `loop_speedup`'s `BENCH_core.json` emitter)
/// can derive further artifacts from its rows and scalars.
pub fn run_single_with(
    experiment: &str,
    args: CampaignArgs,
    f: fn(&RunPlan, &mut Report),
) -> Report {
    if let Some(preset) = args.scale {
        crate::set_scale_preset(preset);
    }
    let plan = RunPlan::from_env();
    crate::telemetry::set_active(args.telemetry_sink());
    if args.metrics_out.is_some() {
        crate::metrics::set_active(Some(bear_telemetry::Registry::new()));
    }
    let mut report = Report::new(experiment);
    f(&plan, &mut report);
    write_report(&mut report, args.out.as_deref(), &plan);
    if let Some(path) = args.metrics_out.as_deref() {
        match crate::metrics::write_active(path) {
            Ok(p) => eprintln!("[metrics: {}]", p.display()),
            Err(e) => eprintln!(
                "[warning: failed to write metrics to {}: {e}]",
                path.display()
            ),
        }
        crate::metrics::set_active(None);
    }
    crate::telemetry::set_active(None);
    report
}

/// Folds any cell failures recorded during the experiment into `report`,
/// tags the placeholder rows those failures degraded (graceful
/// degradation stays visible row-by-row), then writes the report to
/// `out` (if any), logging the path to stderr.
pub fn write_report(report: &mut Report, out: Option<&std::path::Path>, plan: &RunPlan) {
    for failure in runner::take_failures() {
        report.add_failure(failure);
    }
    report.mark_degraded_rows();
    if !report.failures.is_empty() {
        eprintln!(
            "[{}: {} cell(s) FAILED — see the report's \"failures\" section]",
            report.experiment,
            report.failures.len()
        );
    }
    if let Some(dir) = out {
        let path = report
            .write(dir, plan)
            .unwrap_or_else(|e| panic!("writing report to {}: {e}", dir.display()));
        eprintln!("[report: {}]", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args<'a>(v: &'a [&'a str]) -> impl Iterator<Item = String> + 'a {
        v.iter().map(|s| s.to_string())
    }

    #[test]
    fn parses_both_out_forms() {
        assert_eq!(
            parse_out_dir(args(&["--out", "a/b"])),
            Some(PathBuf::from("a/b"))
        );
        assert_eq!(parse_out_dir(args(&["--out=c"])), Some(PathBuf::from("c")));
        assert_eq!(parse_out_dir(args(&[])), None);
    }

    #[test]
    #[should_panic(expected = "unrecognized argument")]
    fn rejects_unknown_flags() {
        parse_out_dir(args(&["--bogus"]));
    }

    #[test]
    #[should_panic(expected = "--out requires")]
    fn rejects_dangling_out() {
        parse_out_dir(args(&["--out"]));
    }

    #[test]
    fn campaign_args_parse_out_and_only() {
        let a = parse_campaign_args(args(&["--out", "r", "--only", "fig07,table5"]));
        assert_eq!(a.out, Some(PathBuf::from("r")));
        assert_eq!(
            a.only,
            Some(vec!["fig07".to_string(), "table5".to_string()])
        );
        assert!(a.selected("fig07"));
        assert!(!a.selected("fig03"));
        let b = parse_campaign_args(args(&["--only=fig03"]));
        assert_eq!(b.only, Some(vec!["fig03".to_string()]));
        let all = parse_campaign_args(args(&[]));
        assert!(all.selected("anything"));
    }

    #[test]
    fn telemetry_flags_parse_in_both_forms() {
        let a = parse_campaign_args(args(&["--out=r", "--telemetry", "--sample-window", "5000"]));
        assert!(a.telemetry);
        assert_eq!(a.sample_window, Some(5000));
        let sink = a.telemetry_sink().expect("sink requested");
        let bear_telemetry::TelemetryConfig::On(opts) = sink.config() else {
            panic!("sink config must be On");
        };
        assert_eq!(opts.sample_window, 5000);
        let b = parse_single_args(args(&["--sample-window=250"]));
        assert_eq!(b.sample_window, Some(250));
        assert!(!b.telemetry);
        assert!(b.telemetry_sink().is_none(), "window alone arms nothing");
    }

    #[test]
    fn metrics_out_parses_in_both_forms() {
        let a = parse_single_args(args(&["--metrics-out", "m.json"]));
        assert_eq!(a.metrics_out, Some(PathBuf::from("m.json")));
        let b = parse_campaign_args(args(&["--out=r", "--metrics-out=dir/m.json"]));
        assert_eq!(b.metrics_out, Some(PathBuf::from("dir/m.json")));
        assert!(parse_single_args(args(&[])).metrics_out.is_none());
    }

    #[test]
    fn scale_parses_in_both_forms() {
        let a = parse_single_args(args(&["--scale", "1/64"]));
        assert_eq!(a.scale, Some(ScalePreset::Half64));
        let b = parse_campaign_args(args(&["--scale=1"]));
        assert_eq!(b.scale, Some(ScalePreset::Full));
        assert_eq!(parse_single_args(args(&[])).scale, None);
    }

    #[test]
    #[should_panic(expected = "--scale")]
    fn unknown_scale_preset_is_rejected() {
        parse_single_args(args(&["--scale", "1/2"]));
    }

    #[test]
    #[should_panic(expected = "--scale requires")]
    fn rejects_dangling_scale() {
        parse_single_args(args(&["--scale"]));
    }

    #[test]
    #[should_panic(expected = "--metrics-out requires")]
    fn rejects_dangling_metrics_out() {
        parse_single_args(args(&["--metrics-out"]));
    }

    #[test]
    #[should_panic(expected = "--telemetry requires --out")]
    fn telemetry_without_out_is_rejected() {
        parse_single_args(args(&["--telemetry"])).telemetry_sink();
    }

    #[test]
    #[should_panic(expected = "--sample-window must be an integer")]
    fn malformed_sample_window_is_rejected() {
        parse_single_args(args(&["--sample-window", "soon"]));
    }

    #[test]
    #[should_panic(expected = "--sample-window must be positive")]
    fn zero_sample_window_is_rejected() {
        parse_single_args(args(&["--sample-window=0"]));
    }

    #[test]
    #[should_panic(expected = "unrecognized argument")]
    fn single_binaries_reject_only() {
        parse_single_args(args(&["--only=fig03"]));
    }

    #[test]
    #[should_panic(expected = "--only requires")]
    fn rejects_dangling_only() {
        parse_campaign_args(args(&["--only"]));
    }

    #[test]
    #[should_panic(expected = "unrecognized argument")]
    fn campaign_rejects_unknown_flags() {
        parse_campaign_args(args(&["--bogus"]));
    }
}
