//! Parallel execution of the (config × workload) experiment grid.
//!
//! Every experiment in this crate boils down to simulating a grid of
//! independent (configuration, workload) cells. The cells share no mutable
//! state — each builds its own `System` from a config and a workload, with
//! seeds derived deterministically from both — so they parallelize
//! trivially. This module fans the grid out across `std::thread::scope`
//! workers while keeping results **indexed by input position**, never by
//! completion order: the output of the parallel path is bit-identical to
//! the serial path, so experiment logs stay diffable run-over-run.
//!
//! # Fault isolation
//!
//! A cell that fails — panics, stalls against the watchdog, or rejects its
//! configuration — must not take the rest of the grid down with it.
//! [`try_parallel_map`] catches panics per cell and converts them into
//! typed [`SimError`]s. One level up, [`run_suite`] and [`run_matrix`]
//! run every cell through the [`supervisor`](crate::supervisor) — retry
//! with backoff for transient failures, wall-clock deadlines, quarantine
//! on exhaustion — and degrade cells that stay failed to zeroed
//! placeholder stats while recording a
//! [`FailureRow`](crate::report::FailureRow) (drained by
//! [`take_failures`] into the experiment's report), so every other cell
//! still completes and the merged report says exactly what broke.
//!
//! The worker count comes from `BEAR_WORKERS` (default: the machine's
//! available parallelism; malformed values warn and fall back).
//! `BEAR_WORKERS=1` forces the serial path.

use crate::report::FailureRow;
use crate::supervisor;
use bear_core::config::SystemConfig;
use bear_core::metrics::RunStats;
use bear_sim::error::{RunOutcome, SimError};
use bear_workloads::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Parses a `BEAR_WORKERS` value: a positive integer (a `0` is clamped to
/// 1, preserving the historical "minimum one worker" behavior). `None`
/// means the value is malformed and should be ignored.
fn parse_workers(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().map(|n| n.max(1))
}

/// Number of worker threads to use: `BEAR_WORKERS` if set (minimum 1),
/// otherwise [`std::thread::available_parallelism`]. A malformed
/// `BEAR_WORKERS` prints a warning to stderr and falls back to the
/// default rather than aborting a campaign over a typo.
pub fn workers() -> usize {
    let fallback = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    match std::env::var("BEAR_WORKERS") {
        Ok(v) => parse_workers(&v).unwrap_or_else(|| {
            eprintln!(
                "[warning: ignoring malformed BEAR_WORKERS={v:?}; \
                 using available parallelism]"
            );
            fallback()
        }),
        Err(_) => fallback(),
    }
}

/// Applies `f` to every item, using up to [`workers`] threads, and returns
/// the results **in input order** (index-deterministic, regardless of
/// which worker finishes first).
///
/// With one worker (or one item) this degenerates to a plain serial map,
/// which is the reference behavior the parallel path must reproduce.
///
/// A panic inside `f` propagates and poisons the whole map; grid code
/// should prefer [`try_parallel_map`], which isolates it to one cell.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = workers().min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                slots.lock().expect("runner slots poisoned")[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .expect("runner slots poisoned")
        .into_iter()
        .map(|r| r.expect("runner slot unfilled"))
        .collect()
}

/// [`parallel_map`] with per-cell panic isolation: a panic inside `f`
/// becomes `Err(SimError::Panicked)` for that cell while every other cell
/// runs to completion. Results stay in input order.
pub fn try_parallel_map<T, R, F>(items: &[T], f: F) -> Vec<RunOutcome<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> RunOutcome<R> + Sync,
{
    parallel_map(items, |item| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))).unwrap_or_else(
            |payload| {
                let message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                Err(SimError::panicked("cell", message))
            },
        )
    })
}

/// Campaign-wide progress counters behind the stderr heartbeat.
#[derive(Debug)]
struct Progress {
    /// Cells completed (fresh or checkpoint-cached) since activation.
    done: usize,
    /// Cells scheduled so far: grows as each suite/matrix is submitted,
    /// since the campaign's full cell count isn't known up front.
    total: usize,
    start: Instant,
}

/// Heartbeat state; `None` (the default) keeps the runner silent.
static PROGRESS: Mutex<Option<Progress>> = Mutex::new(None);

/// Enables (or disables) the per-cell stderr heartbeat and resets its
/// counters. A long campaign driver turns this on so an observer can see
/// `[cell i/N ...]` lines with elapsed time and a completion estimate;
/// one-shot binaries leave it off.
pub fn set_heartbeat(enabled: bool) {
    *PROGRESS.lock().expect("progress state poisoned") = enabled.then(|| Progress {
        done: 0,
        total: 0,
        start: Instant::now(),
    });
}

/// Registers `n` more cells with the heartbeat, if enabled.
fn progress_begin(n: usize) {
    if let Some(p) = PROGRESS.lock().expect("progress state poisoned").as_mut() {
        p.total += n;
    }
}

/// One-line stderr heartbeat, emitted per completed cell when enabled:
/// `cell i/N`, which cell finished, elapsed wall-clock, and an ETA
/// extrapolated from the mean cell time so far (checkpoint-cached cells
/// complete instantly and pull the estimate down — by design, since a
/// resumed campaign really is that much closer to done). Once the
/// supervisor has recovery events to report (retries, healed cells,
/// quarantines, absorbed faults), the running totals ride along so an
/// observer sees degradation as it happens, not at campaign end.
pub(crate) fn heartbeat(cfg: &SystemConfig, workload: &Workload) {
    let mut guard = PROGRESS.lock().expect("progress state poisoned");
    let Some(p) = guard.as_mut() else {
        return;
    };
    p.done += 1;
    let elapsed = p.start.elapsed().as_secs_f64();
    let remaining = p.total.saturating_sub(p.done);
    let eta = elapsed / p.done as f64 * remaining as f64;
    let recovery = supervisor::recovery_note().map_or(String::new(), |n| format!("; {n}"));
    // Surface the channel-shard count each cell simulates under
    // (`BEAR_SIM_THREADS`); a malformed value would already have failed
    // the cell's `System::try_build`, so display falls back to serial.
    let sim_threads = bear_dram::shard::sim_threads_from_env().unwrap_or(1);
    eprintln!(
        "[cell {}/{} ({} × {}, sim-threads {sim_threads}) elapsed {elapsed:.1}s, \
         ETA {eta:.1}s{recovery}]",
        p.done,
        p.total.max(p.done),
        cfg.design.label(),
        workload.name,
    );
}

/// Failed cells recorded by [`run_suite`]/[`run_matrix`] since the last
/// [`take_failures`] call.
static FAILURES: Mutex<Vec<FailureRow>> = Mutex::new(Vec::new());

/// Records a quarantined cell's failure row (called by the
/// [`supervisor`](crate::supervisor) once the cell's retries are
/// exhausted — the supervisor owns the stderr announcement and the
/// attempt count).
pub(crate) fn record_failure_row(row: FailureRow) {
    FAILURES.lock().expect("failure log poisoned").push(row);
}

/// Sorts failure rows by the full (config, workload, kind, attempts,
/// error) tuple — the completion-order-independent key that keeps the
/// report's failures section (and `failures.json`) byte-stable across
/// `BEAR_WORKERS` values.
fn sort_failures(v: &mut [FailureRow]) {
    v.sort_by(|a, b| {
        (&a.config, &a.workload, &a.kind, a.attempts, &a.error).cmp(&(
            &b.config,
            &b.workload,
            &b.kind,
            b.attempts,
            &b.error,
        ))
    });
}

/// Drains the failures recorded since the last call, sorted by
/// [`sort_failures`]' full tuple so the report section is deterministic
/// regardless of worker count or completion order.
pub fn take_failures() -> Vec<FailureRow> {
    let mut v = std::mem::take(&mut *FAILURES.lock().expect("failure log poisoned"));
    sort_failures(&mut v);
    v
}

/// Zeroed stats standing in for a failed cell, so grid indexing (and the
/// tables computed from it) survive; the recorded failure row carries the
/// real story. Zero IPC makes the cell's speedup read as 0, which is
/// visibly wrong in any table — by design.
fn placeholder_stats(cfg: &SystemConfig, workload: &Workload) -> RunStats {
    let cores = workload.benchmarks.len();
    RunStats {
        workload: workload.name.clone(),
        design: cfg.design.label().to_string(),
        insts_per_core: vec![0; cores],
        ipc_per_core: vec![0.0; cores],
        ..Default::default()
    }
}

/// Degrades a (supervised, already-recorded) failure to placeholder
/// stats; the supervisor recorded the failure row and announced it.
fn settle(cfg: &SystemConfig, workload: &Workload, outcome: RunOutcome<RunStats>) -> RunStats {
    match outcome {
        Ok(stats) => stats,
        Err(_) => placeholder_stats(cfg, workload),
    }
}

/// Runs one configuration over a suite of workloads in parallel,
/// returning per-workload stats in suite order. Every cell runs under
/// the [`supervisor`](crate::supervisor); cells that stay failed degrade
/// to placeholder stats and a recorded failure (see [`take_failures`]).
pub fn run_suite(cfg: &SystemConfig, workloads: &[Workload]) -> Vec<RunStats> {
    progress_begin(workloads.len());
    try_parallel_map(workloads, |w| supervisor::run_cell(cfg, w))
        .into_iter()
        .zip(workloads)
        .map(|(outcome, w)| settle(cfg, w, outcome))
        .collect()
}

/// Runs the full (config × workload) grid in parallel — all cells are
/// scheduled at once, so a slow workload in one config does not serialize
/// the others. Returns `result[config_index][workload_index]`. Every
/// cell runs under the [`supervisor`](crate::supervisor); cells that
/// stay failed degrade to placeholder stats and a recorded failure.
pub fn run_matrix(cfgs: &[SystemConfig], workloads: &[Workload]) -> Vec<Vec<RunStats>> {
    let cells: Vec<(usize, usize)> = (0..cfgs.len())
        .flat_map(|c| (0..workloads.len()).map(move |w| (c, w)))
        .collect();
    progress_begin(cells.len());
    let flat = try_parallel_map(&cells, |&(c, w)| {
        supervisor::run_cell(&cfgs[c], &workloads[w])
    });
    let mut out: Vec<Vec<RunStats>> = Vec::with_capacity(cfgs.len());
    let mut it = flat.into_iter().zip(&cells);
    for _ in 0..cfgs.len() {
        out.push(
            it.by_ref()
                .take(workloads.len())
                .map(|(outcome, &(c, w))| settle(&cfgs[c], &workloads[w], outcome))
                .collect(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, |&x: &u64| x).is_empty());
        assert_eq!(parallel_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn parse_workers_accepts_integers_and_rejects_garbage() {
        assert_eq!(parse_workers("4"), Some(4));
        assert_eq!(parse_workers(" 2 "), Some(2));
        assert_eq!(parse_workers("0"), Some(1), "zero clamps to one worker");
        assert_eq!(parse_workers(""), None);
        assert_eq!(parse_workers("many"), None);
        assert_eq!(parse_workers("-3"), None);
        assert_eq!(parse_workers("2.5"), None);
    }

    #[test]
    fn try_parallel_map_isolates_a_panicking_cell() {
        let items: Vec<u64> = (0..20).collect();
        let out = try_parallel_map(&items, |&x| {
            if x == 7 {
                panic!("cell seven is poisoned");
            }
            Ok(x * 2)
        });
        assert_eq!(out.len(), 20);
        for (i, r) in out.iter().enumerate() {
            if i == 7 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.kind(), "panic");
                assert!(e.to_string().contains("cell seven is poisoned"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u64 * 2);
            }
        }
    }

    #[test]
    fn failed_cells_degrade_to_placeholders_and_failure_rows() {
        use bear_core::config::{DesignKind, SystemConfig};
        // sched_window = 0 is rejected by config validation, so every cell
        // of this suite fails with a typed error instead of simulating.
        let mut cfg = SystemConfig::paper_baseline(DesignKind::Alloy);
        cfg.cache_dram.sched_window = 0;
        let suite: Vec<Workload> = bear_workloads::rate_workloads()
            .into_iter()
            .take(2)
            .collect();
        let stats = run_suite(&cfg, &suite);
        assert_eq!(stats.len(), 2, "grid shape survives the failures");
        assert_eq!(stats[0].workload, suite[0].name);
        assert_eq!(stats[0].cycles, 0, "placeholder stats are zeroed");
        let failures = take_failures();
        let ours: Vec<&FailureRow> = failures
            .iter()
            .filter(|f| f.workload == suite[0].name || f.workload == suite[1].name)
            .collect();
        assert_eq!(ours.len(), 2);
        assert_eq!(ours[0].kind, "config");
        assert!(ours[0].error.contains("sched_window"));
        assert!(
            take_failures().iter().all(|f| f.workload != suite[0].name),
            "take_failures drains"
        );
    }

    #[test]
    fn failure_ordering_is_worker_count_independent() {
        let mk = |c: &str, w: &str, k: &str, a: usize| FailureRow {
            config: c.into(),
            workload: w.into(),
            kind: k.into(),
            error: format!("{c} × {w} broke"),
            attempts: a,
        };
        // Two completion orders of the same failures (as different
        // BEAR_WORKERS schedules would record them) sort identically.
        let mut by_schedule_a = vec![
            mk("BEAR", "rate:mcf", "panic", 3),
            mk("Alloy", "rate:mcf", "config", 1),
            mk("Alloy", "mix:a", "timeout", 3),
        ];
        let mut by_schedule_b: Vec<FailureRow> = by_schedule_a.iter().rev().cloned().collect();
        sort_failures(&mut by_schedule_a);
        sort_failures(&mut by_schedule_b);
        assert_eq!(by_schedule_a, by_schedule_b);
        assert_eq!(by_schedule_a[0].workload, "mix:a");
        assert_eq!(by_schedule_a[1].kind, "config");
        assert_eq!(by_schedule_a[2].config, "BEAR");
    }

    #[test]
    fn matrix_shape_matches_grid() {
        use bear_core::config::{DesignKind, SystemConfig};
        let mut cfg = SystemConfig::paper_baseline(DesignKind::Alloy);
        cfg.scale_shift = 12;
        cfg.warmup_cycles = 500;
        cfg.measure_cycles = 500;
        let suite: Vec<Workload> = bear_workloads::rate_workloads()
            .into_iter()
            .take(2)
            .collect();
        let m = run_matrix(&[cfg.clone(), cfg], &suite);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].len(), 2);
        assert_eq!(m[0][0].workload, suite[0].name);
        assert_eq!(m[1][1].workload, suite[1].name);
    }

    #[test]
    fn parallel_equals_serial() {
        use bear_core::config::{DesignKind, SystemConfig};
        let mut cfg = SystemConfig::paper_baseline(DesignKind::Alloy);
        cfg.scale_shift = 12;
        cfg.warmup_cycles = 1000;
        cfg.measure_cycles = 1000;
        let suite: Vec<Workload> = bear_workloads::rate_workloads()
            .into_iter()
            .take(3)
            .collect();
        let serial: Vec<RunStats> = suite.iter().map(|w| crate::run_one(&cfg, w)).collect();
        let parallel = run_suite(&cfg, &suite);
        assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    }
}
