//! Parallel execution of the (config × workload) experiment grid.
//!
//! Every experiment in this crate boils down to simulating a grid of
//! independent (configuration, workload) cells. The cells share no mutable
//! state — each builds its own `System` from a config and a workload, with
//! seeds derived deterministically from both — so they parallelize
//! trivially. This module fans the grid out across `std::thread::scope`
//! workers while keeping results **indexed by input position**, never by
//! completion order: the output of the parallel path is bit-identical to
//! the serial path, so experiment logs stay diffable run-over-run.
//!
//! The worker count comes from `BEAR_WORKERS` (default: the machine's
//! available parallelism). `BEAR_WORKERS=1` forces the serial path.

use crate::run_one;
use bear_core::config::SystemConfig;
use bear_core::metrics::RunStats;
use bear_workloads::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use: `BEAR_WORKERS` if set (minimum 1),
/// otherwise [`std::thread::available_parallelism`].
pub fn workers() -> usize {
    if let Ok(v) = std::env::var("BEAR_WORKERS") {
        return v
            .parse::<usize>()
            .expect("BEAR_WORKERS must be an integer")
            .max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item, using up to [`workers`] threads, and returns
/// the results **in input order** (index-deterministic, regardless of
/// which worker finishes first).
///
/// With one worker (or one item) this degenerates to a plain serial map,
/// which is the reference behavior the parallel path must reproduce.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = workers().min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                slots.lock().expect("runner slots poisoned")[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .expect("runner slots poisoned")
        .into_iter()
        .map(|r| r.expect("runner slot unfilled"))
        .collect()
}

/// Runs one configuration over a suite of workloads in parallel,
/// returning per-workload stats in suite order.
pub fn run_suite(cfg: &SystemConfig, workloads: &[Workload]) -> Vec<RunStats> {
    parallel_map(workloads, |w| run_one(cfg, w))
}

/// Runs the full (config × workload) grid in parallel — all cells are
/// scheduled at once, so a slow workload in one config does not serialize
/// the others. Returns `result[config_index][workload_index]`.
pub fn run_matrix(cfgs: &[SystemConfig], workloads: &[Workload]) -> Vec<Vec<RunStats>> {
    let cells: Vec<(usize, usize)> = (0..cfgs.len())
        .flat_map(|c| (0..workloads.len()).map(move |w| (c, w)))
        .collect();
    let flat = parallel_map(&cells, |&(c, w)| run_one(&cfgs[c], &workloads[w]));
    let mut out: Vec<Vec<RunStats>> = Vec::with_capacity(cfgs.len());
    let mut it = flat.into_iter();
    for _ in 0..cfgs.len() {
        out.push(it.by_ref().take(workloads.len()).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, |&x: &u64| x).is_empty());
        assert_eq!(parallel_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn matrix_shape_matches_grid() {
        use bear_core::config::{DesignKind, SystemConfig};
        let mut cfg = SystemConfig::paper_baseline(DesignKind::Alloy);
        cfg.scale_shift = 12;
        cfg.warmup_cycles = 500;
        cfg.measure_cycles = 500;
        let suite: Vec<Workload> = bear_workloads::rate_workloads()
            .into_iter()
            .take(2)
            .collect();
        let m = run_matrix(&[cfg.clone(), cfg], &suite);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].len(), 2);
        assert_eq!(m[0][0].workload, suite[0].name);
        assert_eq!(m[1][1].workload, suite[1].name);
    }

    #[test]
    fn parallel_equals_serial() {
        use bear_core::config::{DesignKind, SystemConfig};
        let mut cfg = SystemConfig::paper_baseline(DesignKind::Alloy);
        cfg.scale_shift = 12;
        cfg.warmup_cycles = 1000;
        cfg.measure_cycles = 1000;
        let suite: Vec<Workload> = bear_workloads::rate_workloads()
            .into_iter()
            .take(3)
            .collect();
        let serial: Vec<RunStats> = suite.iter().map(|w| run_one(&cfg, w)).collect();
        let parallel = run_suite(&cfg, &suite);
        assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    }
}
