//! Harness-level chaos injection and the campaign recovery proof.
//!
//! The supervision layer ([`crate::supervisor`]) claims that campaigns
//! survive worker panics, wedged cells, torn checkpoints, failed fsyncs,
//! and whole-process kills. This module makes that claim testable the
//! same way the PR 3 shadow oracle made the cycle model testable: by
//! deterministically *injecting* every one of those faults into a real
//! campaign and asserting the recovered output.
//!
//! Two halves:
//!
//! - **Injection** (in-process): when `BEAR_CHAOS_SEED` is set, the
//!   campaign driver arms a seeded, replayable
//!   [`ChaosPlan`](bear_sim::faultinject::ChaosPlan). The supervisor
//!   consults it per attempt ([`attempt_fault`]) to inject worker panics
//!   and stalls; the checkpoint layer consults it per store
//!   ([`checkpoint_fault_for`]) to tear files or fail fsyncs; and every
//!   successful cell completion ([`on_cell_complete`]) may hit a kill
//!   point that aborts the whole process. Kill points are gated by
//!   marker files under the report directory, so a resumed campaign does
//!   not re-fire a spent kill. All decisions key on the cell's stable
//!   identity hash — worker count, scheduling, and restarts cannot
//!   change which cells draw which faults.
//!
//! - **Driving** (out-of-process): [`drive`] runs a fault-free reference
//!   campaign and then the same campaign under chaos (restarting it each
//!   time a kill point fires), and compares the recovered report against
//!   the reference — **byte-identical** rows for every cell the chaos
//!   run completed. The `chaos` binary and the `tests/chaos.rs` suite
//!   are thin wrappers over it; `scripts/verify.sh` runs it with the
//!   pinned [`SMOKE_SEED`] and publishes `BENCH_chaos.json`.

use crate::report::Json;
use crate::{checkpoint, config_for, supervisor, RunPlan};
use bear_core::config::{BearFeatures, DesignKind, SystemConfig};
use bear_sim::error::SimError;
use bear_sim::faultinject::{ChaosFault, ChaosKind, ChaosPlan};
use bear_workloads::Workload;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Mutex;
use std::time::Instant;

/// How long an injected stall wedges its attempt (must exceed
/// [`STALL_DEADLINE_MS`], so the deadline — not the sleep — decides).
const STALL_SLEEP_MS: u64 = 400;

/// The per-attempt deadline a chaos stall carries with it: short, so the
/// injected wedge converts into a [`SimError::Timeout`] quickly instead
/// of stretching the test suite.
const STALL_DEADLINE_MS: u64 = 150;

/// The fixed seed `scripts/verify.sh` and the chaos test suite drive the
/// quick fig07 grid with. Pinned (see `smoke_seed_covers_every_chaos_kind`)
/// to draw every fault class in [`ChaosKind::ALL`] — transient and
/// persistent attempt faults, both checkpoint faults, and the kill
/// points — on that grid.
pub const SMOKE_SEED: u64 = 41;

/// Armed chaos state for this process.
#[derive(Debug)]
struct Armed {
    plan: ChaosPlan,
    /// Report directory: kill markers live in `out/chaos-kills/`.
    out: PathBuf,
    /// Successful cell completions so far (kill-point clock).
    completed: u64,
}

static ARMED: Mutex<Option<Armed>> = Mutex::new(None);

/// Arms chaos injection from `BEAR_CHAOS_SEED`, if set. Campaign drivers
/// call this once at startup; without the variable this is a no-op and
/// the campaign behaves exactly as before this layer existed.
///
/// # Panics
///
/// Panics when `BEAR_CHAOS_SEED` is set without an `--out` directory
/// (kill markers and the failure manifest need somewhere durable) or is
/// not an integer.
pub fn arm_from_env(out: Option<&Path>) {
    let Ok(v) = std::env::var("BEAR_CHAOS_SEED") else {
        return;
    };
    let seed: u64 = v.parse().expect("BEAR_CHAOS_SEED must be an integer");
    let out = out
        .unwrap_or_else(|| {
            panic!("BEAR_CHAOS_SEED requires --out DIR (kill markers land in DIR/chaos-kills/)")
        })
        .to_path_buf();
    let plan = ChaosPlan::new(seed);
    eprintln!(
        "[chaos: armed with seed {seed}; kill points at completions {:?}]",
        plan.kill_points
    );
    *ARMED.lock().expect("chaos state poisoned") = Some(Armed {
        plan,
        out,
        completed: 0,
    });
}

/// The armed chaos seed, if any (recorded in the failure manifest).
pub fn armed_seed() -> Option<u64> {
    ARMED
        .lock()
        .expect("chaos state poisoned")
        .as_ref()
        .map(|a| a.plan.seed)
}

/// The attempt-level fault to inject into attempt `attempt` of the cell
/// identified by `key`, if chaos is armed and the plan drew one.
pub(crate) fn attempt_fault(key: u64, attempt: u32) -> Option<ChaosFault> {
    ARMED
        .lock()
        .expect("chaos state poisoned")
        .as_ref()
        .and_then(|a| a.plan.attempt_fault(key, attempt))
}

/// The deadline (ms) an injected stall imposes on its attempt, if
/// `fault` is a stall. Other faults defer to the campaign policy.
pub(crate) fn stall_deadline_ms(fault: Option<ChaosFault>) -> Option<u64> {
    fault
        .filter(|f| f.kind == ChaosKind::Stall)
        .map(|_| STALL_DEADLINE_MS)
}

/// Applies `fault` at the start of an attempt. A worker panic panics
/// (recovered by the supervisor's panic capture); a stall sleeps past
/// its deadline and returns a synthetic stalled error — the attempt
/// never reaches the real simulation, so an abandoned stalled attempt
/// cannot race its own retry. Returns `None` (run the real attempt) for
/// no fault or checkpoint-level kinds.
pub(crate) fn apply_attempt_fault(fault: Option<ChaosFault>) -> Option<SimError> {
    match fault.map(|f| f.kind) {
        Some(ChaosKind::WorkerPanic) => panic!("chaos: injected worker panic"),
        Some(ChaosKind::Stall) => {
            std::thread::sleep(std::time::Duration::from_millis(STALL_SLEEP_MS));
            Some(SimError::Stalled {
                cycle: 0,
                snapshot: "chaos: injected stall".into(),
            })
        }
        _ => None,
    }
}

/// The checkpoint-persistence fault to inject when storing the given
/// cell, if chaos is armed and the plan drew one.
pub(crate) fn checkpoint_fault_for(cfg: &SystemConfig, workload: &Workload) -> Option<ChaosKind> {
    let key = checkpoint::cell_hash(cfg, workload);
    ARMED
        .lock()
        .expect("chaos state poisoned")
        .as_ref()
        .and_then(|a| a.plan.checkpoint_fault(key))
}

/// Records an absorbed checkpoint fault (shared wording for the torn /
/// io variants applied by [`crate::checkpoint`]).
pub(crate) fn record_absorbed_checkpoint(
    cfg: &SystemConfig,
    workload: &Workload,
    kind: ChaosKind,
    detail: &str,
) {
    eprintln!(
        "[chaos: {} on checkpoint of {} × {} ({detail})]",
        kind.label(),
        cfg.design.label(),
        workload.name
    );
    supervisor::record_absorbed(
        cfg.design.label(),
        &workload.name,
        "io",
        kind.label(),
        detail,
    );
}

/// Truncates `path` to 60% of its length — a committed-looking but torn
/// checkpoint artifact, as left by a crash between the data write and
/// the disk. Best-effort; the point is the corruption, not its success.
pub(crate) fn tear_file(path: &Path) {
    if let Ok(meta) = fs::metadata(path) {
        let keep = (meta.len() as usize * 3) / 5;
        if let Ok(bytes) = fs::read(path) {
            fs::write(path, &bytes[..keep.min(bytes.len())]).ok();
        }
    }
}

/// Notes one successful cell completion; if the plan scheduled a kill at
/// this count (and it has not fired in a previous incarnation of this
/// campaign — marker files under `out/chaos-kills/` gate each point),
/// aborts the whole process, exactly as `kill -9` would.
pub(crate) fn on_cell_complete() {
    let mut guard = ARMED.lock().expect("chaos state poisoned");
    let Some(armed) = guard.as_mut() else {
        return;
    };
    armed.completed += 1;
    let Some(point) = armed.plan.kill_due(armed.completed) else {
        return;
    };
    let dir = armed.out.join("chaos-kills");
    let marker = dir.join(format!("kill-{point}.marker"));
    if marker.exists() {
        return; // this kill point already fired in a previous run
    }
    fs::create_dir_all(&dir).ok();
    if let Ok(f) = fs::File::create(&marker) {
        f.sync_all().ok();
    }
    eprintln!(
        "[chaos: kill point {point} at completion {} — aborting]",
        armed.completed
    );
    std::process::abort();
}

// ---------------------------------------------------------------------
// The out-of-process driver: fault-free reference vs chaos run.
// ---------------------------------------------------------------------

/// Parameters of one chaos campaign drive.
#[derive(Debug, Clone)]
pub struct DriveConfig {
    /// Chaos seed for the run under test.
    pub seed: u64,
    /// Path of the `all_experiments` campaign binary.
    pub campaign_bin: PathBuf,
    /// Scratch directory (wiped): reference and chaos runs land in
    /// `ref/` and `chaos/` beneath it.
    pub work_dir: PathBuf,
    /// Experiment subset to drive (`--only`), normally `"fig07"`.
    pub only: String,
    /// Restart budget for kill points; exceeded = failure.
    pub max_restarts: u32,
}

impl DriveConfig {
    /// The standard smoke drive: `seed` on the quick fig07 grid.
    pub fn smoke(seed: u64, campaign_bin: PathBuf, work_dir: PathBuf) -> Self {
        DriveConfig {
            seed,
            campaign_bin,
            work_dir,
            only: "fig07".into(),
            max_restarts: 8,
        }
    }
}

/// What a [`drive`] proved, plus the overhead numbers for
/// `BENCH_chaos.json`.
#[derive(Debug, Clone)]
pub struct DriveOutcome {
    /// Times the chaos campaign was restarted after a kill point.
    pub restarts: u32,
    /// Wall-clock of the fault-free reference run, seconds.
    pub fault_free_secs: f64,
    /// Total wall-clock of the chaos run across restarts, seconds.
    pub chaos_secs: f64,
    /// Rows whose full bytes matched the reference.
    pub rows_identical: usize,
    /// Rows degraded to quarantine placeholders.
    pub rows_quarantined: usize,
    /// Healed cells (failed at least once, recovered by retry).
    pub healed: usize,
    /// Absorbed checkpoint faults.
    pub absorbed: usize,
    /// Chaos fault labels that observably fired (manifest + kills).
    pub covered: Vec<String>,
}

impl DriveOutcome {
    /// The `BENCH_chaos.json` document for this outcome.
    pub fn bench_json(&self, seed: u64, only: &str) -> Json {
        Json::Obj(vec![
            ("benchmark".into(), Json::Str("chaos-recovery".into())),
            ("seed".into(), Json::uint(seed)),
            ("grid".into(), Json::Str(format!("{only} (quick)"))),
            ("fault_free_secs".into(), Json::Num(self.fault_free_secs)),
            ("chaos_secs".into(), Json::Num(self.chaos_secs)),
            (
                "recovery_overhead".into(),
                Json::Num(self.chaos_secs / self.fault_free_secs.max(1e-9)),
            ),
            ("restarts".into(), Json::uint(self.restarts as u64)),
            (
                "rows_identical".into(),
                Json::uint(self.rows_identical as u64),
            ),
            (
                "rows_quarantined".into(),
                Json::uint(self.rows_quarantined as u64),
            ),
            ("healed".into(), Json::uint(self.healed as u64)),
            ("absorbed".into(), Json::uint(self.absorbed as u64)),
            (
                "covered".into(),
                Json::Arr(self.covered.iter().map(|s| Json::Str(s.clone())).collect()),
            ),
        ])
    }
}

/// The pinned environment both the reference and the chaos campaign run
/// under: quick suite, short windows, two workers (so worker scheduling
/// differs from the serial reference order — determinism must not lean
/// on it).
fn campaign_env(cmd: &mut Command) {
    cmd.env("BEAR_QUICK", "1")
        .env("BEAR_WARMUP", "30000")
        .env("BEAR_CYCLES", "80000")
        .env("BEAR_SCALE", "12")
        .env("BEAR_WORKERS", "2")
        .env_remove("BEAR_CHAOS_SEED")
        .env_remove("BEAR_CELL_DEADLINE_MS");
}

/// The smoke grid's pinned plan (must match [`campaign_env`]).
fn smoke_plan() -> RunPlan {
    RunPlan {
        warmup: 30_000,
        measure: 80_000,
        scale_shift: 12,
    }
}

/// Cell identity keys of the chaos smoke grid: fig07 (Alloy baseline ×
/// BAB) over the quick suite, under the pinned plan [`drive`] uses. The
/// seed-coverage test checks [`SMOKE_SEED`] against exactly these keys.
pub fn smoke_grid_keys() -> Vec<u64> {
    let plan = smoke_plan();
    let cfgs = [
        config_for(DesignKind::Alloy, BearFeatures::none(), &plan),
        config_for(DesignKind::Alloy, BearFeatures::bab(), &plan),
    ];
    let mut suite: Vec<Workload> = bear_workloads::rate_workloads();
    suite.truncate(4);
    let mut mixes = bear_workloads::mix_workloads();
    mixes.truncate(2);
    suite.extend(mixes);
    cfgs.iter()
        .flat_map(|c| suite.iter().map(|w| checkpoint::cell_hash(c, w)))
        .collect()
}

/// Runs the campaign binary once; returns `Ok(secs)` on clean exit,
/// `Err(secs)` when it died (a fired kill point).
fn run_campaign(cfg: &DriveConfig, out: &Path, chaos: bool) -> Result<f64, f64> {
    let mut cmd = Command::new(&cfg.campaign_bin);
    cmd.args(["--only", &cfg.only, "--out"])
        .arg(out)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    campaign_env(&mut cmd);
    if chaos {
        cmd.env("BEAR_CHAOS_SEED", cfg.seed.to_string())
            .env("BEAR_MAX_RETRIES", "2")
            .env("BEAR_RETRY_BASE_MS", "1");
    }
    let t0 = Instant::now();
    let status = cmd.status().expect("spawn campaign binary");
    let secs = t0.elapsed().as_secs_f64();
    if status.success() {
        Ok(secs)
    } else {
        Err(secs)
    }
}

/// Runs the full recovery proof: fault-free reference, chaos campaign
/// (restarted across kill points), then the row-by-row comparison and
/// fault-coverage accounting described in the module docs.
///
/// # Errors
///
/// A human-readable explanation of the first violated property: the
/// reference failing, the restart budget exhausting, a recovered row
/// differing from the reference, or a manifest inconsistency.
pub fn drive(cfg: &DriveConfig) -> Result<DriveOutcome, String> {
    fs::remove_dir_all(&cfg.work_dir).ok();
    let ref_dir = cfg.work_dir.join("ref");
    let chaos_dir = cfg.work_dir.join("chaos");
    fs::create_dir_all(&ref_dir).map_err(|e| format!("creating {ref_dir:?}: {e}"))?;

    let fault_free_secs =
        run_campaign(cfg, &ref_dir, false).map_err(|_| "reference campaign failed".to_string())?;

    let mut restarts = 0u32;
    let mut chaos_secs = 0.0;
    loop {
        match run_campaign(cfg, &chaos_dir, true) {
            Ok(secs) => {
                chaos_secs += secs;
                break;
            }
            Err(secs) => {
                chaos_secs += secs;
                restarts += 1;
                if restarts > cfg.max_restarts {
                    return Err(format!(
                        "chaos campaign still dying after {restarts} restarts"
                    ));
                }
            }
        }
    }

    let report_name = format!("{}.json", cfg.only);
    let ref_doc = read_json(&ref_dir.join(&report_name))?;
    let chaos_doc = read_json(&chaos_dir.join(&report_name))?;
    let manifest = read_json(&chaos_dir.join("failures.json"))?;

    compare_reports(&ref_doc, &chaos_doc, &manifest, restarts).map(|mut outcome| {
        outcome.restarts = restarts;
        outcome.fault_free_secs = fault_free_secs;
        outcome.chaos_secs = chaos_secs;
        outcome
    })
}

fn read_json(path: &Path) -> Result<Json, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("parsing {path:?}: {e}"))
}

fn rows_of(doc: &Json) -> Result<&[Json], String> {
    doc.get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| "report has no rows array".to_string())
}

fn row_key(row: &Json) -> (String, String) {
    (
        row.get("config")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
        row.get("workload")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
    )
}

/// The recovered-report checks: every chaos row either byte-matches the
/// reference (healthy cells — including ones that were healed, torn, or
/// resumed across a kill) or carries a `status` tag matched by a
/// quarantine entry in the manifest. Cell-local `stats` must match the
/// reference even for rows whose *speedup* was polluted by a failed
/// baseline cell of the same workload.
fn compare_reports(
    ref_doc: &Json,
    chaos_doc: &Json,
    manifest: &Json,
    restarts: u32,
) -> Result<DriveOutcome, String> {
    let ref_rows = rows_of(ref_doc)?;
    let chaos_rows = rows_of(chaos_doc)?;
    if ref_rows.len() != chaos_rows.len() {
        return Err(format!(
            "row count diverged: reference {}, chaos {}",
            ref_rows.len(),
            chaos_rows.len()
        ));
    }

    let section = |name: &str| -> Vec<&Json> {
        manifest
            .get(name)
            .and_then(Json::as_arr)
            .map(|a| a.iter().collect())
            .unwrap_or_default()
    };
    let quarantined = section("quarantined");
    let healed = section("healed");
    let absorbed = section("absorbed");

    // Workloads touched by any quarantine: their *other* rows have
    // baseline-polluted speedups, so only their stats are comparable.
    let failed_workloads: Vec<String> = quarantined
        .iter()
        .filter_map(|r| r.get("workload").and_then(Json::as_str))
        .map(str::to_string)
        .collect();

    let mut rows_identical = 0usize;
    let mut rows_quarantined = 0usize;
    for (r, c) in ref_rows.iter().zip(chaos_rows) {
        if row_key(r) != row_key(c) {
            return Err(format!(
                "row order diverged: {:?} vs {:?}",
                row_key(r),
                row_key(c)
            ));
        }
        let (config, workload) = row_key(c);
        if let Some(status) = c.get("status").and_then(Json::as_str) {
            rows_quarantined += 1;
            // Manifest entries carry the cell's design label; report rows
            // carry the experiment's label for the config. The row's
            // stats.design bridges the two (placeholders inherit it from
            // their config), mirroring `Report::mark_degraded_rows`.
            let design = c
                .get("stats")
                .and_then(|s| s.get("design"))
                .and_then(Json::as_str)
                .unwrap_or_default();
            let matched = quarantined.iter().any(|q| {
                q.get("workload").and_then(Json::as_str) == Some(&workload)
                    && q.get("config")
                        .and_then(Json::as_str)
                        .is_some_and(|qc| qc == config || qc == design)
            });
            if !matched {
                return Err(format!(
                    "row {config} × {workload} has status {status:?} \
                     but no quarantine entry in failures.json"
                ));
            }
            continue;
        }
        if c.get("stats").map(Json::to_string) != r.get("stats").map(Json::to_string) {
            return Err(format!(
                "recovered stats for {config} × {workload} differ from the fault-free run"
            ));
        }
        if failed_workloads.contains(&workload) {
            continue; // speedup is baseline-polluted; stats matched above
        }
        if c.to_string() != r.to_string() {
            return Err(format!(
                "recovered row {config} × {workload} is not byte-identical \
                 to the fault-free run"
            ));
        }
        rows_identical += 1;
    }

    if rows_quarantined == 0 {
        let (r, c) = (
            ref_doc.get("rows").map(Json::to_string),
            chaos_doc.get("rows").map(Json::to_string),
        );
        if r != c {
            return Err("no quarantines, yet the rows arrays differ".into());
        }
    }

    // Every quarantined cell must appear as a failure in the report too
    // (graceful degradation: the report itself names what broke).
    let report_failures = chaos_doc
        .get("failures")
        .and_then(Json::as_arr)
        .ok_or("report has no failures array")?;
    if report_failures.len() != quarantined.len() {
        return Err(format!(
            "report failures ({}) and manifest quarantines ({}) disagree",
            report_failures.len(),
            quarantined.len()
        ));
    }

    let mut covered: Vec<String> = quarantined
        .iter()
        .chain(&healed)
        .chain(&absorbed)
        .filter_map(|r| r.get("chaos").and_then(Json::as_str))
        .map(str::to_string)
        .collect();
    if restarts > 0 {
        covered.push(ChaosKind::Kill.label().to_string());
    }
    covered.sort();
    covered.dedup();

    Ok(DriveOutcome {
        restarts: 0,
        fault_free_secs: 0.0,
        chaos_secs: 0.0,
        rows_identical,
        rows_quarantined,
        healed: healed.len(),
        absorbed: absorbed.len(),
        covered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// What the smoke seed must draw on the smoke grid for the chaos
    /// suite to exercise every recovery path.
    fn coverage(seed: u64, keys: &[u64]) -> (BTreeSet<&'static str>, bool, bool) {
        let plan = ChaosPlan::new(seed);
        let mut labels = BTreeSet::new();
        let (mut transient, mut persistent) = (false, false);
        let mut quarantined = 0u64;
        for &key in keys {
            let fault = plan.attempt_fault(key, 0);
            if let Some(f) = fault {
                labels.insert(f.kind.label());
                transient |= !f.persistent;
                persistent |= f.persistent;
                quarantined += u64::from(f.persistent);
            }
            // A checkpoint fault only fires when the cell actually
            // stores; a persistently-failing cell never reaches the
            // checkpoint layer, so its draw is masked at runtime.
            if fault.is_none_or(|f| !f.persistent) {
                if let Some(k) = plan.checkpoint_fault(key) {
                    labels.insert(k.label());
                }
            }
        }
        // A kill point at completion count `k` fires only if that many
        // cells can complete; quarantined cells never do.
        let cells = keys.len() as u64;
        let kills_reachable = plan.kill_points.iter().all(|&k| k + quarantined <= cells);
        if kills_reachable {
            labels.insert(ChaosKind::Kill.label());
        }
        (labels, transient, persistent)
    }

    #[test]
    fn smoke_seed_covers_every_chaos_kind() {
        let keys = smoke_grid_keys();
        assert_eq!(
            keys.len(),
            12,
            "fig07 quick grid is 2 configs × 6 workloads"
        );
        let (labels, transient, persistent) = coverage(SMOKE_SEED, &keys);
        for kind in ChaosKind::ALL {
            assert!(
                labels.contains(kind.label()),
                "SMOKE_SEED {SMOKE_SEED} does not draw {:?} on the smoke \
                 grid (drew {labels:?}); re-pin the seed",
                kind.label()
            );
        }
        assert!(transient, "need a healed (transient) fault");
        assert!(persistent, "need a quarantined (persistent) fault");
    }

    /// Seed scout: run with `--ignored --nocapture` to re-pin
    /// [`SMOKE_SEED`] after the smoke grid changes.
    #[test]
    #[ignore = "manual seed search tool"]
    fn find_smoke_seed() {
        let keys = smoke_grid_keys();
        for seed in 0..100_000u64 {
            let (labels, transient, persistent) = coverage(seed, &keys);
            if transient && persistent && ChaosKind::ALL.iter().all(|k| labels.contains(k.label()))
            {
                println!("seed {seed} covers: {labels:?}");
                return;
            }
        }
        panic!("no covering seed below 100000");
    }

    #[test]
    fn tear_file_truncates_in_place() {
        let path = std::env::temp_dir().join(format!("bear_tear_{}", std::process::id()));
        fs::write(&path, vec![b'x'; 100]).unwrap();
        tear_file(&path);
        assert_eq!(fs::metadata(&path).unwrap().len(), 60);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn disarmed_chaos_is_inert() {
        assert_eq!(armed_seed(), None);
        assert_eq!(attempt_fault(123, 0), None);
        assert_eq!(apply_attempt_fault(None), None);
        on_cell_complete(); // no plan, no kill
    }
}
