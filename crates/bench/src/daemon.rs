//! The resident campaign daemon behind the `beard` binary.
//!
//! Batch campaigns (PR 1–7) run a fixed grid and exit. The ROADMAP's
//! "simulation-as-a-service" item wants the opposite shape: a
//! long-running service that accepts (configuration, workload) job
//! submissions over a socket, runs them on a worker pool, streams
//! telemetry back live, and — because it is resident — must stay healthy
//! under every failure a batch run could simply die from. This module is
//! that service, built entirely from the substrate the earlier PRs
//! proved: jobs journal through the fsync'd [`CellStore`] commit
//! protocol (PR 2), every attempt runs under the
//! [`supervisor`](crate::supervisor) retry/backoff/deadline/quarantine
//! state machine (PR 6), and per-job telemetry rides the PR 4 sampler
//! with a new live streaming sink.
//!
//! # Protocol
//!
//! Newline-delimited JSON over a TCP or Unix socket, one request per
//! line, typed one-line responses (`"type"` discriminates). Requests:
//!
//! ```text
//! {"op":"submit","id":"j1","client":"alice","design":"Alloy","bear":"full",
//!  "workload":"rate:mcf","warmup":2000,"measure":3000,"scale":12}
//! {"op":"cancel","id":"j1"}
//! {"op":"status"}
//! {"op":"metrics"}
//! {"op":"drain"}            // or {"op":"drain","mode":"fast"}
//! ```
//!
//! `metrics` returns a live snapshot of the daemon's metrics registry —
//! queue depth, per-client admission/shed counters, the EWMA retry-after
//! hint, worker health, a job wall-time histogram, and the per-job bloat
//! decomposition recorded so far — both as the registry's stable JSON
//! dump (`"registry"`) and as Prometheus-style text (`"exposition"`).
//! Every job carries a stable trace id (`{:016x}` of [`JobSpec::key`]),
//! stamped onto streamed telemetry lines and supervision rows, so one
//! submission can be correlated across retries and restarts.
//!
//! A submission is **acknowledged only after its journal entry is
//! durably committed** — the `accepted` line is the client's receipt
//! that the job survives any subsequent daemon death. Malformed JSON,
//! oversized lines, and truncated submissions yield a typed `error`
//! response (never a panic, never a hung connection); an unanswered
//! submit (connection drop, daemon kill) is safely resubmitted — job ids
//! make submission idempotent.
//!
//! # Robustness core
//!
//! - **Admission control**: the queue is bounded (`queue_capacity`
//!   global, `client_quota` per client). Excess load is shed with a
//!   typed `overloaded` response carrying a retry-after hint derived
//!   from the observed mean job time — the daemon never buffers
//!   unboundedly toward OOM, and shed jobs were never accepted, so
//!   "zero accepted jobs lost" stays provable.
//! - **Fair-share scheduling**: ready clients are drained round-robin,
//!   one job per turn, so a chatty client cannot starve the grid.
//! - **Worker healing**: a worker thread that dies (chaos worker-kill, a
//!   real panic escaping the supervised attempt) is detected by the pool
//!   monitor; its in-flight job is requeued at the front and a
//!   replacement worker is spawned.
//! - **Crash-safe jobs**: the journal replays on restart — committed,
//!   uncancelled jobs whose results are not already in the result cache
//!   are re-enqueued and, the simulator being deterministic, complete
//!   byte-identically. The chaos suite (`tests/daemon.rs`) proves a
//!   kill-riddled run's final report equals the fault-free run's, byte
//!   for byte.
//! - **Graceful drain**: `drain` stops intake, closes the listener
//!   *before* the pool stops, finishes (default) or checkpoints (`fast`)
//!   in-flight work, flushes `failures.json`, writes the final
//!   `daemon_report.json`, and lets the process exit 0.
//!
//! # Job lifecycle
//!
//! ```text
//!            submit                    pop                   attempt ok
//! (client) ----------> Queued ----------------> Running -----------------> Completed
//!                        |  \                    |   |  \
//!                        |   cancel              |   |   attempts exhausted -> Failed
//!                        |                       |   cancel (cooperative,
//!                        v                       |    settles after attempt) -> Cancelled
//!                    Cancelled                   |
//!                                                | worker death: requeued (front)
//!                                                v
//!                                              Queued
//! ```
//!
//! Chaos (armed via `BEAR_CHAOS_SEED` in `beard`) draws three
//! daemon-level fault classes per
//! [`DaemonChaosKind`](bear_sim::faultinject::DaemonChaosKind):
//! connection drops mid-stream, worker kills mid-job, and whole-daemon
//! kill -9 in the worst window — between a job's journal commit and its
//! acknowledgment. All of them heal completely; none may change a single
//! report byte.

use crate::checkpoint::{self, CellStore};
use crate::report::{stats_to_json, Json};
use crate::supervisor::{self, SupervisionRow, SupervisorConfig};
use crate::{config_for, RunPlan};
use bear_core::config::{BearFeatures, DesignKind, SystemConfig};
use bear_core::metrics::RunStats;
use bear_core::system::System;
use bear_sim::faultinject::{ChaosPlan, DaemonChaosKind};
use bear_telemetry::{live_channel, Registry};
use bear_workloads::Workload;
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Longest accepted request line (bytes, newline included). Anything
/// longer is shed with a typed `oversized` error and the connection is
/// closed — a malicious or broken client cannot balloon daemon memory.
pub const MAX_LINE: usize = 64 * 1024;

/// Every design label the protocol accepts, in catalogue order.
const DESIGNS: [DesignKind; 8] = [
    DesignKind::NoCache,
    DesignKind::Alloy,
    DesignKind::InclusiveAlloy,
    DesignKind::BwOpt,
    DesignKind::LohHill,
    DesignKind::MostlyClean,
    DesignKind::TagsInSram,
    DesignKind::SectorCache,
];

/// BEAR feature-set names the protocol accepts (applied to Alloy only,
/// like [`config_for`]).
const BEAR_SETS: [&str; 5] = ["none", "bab", "bab+dcp", "full", "full+tntc"];

fn bear_features(name: &str) -> Option<BearFeatures> {
    match name {
        "none" => Some(BearFeatures::none()),
        "bab" => Some(BearFeatures::bab()),
        "bab+dcp" => Some(BearFeatures::bab_dcp()),
        "full" => Some(BearFeatures::full()),
        "full+tntc" => Some(BearFeatures::full_with_temporal_ntc()),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Protocol: requests, typed errors, parsing
// ---------------------------------------------------------------------------

/// One fully validated job submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Client-chosen job id — the idempotency key for resubmission.
    pub id: String,
    /// Submitting client's name (the fair-share scheduling unit).
    pub client: String,
    /// Design label (e.g. `"Alloy"`).
    pub design: DesignKind,
    /// BEAR feature-set name (one of [`BEAR_SETS`]).
    pub bear: String,
    /// Workload name from the standard suites (e.g. `"rate:mcf"`).
    pub workload: String,
    /// Warmup cycles.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Joint capacity scale shift.
    pub scale_shift: u32,
    /// Optional per-attempt wall-clock deadline override (ms).
    pub deadline_ms: Option<u64>,
    /// Stream live telemetry samples back over the submitting socket.
    pub telemetry: bool,
    /// Sample window (cycles) when telemetry is armed.
    pub sample_window: u64,
}

impl JobSpec {
    /// The canonical single-line rendering of this spec — what the
    /// journal stores and what the job's identity hashes over. Parsing
    /// it back through [`parse_request`] reproduces the spec exactly.
    pub fn canonical_line(&self) -> String {
        Json::Obj(vec![
            ("op".into(), Json::Str("submit".into())),
            ("id".into(), Json::Str(self.id.clone())),
            ("client".into(), Json::Str(self.client.clone())),
            ("design".into(), Json::Str(self.design.label().into())),
            ("bear".into(), Json::Str(self.bear.clone())),
            ("workload".into(), Json::Str(self.workload.clone())),
            ("warmup".into(), Json::uint(self.warmup)),
            ("measure".into(), Json::uint(self.measure)),
            ("scale".into(), Json::uint(self.scale_shift as u64)),
            (
                "deadline_ms".into(),
                self.deadline_ms.map_or(Json::Null, Json::uint),
            ),
            ("telemetry".into(), Json::Bool(self.telemetry)),
            ("sample_window".into(), Json::uint(self.sample_window)),
        ])
        .to_string()
    }

    /// Stable identity of this job: a digest of the canonical line.
    /// Restart-, scheduling-, and worker-count-independent — the chaos
    /// plan keys its daemon fault draws on this.
    pub fn key(&self) -> u64 {
        checkpoint::fnv1a64(self.canonical_line().as_bytes())
    }

    /// The job's correlation/trace id: the identity hash rendered as 16
    /// hex digits. Identical across retries, worker respawns, and daemon
    /// restarts — grep it through streamed telemetry, supervision rows,
    /// and Chrome traces to follow one submission end to end.
    pub fn trace_id(&self) -> String {
        format!("{:016x}", self.key())
    }

    /// Journal file stem: a sanitized id slug plus the identity hash, so
    /// two specs reusing one id can never overwrite each other's entry.
    pub fn stem(&self) -> String {
        let slug: String = self
            .id
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .take(40)
            .collect();
        format!("job-{slug}-{:016x}", self.key())
    }

    /// The system configuration this job runs.
    pub fn system_config(&self) -> SystemConfig {
        let plan = RunPlan {
            warmup: self.warmup,
            measure: self.measure,
            scale_shift: self.scale_shift,
        };
        let bear = bear_features(&self.bear).expect("validated at parse time");
        config_for(self.design, bear, &plan)
    }

    /// The workload this job runs.
    pub fn workload(&self) -> Workload {
        bear_workloads::all_workloads()
            .into_iter()
            .find(|w| w.name == self.workload)
            .expect("validated at parse time")
    }
}

/// One parsed protocol request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a job.
    Submit(Box<JobSpec>),
    /// Cancel a job by id.
    Cancel(String),
    /// Snapshot the daemon's counters.
    Status,
    /// Snapshot the live metrics registry (JSON dump + exposition text).
    Metrics,
    /// Stop intake and shut down; `fast` checkpoints queued jobs instead
    /// of finishing them.
    Drain {
        /// Finish only in-flight attempts; leave queued jobs journaled.
        fast: bool,
    },
}

/// A typed protocol rejection: machine-readable kind plus human detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Stable error class: `"protocol"`, `"oversized"`, `"bad-job"`.
    pub kind: &'static str,
    /// What exactly was wrong.
    pub detail: String,
}

impl ProtoError {
    fn protocol(detail: impl Into<String>) -> ProtoError {
        ProtoError {
            kind: "protocol",
            detail: detail.into(),
        }
    }

    fn bad_job(detail: impl Into<String>) -> ProtoError {
        ProtoError {
            kind: "bad-job",
            detail: detail.into(),
        }
    }

    fn to_line(&self) -> String {
        Json::Obj(vec![
            ("type".into(), Json::Str("error".into())),
            ("kind".into(), Json::Str(self.kind.into())),
            ("detail".into(), Json::Str(self.detail.clone())),
        ])
        .to_string()
    }
}

/// Parses one request line. Total: every possible byte string returns
/// either a request or a typed [`ProtoError`] — the hardening property
/// test mutates valid lines at the byte level and asserts this never
/// panics.
///
/// # Errors
///
/// [`ProtoError`] with kind `"oversized"` (line too long), `"protocol"`
/// (not JSON, not an object, unknown/missing `op`, ill-typed field), or
/// `"bad-job"` (well-formed submit whose values are out of range or name
/// unknown designs/workloads).
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    if line.len() > MAX_LINE {
        return Err(ProtoError {
            kind: "oversized",
            detail: format!("request line of {} bytes exceeds {MAX_LINE}", line.len()),
        });
    }
    let doc = Json::parse(line).map_err(|e| ProtoError::protocol(format!("not JSON: {e}")))?;
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::protocol("missing string field \"op\""))?;
    let str_field = |key: &str| -> Result<String, ProtoError> {
        doc.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ProtoError::protocol(format!("missing string field {key:?}")))
    };
    match op {
        "submit" => {
            let id = str_field("id")?;
            if id.is_empty() || id.len() > 64 {
                return Err(ProtoError::bad_job("id must be 1..=64 characters"));
            }
            let client = str_field("client")?;
            if client.is_empty() || client.len() > 64 {
                return Err(ProtoError::bad_job("client must be 1..=64 characters"));
            }
            let design_label = str_field("design")?;
            let design = DESIGNS
                .into_iter()
                .find(|d| d.label() == design_label)
                .ok_or_else(|| ProtoError::bad_job(format!("unknown design {design_label:?}")))?;
            let bear = str_field("bear")?;
            if bear_features(&bear).is_none() {
                return Err(ProtoError::bad_job(format!(
                    "unknown bear feature set {bear:?} (one of {BEAR_SETS:?})"
                )));
            }
            let workload = str_field("workload")?;
            if !bear_workloads::all_workloads()
                .iter()
                .any(|w| w.name == workload)
            {
                return Err(ProtoError::bad_job(format!(
                    "unknown workload {workload:?}"
                )));
            }
            let uint_field = |key: &str| -> Result<u64, ProtoError> {
                doc.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ProtoError::protocol(format!("missing integer field {key:?}")))
            };
            let warmup = uint_field("warmup")?;
            let measure = uint_field("measure")?;
            if measure == 0 || warmup.saturating_add(measure) > 100_000_000 {
                return Err(ProtoError::bad_job(
                    "warmup+measure must be in 1..=100M cycles",
                ));
            }
            let scale = uint_field("scale")?;
            if !(1..=30).contains(&scale) {
                return Err(ProtoError::bad_job("scale must be in 1..=30"));
            }
            let deadline_ms = match doc.get("deadline_ms") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().filter(|&ms| ms > 0).ok_or_else(|| {
                    ProtoError::protocol("deadline_ms must be a positive integer or null")
                })?),
            };
            let telemetry = match doc.get("telemetry") {
                None | Some(Json::Null) => false,
                Some(Json::Bool(b)) => *b,
                Some(_) => return Err(ProtoError::protocol("telemetry must be a boolean")),
            };
            let sample_window = match doc.get("sample_window") {
                None | Some(Json::Null) => bear_telemetry::DEFAULT_SAMPLE_WINDOW,
                Some(v) => v.as_u64().filter(|&w| w > 0).ok_or_else(|| {
                    ProtoError::protocol("sample_window must be a positive integer")
                })?,
            };
            Ok(Request::Submit(Box::new(JobSpec {
                id,
                client,
                design,
                bear,
                workload,
                warmup,
                measure,
                scale_shift: scale as u32,
                deadline_ms,
                telemetry,
                sample_window,
            })))
        }
        "cancel" => Ok(Request::Cancel(str_field("id")?)),
        "status" => Ok(Request::Status),
        "metrics" => Ok(Request::Metrics),
        "drain" => {
            let fast = match doc.get("mode").and_then(Json::as_str) {
                None => false,
                Some("fast") => true,
                Some(m) => {
                    return Err(ProtoError::protocol(format!("unknown drain mode {m:?}")));
                }
            };
            Ok(Request::Drain { fast })
        }
        other => Err(ProtoError::protocol(format!("unknown op {other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Sockets: TCP and Unix behind one seam
// ---------------------------------------------------------------------------

/// One accepted connection (TCP or Unix domain).
#[derive(Debug)]
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    fn shutdown(&self) {
        match self {
            Conn::Tcp(s) => {
                s.shutdown(std::net::Shutdown::Both).ok();
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                s.shutdown(std::net::Shutdown::Both).ok();
            }
        }
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(timeout),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

#[derive(Debug)]
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

impl Listener {
    /// Binds `addr`: `"unix:PATH"` for a Unix domain socket (a stale
    /// socket file is replaced), anything else as a TCP address (use
    /// port 0 for an ephemeral port). Returns the listener and the
    /// *actual* address string clients should dial.
    fn bind(addr: &str) -> std::io::Result<(Listener, String)> {
        #[cfg(unix)]
        if let Some(path) = addr.strip_prefix("unix:") {
            std::fs::remove_file(path).ok();
            let l = std::os::unix::net::UnixListener::bind(path)?;
            return Ok((Listener::Unix(l), format!("unix:{path}")));
        }
        let l = TcpListener::bind(addr)?;
        let actual = l.local_addr()?.to_string();
        Ok((Listener::Tcp(l), actual))
    }

    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

fn dial(addr: &str) -> std::io::Result<Conn> {
    #[cfg(unix)]
    if let Some(path) = addr.strip_prefix("unix:") {
        return std::os::unix::net::UnixStream::connect(path).map(Conn::Unix);
    }
    TcpStream::connect(addr).map(Conn::Tcp)
}

/// Shared, locked write half of a connection — workers and the live
/// telemetry forwarder push lines concurrently. Write errors are
/// swallowed: a client that went away forfeits its notifications, the
/// job itself is unaffected.
#[derive(Debug, Clone)]
struct ReplyHandle(Arc<Mutex<Conn>>);

impl ReplyHandle {
    fn send_line(&self, line: &str) {
        let mut w = self.0.lock().expect("reply handle poisoned");
        let _ = w.write_all(line.as_bytes()).and_then(|()| {
            w.write_all(b"\n")?;
            w.flush()
        });
    }
}

// ---------------------------------------------------------------------------
// Daemon state
// ---------------------------------------------------------------------------

/// Service policy for one daemon instance.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Report directory: the job journal, result cache, `failures.json`,
    /// and `daemon_report.json` all live under it.
    pub out: PathBuf,
    /// Worker pool size.
    pub workers: usize,
    /// Global bound on queued (not yet running) jobs; beyond it
    /// submissions shed with `overloaded`.
    pub queue_capacity: usize,
    /// Per-client bound on queued jobs — the backstop that keeps one
    /// chatty client from monopolizing even the admission queue.
    pub client_quota: usize,
    /// Per-job retry/backoff/deadline policy (jobs may tighten the
    /// deadline per submission).
    pub supervisor: SupervisorConfig,
    /// Daemon-level chaos plan, when armed (`BEAR_CHAOS_SEED`).
    pub chaos: Option<ChaosPlan>,
    /// Whether a drawn daemon-kill may actually abort the process. Only
    /// `beard` (a disposable subprocess) sets this; in-process daemons
    /// (unit tests) never abort their host.
    pub allow_kill: bool,
}

impl DaemonConfig {
    /// Default policy rooted at `out`: 2 workers, a 64-job queue, a
    /// 32-job per-client quota, environment-configured supervision, no
    /// chaos.
    pub fn new(out: &Path) -> DaemonConfig {
        DaemonConfig {
            out: out.to_path_buf(),
            workers: 2,
            queue_capacity: 64,
            client_quota: 32,
            supervisor: SupervisorConfig::from_env(),
            chaos: None,
            allow_kill: false,
        }
    }

    /// Arms daemon chaos from `BEAR_CHAOS_SEED` (kills enabled — only
    /// call in a disposable process like `beard`).
    ///
    /// # Panics
    ///
    /// Panics when the variable is set but not an integer.
    pub fn chaos_from_env(mut self) -> DaemonConfig {
        if let Ok(v) = std::env::var("BEAR_CHAOS_SEED") {
            let seed: u64 = v.parse().expect("BEAR_CHAOS_SEED must be an integer");
            eprintln!("[daemon chaos: armed with seed {seed}]");
            self.chaos = Some(ChaosPlan::new(seed));
            self.allow_kill = true;
        }
        self
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone)]
enum JobStatus {
    Queued,
    Running,
    Completed(Box<RunStats>),
    Failed {
        kind: String,
        error: String,
        attempts: usize,
    },
    Cancelled,
}

#[derive(Debug)]
struct JobRecord {
    spec: JobSpec,
    status: JobStatus,
    cancel_requested: bool,
    /// Worker-kill chaos fired for this job already (once per daemon
    /// incarnation — the requeued job must then run).
    kill_fired: bool,
    reply: Option<ReplyHandle>,
}

/// Monotonic service counters, reported by `status` and the drain
/// summary. Deliberately excluded from `daemon_report.json`: counters
/// differ between a fault-free and a chaos-riddled run (that is their
/// job), the report may not.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counters {
    /// Submissions admitted (journaled and acknowledged).
    pub accepted: u64,
    /// Submissions shed with `overloaded`.
    pub shed: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs that exhausted supervision and failed.
    pub failed: u64,
    /// Jobs cancelled before completing.
    pub cancelled: u64,
    /// Jobs re-enqueued from the journal at startup.
    pub resumed: u64,
    /// Connections chaos-dropped mid-stream.
    pub conn_drops: u64,
    /// Dead workers healed (requeue + respawn).
    pub workers_respawned: u64,
}

impl Counters {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("accepted".into(), Json::uint(self.accepted)),
            ("shed".into(), Json::uint(self.shed)),
            ("completed".into(), Json::uint(self.completed)),
            ("failed".into(), Json::uint(self.failed)),
            ("cancelled".into(), Json::uint(self.cancelled)),
            ("resumed".into(), Json::uint(self.resumed)),
            ("conn_drops".into(), Json::uint(self.conn_drops)),
            (
                "workers_respawned".into(),
                Json::uint(self.workers_respawned),
            ),
        ])
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DrainMode {
    Full,
    Fast,
}

#[derive(Debug)]
struct State {
    jobs: BTreeMap<String, JobRecord>,
    /// Clients with at least one queued job, in round-robin turn order.
    order: VecDeque<String>,
    queues: BTreeMap<String, VecDeque<String>>,
    queued: usize,
    running: BTreeMap<usize, String>,
    draining: Option<DrainMode>,
    listener_closed: bool,
    workers_alive: usize,
    finalized: bool,
    counters: Counters,
    /// Supervision rows recorded by this incarnation (already merged
    /// into `failures.json` incrementally; kept for the drain flush).
    rows: Vec<SupervisionRow>,
    /// EWMA of observed job wall time, feeding the overload retry-after
    /// hint.
    mean_job_ms: f64,
}

struct Shared {
    cfg: DaemonConfig,
    addr: String,
    journal: CellStore,
    results: CellStore,
    state: Mutex<State>,
    /// Signals workers: queue or drain state changed.
    work: Condvar,
    /// Signals waiters: a job settled, a worker exited, the listener
    /// closed.
    settled: Condvar,
    /// Live metrics registry, shared by every service thread
    /// (observability-only: nothing in it feeds `daemon_report.json`).
    registry: Registry,
    conn_counter: AtomicU64,
    shutdown: AtomicBool,
    worker_handles: Mutex<Vec<Option<std::thread::JoinHandle<()>>>>,
    finished: Mutex<Option<DrainSummary>>,
    done: Condvar,
}

/// What a completed drain reports.
#[derive(Debug, Clone)]
pub struct DrainSummary {
    /// Final counter snapshot.
    pub counters: Counters,
    /// Jobs left queued/running by a fast drain (journaled, resumable).
    pub pending: usize,
    /// Path of the final report.
    pub report: PathBuf,
}

// ---------------------------------------------------------------------------
// Scheduling primitives (pure on State, unit-tested directly)
// ---------------------------------------------------------------------------

/// Enqueues `id` for `client` at the back of its per-client queue,
/// adding the client to the round-robin rotation if it was idle.
fn enqueue(st: &mut State, client: &str, id: String) {
    let q = st.queues.entry(client.to_string()).or_default();
    if q.is_empty() && !st.order.iter().any(|c| c == client) {
        st.order.push_back(client.to_string());
    }
    q.push_back(id);
    st.queued += 1;
}

/// Requeues a job at the *front* of its client's queue (worker-death
/// healing: the job was next in line and stays next in line).
fn requeue_front(st: &mut State, id: String) {
    let client = st.jobs[&id].spec.client.clone();
    let q = st.queues.entry(client.clone()).or_default();
    if q.is_empty() && !st.order.iter().any(|c| c == &client) {
        st.order.push_front(client);
    }
    q.push_front(id.clone());
    st.queued += 1;
    if let Some(rec) = st.jobs.get_mut(&id) {
        rec.status = JobStatus::Queued;
    }
}

/// Pops the next job under the fair-share rule: the client at the head
/// of the rotation gives up one job and moves to the back (if it still
/// has more). One job per client per turn — a client with 50 queued jobs
/// and a client with 1 alternate until the short queue empties.
fn pop_job(st: &mut State) -> Option<String> {
    while let Some(client) = st.order.pop_front() {
        let Some(q) = st.queues.get_mut(&client) else {
            continue;
        };
        let Some(id) = q.pop_front() else {
            st.queues.remove(&client);
            continue;
        };
        if q.is_empty() {
            st.queues.remove(&client);
        } else {
            st.order.push_back(client);
        }
        st.queued -= 1;
        return Some(id);
    }
    None
}

/// Removes a queued job from its client's queue (cancellation).
fn unqueue(st: &mut State, id: &str) -> bool {
    let client = st.jobs[id].spec.client.clone();
    let Some(q) = st.queues.get_mut(&client) else {
        return false;
    };
    let Some(pos) = q.iter().position(|j| j == id) else {
        return false;
    };
    q.remove(pos);
    if q.is_empty() {
        st.queues.remove(&client);
        st.order.retain(|c| c != &client);
    }
    st.queued -= 1;
    true
}

/// The `retry_after_ms` hint attached to `overloaded` responses:
/// backlog-proportional (observed mean job time × queue depth ÷ pool
/// width), clamped to something a client can reasonably sleep.
fn retry_after_ms(st: &State, workers: usize) -> u64 {
    let backlog = (st.queued + st.running.len()) as f64;
    let per = if st.mean_job_ms > 0.0 {
        st.mean_job_ms
    } else {
        1_000.0
    };
    (per * backlog / workers.max(1) as f64).clamp(50.0, 60_000.0) as u64
}

// ---------------------------------------------------------------------------
// The daemon
// ---------------------------------------------------------------------------

/// A running campaign daemon. Construct with [`Daemon::start`]; the
/// instance lives until a client sends `drain` (then [`Daemon::wait`]
/// returns the summary). There is no other shutdown path — killing the
/// process is explicitly survivable instead.
pub struct Daemon {
    shared: Arc<Shared>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    monitor_handle: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Starts the service: replays the journal, binds `listen`
    /// (`"unix:PATH"` or a TCP address; port 0 picks an ephemeral port),
    /// publishes the actual address to `OUT/daemon.addr`, and spawns the
    /// worker pool, pool monitor, and accept loop.
    ///
    /// # Errors
    ///
    /// Propagates journal/socket I/O errors.
    pub fn start(cfg: DaemonConfig, listen: &str) -> std::io::Result<Daemon> {
        std::fs::create_dir_all(&cfg.out)?;
        let journal = CellStore::at(&cfg.out.join("daemon").join("jobs"));
        let results = CellStore::at(&cfg.out.join("daemon").join("results"));
        let (listener, addr) = Listener::bind(listen)?;

        let mut st = State {
            jobs: BTreeMap::new(),
            order: VecDeque::new(),
            queues: BTreeMap::new(),
            queued: 0,
            running: BTreeMap::new(),
            draining: None,
            listener_closed: false,
            workers_alive: cfg.workers,
            finalized: false,
            counters: Counters::default(),
            rows: Vec::new(),
            mean_job_ms: 0.0,
        };
        resume_journal(&journal, &results, &mut st);

        let shared = Arc::new(Shared {
            addr: addr.clone(),
            journal,
            results,
            state: Mutex::new(st),
            work: Condvar::new(),
            settled: Condvar::new(),
            registry: Registry::new(),
            conn_counter: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            worker_handles: Mutex::new(Vec::new()),
            finished: Mutex::new(None),
            done: Condvar::new(),
            cfg,
        });

        // Publish the dialable address (atomically: poll-safe for tests
        // that race daemon startup).
        let addr_path = shared.cfg.out.join("daemon.addr");
        let tmp = shared.cfg.out.join("daemon.addr.tmp");
        std::fs::write(&tmp, format!("{addr}\n"))?;
        std::fs::rename(&tmp, &addr_path)?;

        {
            let mut handles = shared
                .worker_handles
                .lock()
                .expect("worker handles poisoned");
            for idx in 0..shared.cfg.workers {
                let sh = shared.clone();
                handles.push(Some(std::thread::spawn(move || worker_loop(&sh, idx))));
            }
        }
        let monitor_handle = {
            let sh = shared.clone();
            Some(std::thread::spawn(move || monitor_loop(&sh)))
        };
        let accept_handle = {
            let sh = shared.clone();
            Some(std::thread::spawn(move || accept_loop(&sh, listener)))
        };
        shared.work.notify_all();
        Ok(Daemon {
            shared,
            accept_handle,
            monitor_handle,
        })
    }

    /// The address clients dial (also in `OUT/daemon.addr`).
    pub fn addr(&self) -> &str {
        &self.shared.addr
    }

    /// The daemon's live metrics registry (what `{"op":"metrics"}`
    /// snapshots). Cloning is cheap; all clones share the same series.
    pub fn registry(&self) -> Registry {
        self.shared.registry.clone()
    }

    /// Blocks until a client drains the daemon, then joins every service
    /// thread and returns the drain summary.
    pub fn wait(mut self) -> DrainSummary {
        let summary = {
            let mut fin = self.shared.finished.lock().expect("finished poisoned");
            loop {
                if let Some(s) = fin.clone() {
                    break s;
                }
                fin = self.shared.done.wait(fin).expect("finished poisoned");
            }
        };
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_handle.take() {
            h.join().ok();
        }
        if let Some(h) = self.monitor_handle.take() {
            h.join().ok();
        }
        let mut handles = self
            .shared
            .worker_handles
            .lock()
            .expect("worker handles poisoned");
        for h in handles.iter_mut() {
            if let Some(h) = h.take() {
                h.join().ok();
            }
        }
        summary
    }
}

/// Replays the journal into the scheduler: committed, uncancelled
/// entries parse back into specs; those with cached results settle as
/// completed immediately, the rest re-enqueue (client `Queued`, no reply
/// handle — the submitting connection died with the previous
/// incarnation, which is exactly why the journal exists).
fn resume_journal(journal: &CellStore, results: &CellStore, st: &mut State) {
    for stem in journal.list_raw() {
        let Some(line) = journal.load_raw(&stem) else {
            continue; // torn entry: the digest already rejected it
        };
        let Ok(Request::Submit(spec)) = parse_request(line.trim_end()) else {
            eprintln!("[daemon: journal entry {stem} does not parse as a submit; skipped]");
            continue;
        };
        if spec.stem() != stem {
            eprintln!("[daemon: journal entry {stem} fails its identity check; skipped]");
            continue;
        }
        if st.jobs.contains_key(&spec.id) {
            eprintln!(
                "[daemon: journal holds conflicting specs for job {}; keeping the first]",
                spec.id
            );
            continue;
        }
        let cancelled = journal.has_flag(&stem, "cancelled");
        let status = if cancelled {
            st.counters.cancelled += 1;
            JobStatus::Cancelled
        } else if let Some(stats) = results.load(&spec.system_config(), &spec.workload()) {
            st.counters.completed += 1;
            JobStatus::Completed(Box::new(stats))
        } else {
            st.counters.resumed += 1;
            JobStatus::Queued
        };
        let id = spec.id.clone();
        let client = spec.client.clone();
        let queued = matches!(status, JobStatus::Queued);
        st.jobs.insert(
            id.clone(),
            JobRecord {
                spec: *spec,
                status,
                cancel_requested: false,
                kill_fired: false,
                reply: None,
            },
        );
        if queued {
            enqueue(st, &client, id);
        }
    }
    let resumed = st.counters.resumed;
    if resumed > 0 {
        eprintln!("[daemon: resumed {resumed} journaled job(s) from a previous incarnation]");
    }
}

// ---------------------------------------------------------------------------
// Accept loop and per-connection protocol handling
// ---------------------------------------------------------------------------

fn accept_loop(shared: &Arc<Shared>, listener: Listener) {
    loop {
        let draining = shared
            .state
            .lock()
            .expect("daemon state poisoned")
            .draining
            .is_some();
        if draining {
            break;
        }
        match listener.accept() {
            Ok(conn) => {
                let sh = shared.clone();
                std::thread::spawn(move || serve_conn(&sh, conn));
            }
            Err(_) => break,
        }
    }
    // Drop the listener *now* — before any worker stops — so new
    // connections are refused for the whole remainder of the drain.
    drop(listener);
    let mut st = shared.state.lock().expect("daemon state poisoned");
    st.listener_closed = true;
    shared.settled.notify_all();
}

enum ReadLine {
    Line(String),
    Oversized,
    Eof,
}

/// Reads one `\n`-terminated line with a hard byte cap: an unbounded
/// sender cannot balloon daemon memory or wedge the connection — the
/// caller sheds `Oversized` as a typed error and closes.
fn read_bounded_line(reader: &mut BufReader<Conn>) -> std::io::Result<ReadLine> {
    let mut buf = Vec::new();
    let n = reader
        .by_ref()
        .take(MAX_LINE as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(ReadLine::Eof);
    }
    if buf.len() > MAX_LINE {
        return Ok(ReadLine::Oversized);
    }
    Ok(ReadLine::Line(String::from_utf8_lossy(&buf).into_owned()))
}

fn serve_conn(shared: &Arc<Shared>, conn: Conn) {
    let conn_index = shared.conn_counter.fetch_add(1, Ordering::SeqCst);
    let Ok(write_half) = conn.try_clone() else {
        return;
    };
    let reply = ReplyHandle(Arc::new(Mutex::new(write_half)));
    let mut reader = BufReader::new(conn);
    let mut request_no: u64 = 0;
    loop {
        let line = match read_bounded_line(&mut reader) {
            Ok(ReadLine::Eof) | Err(_) => break,
            Ok(ReadLine::Oversized) => {
                reply.send_line(
                    &ProtoError {
                        kind: "oversized",
                        detail: format!("request line exceeds {MAX_LINE} bytes"),
                    }
                    .to_line(),
                );
                break; // the rest of the oversized line is unframed noise
            }
            Ok(ReadLine::Line(line)) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let req = match parse_request(line.trim_end_matches(['\r', '\n'])) {
            Ok(req) => req,
            Err(e) => {
                reply.send_line(&e.to_line());
                continue;
            }
        };
        let this_no = request_no;
        request_no += 1;
        match req {
            Request::Submit(spec) => {
                // Chaos: drop the connection mid-stream — *after* the
                // daemon side committed, *instead of* answering. The
                // client's recovery is reconnect + resubmit; idempotent
                // ids make that safe.
                let drop_conn = shared
                    .cfg
                    .chaos
                    .as_ref()
                    .is_some_and(|p| p.conn_drop(conn_index, this_no));
                let response = handle_submit(shared, &spec, &reply);
                if drop_conn {
                    let mut st = shared.state.lock().expect("daemon state poisoned");
                    st.counters.conn_drops += 1;
                    drop(st);
                    eprintln!(
                        "[daemon chaos: dropping connection {conn_index} at request {this_no}]"
                    );
                    if let Ok(c) = reply.0.lock() {
                        c.shutdown();
                    }
                    return;
                }
                reply.send_line(&response);
            }
            Request::Cancel(id) => {
                let response = handle_cancel(shared, &id);
                reply.send_line(&response);
            }
            Request::Status => {
                let st = shared.state.lock().expect("daemon state poisoned");
                let line = Json::Obj(vec![
                    ("type".into(), Json::Str("status".into())),
                    ("queued".into(), Json::uint(st.queued as u64)),
                    ("running".into(), Json::uint(st.running.len() as u64)),
                    ("draining".into(), Json::Bool(st.draining.is_some())),
                    ("counters".into(), st.counters.to_json()),
                ])
                .to_string();
                drop(st);
                reply.send_line(&line);
            }
            Request::Metrics => {
                reply.send_line(&metrics_line(shared));
            }
            Request::Drain { fast } => {
                handle_drain(shared, fast, &reply);
                return; // the daemon is gone; nothing more to serve
            }
        }
    }
}

/// Builds the `{"op":"metrics"}` response: refreshes the state-derived
/// gauges (queue depth, worker health, the EWMA-based retry-after hint),
/// then snapshots the registry as both its stable JSON dump
/// (`"registry"`) and Prometheus-style text (`"exposition"`).
fn metrics_line(shared: &Arc<Shared>) -> String {
    let reg = &shared.registry;
    {
        let st = shared.state.lock().expect("daemon state poisoned");
        reg.set_help("beard_queue_depth", "Jobs queued and not yet running");
        reg.gauge("beard_queue_depth", &[]).set(st.queued as f64);
        reg.set_help("beard_running_jobs", "Jobs currently on a worker");
        reg.gauge("beard_running_jobs", &[])
            .set(st.running.len() as f64);
        reg.set_help("beard_workers_alive", "Live worker threads");
        reg.gauge("beard_workers_alive", &[])
            .set(st.workers_alive as f64);
        reg.set_help("beard_mean_job_ms", "EWMA of observed job wall time (ms)");
        reg.gauge("beard_mean_job_ms", &[]).set(st.mean_job_ms);
        reg.set_help(
            "beard_retry_after_hint_ms",
            "Retry-after hint an overloaded submission would receive right now (ms)",
        );
        reg.gauge("beard_retry_after_hint_ms", &[])
            .set(retry_after_ms(&st, shared.cfg.workers) as f64);
        reg.set_help("beard_draining", "1 once a drain has been requested");
        reg.gauge("beard_draining", &[])
            .set(if st.draining.is_some() { 1.0 } else { 0.0 });
        reg.set_help(
            "beard_sim_threads",
            "Channel-shard threads each simulation ticks with (BEAR_SIM_THREADS)",
        );
        reg.gauge("beard_sim_threads", &[])
            .set(bear_dram::shard::sim_threads_from_env().unwrap_or(1) as f64);
    }
    let registry = Json::parse(&reg.to_json()).expect("registry dump is valid JSON");
    Json::Obj(vec![
        ("type".into(), Json::Str("metrics".into())),
        ("registry".into(), registry),
        ("exposition".into(), Json::Str(reg.exposition())),
    ])
    .to_string()
}

fn handle_submit(shared: &Arc<Shared>, spec: &JobSpec, reply: &ReplyHandle) -> String {
    let accepted_line = |id: &str| {
        Json::Obj(vec![
            ("type".into(), Json::Str("accepted".into())),
            ("id".into(), Json::Str(id.into())),
        ])
        .to_string()
    };
    {
        let mut st = shared.state.lock().expect("daemon state poisoned");
        if st.draining.is_some() {
            return ProtoError {
                kind: "draining",
                detail: "daemon is draining; submissions are closed".into(),
            }
            .to_line();
        }
        if let Some(rec) = st.jobs.get_mut(&spec.id) {
            if rec.spec == *spec {
                // Idempotent resubmission (a dropped ack, a resumed
                // job): re-attach the notification channel and restate
                // any already-settled outcome.
                rec.reply = Some(reply.clone());
                let settled = settle_line(&rec.spec, &rec.status);
                drop(st);
                if let Some(line) = settled {
                    reply.send_line(&accepted_line(&spec.id));
                    return line;
                }
                return accepted_line(&spec.id);
            }
            return ProtoError {
                kind: "id-conflict",
                detail: format!("job {:?} already exists with a different spec", spec.id),
            }
            .to_line();
        }
        if st.queued >= shared.cfg.queue_capacity {
            st.counters.shed += 1;
            record_shed(&shared.registry, &spec.client);
            return overloaded_line(spec, &st, shared.cfg.workers, "queue full");
        }
        let client_depth = st.queues.get(&spec.client).map_or(0, VecDeque::len);
        if client_depth >= shared.cfg.client_quota {
            st.counters.shed += 1;
            record_shed(&shared.registry, &spec.client);
            return overloaded_line(spec, &st, shared.cfg.workers, "client quota exhausted");
        }
        st.jobs.insert(
            spec.id.clone(),
            JobRecord {
                spec: spec.clone(),
                status: JobStatus::Queued,
                cancel_requested: false,
                kill_fired: false,
                reply: Some(reply.clone()),
            },
        );
        enqueue(&mut st, &spec.client, spec.id.clone());
        st.counters.accepted += 1;
        shared
            .registry
            .set_help("beard_admissions_total", "Jobs accepted, per client");
        shared
            .registry
            .counter("beard_admissions_total", &[("client", &spec.client)])
            .inc();
    }
    // Journal OUTSIDE the state lock (it fsyncs), but BEFORE the ack:
    // `accepted` is the durability receipt.
    if let Err(e) = shared
        .journal
        .store_raw(&spec.stem(), &format!("{}\n", spec.canonical_line()))
    {
        let mut st = shared.state.lock().expect("daemon state poisoned");
        if unqueue(&mut st, &spec.id) {
            st.jobs.remove(&spec.id);
            st.counters.accepted -= 1;
        }
        drop(st);
        return ProtoError {
            kind: "io",
            detail: format!("could not journal job: {e}"),
        }
        .to_line();
    }
    maybe_daemon_kill(shared, spec);
    shared.work.notify_all();
    accepted_line(&spec.id)
}

/// Bumps the per-client shed counter (both shed paths: queue full and
/// client quota).
fn record_shed(reg: &Registry, client: &str) {
    reg.set_help(
        "beard_sheds_total",
        "Submissions shed with `overloaded`, per client",
    );
    reg.counter("beard_sheds_total", &[("client", client)])
        .inc();
}

fn overloaded_line(spec: &JobSpec, st: &State, workers: usize, why: &str) -> String {
    Json::Obj(vec![
        ("type".into(), Json::Str("overloaded".into())),
        ("id".into(), Json::Str(spec.id.clone())),
        (
            "retry_after_ms".into(),
            Json::uint(retry_after_ms(st, workers)),
        ),
        ("detail".into(), Json::Str(why.into())),
    ])
    .to_string()
}

/// The chaos daemon-kill: abort the whole process in the worst window —
/// the job is journaled, the client is still waiting for the ack. Gated
/// by a per-job marker file so a restarted daemon does not re-fire, and
/// by `allow_kill` so in-process daemons never abort their host.
fn maybe_daemon_kill(shared: &Arc<Shared>, spec: &JobSpec) {
    let Some(plan) = &shared.cfg.chaos else {
        return;
    };
    if !shared.cfg.allow_kill || plan.daemon_fault(spec.key()) != Some(DaemonChaosKind::DaemonKill)
    {
        return;
    }
    let dir = shared.cfg.out.join("daemon").join("chaos-kills");
    let marker = dir.join(format!("kill-{:016x}.marker", spec.key()));
    if marker.exists() {
        return;
    }
    std::fs::create_dir_all(&dir).ok();
    if let Ok(mut f) = std::fs::File::create(&marker) {
        f.write_all(b"daemon-kill\n").ok();
        f.sync_all().ok();
    }
    eprintln!(
        "[daemon chaos: kill -9 between journal and ack (job {})]",
        spec.id
    );
    std::process::abort();
}

fn handle_cancel(shared: &Arc<Shared>, id: &str) -> String {
    let cancelled_line = |id: &str, state: &str| {
        Json::Obj(vec![
            ("type".into(), Json::Str(state.into())),
            ("id".into(), Json::Str(id.into())),
        ])
        .to_string()
    };
    let mut st = shared.state.lock().expect("daemon state poisoned");
    let Some(rec) = st.jobs.get_mut(id) else {
        return ProtoError {
            kind: "unknown-job",
            detail: format!("no job {id:?}"),
        }
        .to_line();
    };
    match rec.status {
        JobStatus::Queued => {
            let stem = rec.spec.stem();
            rec.status = JobStatus::Cancelled;
            st.counters.cancelled += 1;
            unqueue(&mut st, id);
            drop(st);
            if let Err(e) = shared.journal.set_flag(&stem, "cancelled") {
                eprintln!("[daemon: failed to persist cancellation of {id}: {e}]");
            }
            shared.settled.notify_all();
            cancelled_line(id, "cancelled")
        }
        JobStatus::Running => {
            // Cooperative: the supervised attempt finishes, its result
            // is discarded, and the job settles as cancelled then.
            rec.cancel_requested = true;
            cancelled_line(id, "cancelling")
        }
        JobStatus::Cancelled => cancelled_line(id, "cancelled"),
        JobStatus::Completed(_) | JobStatus::Failed { .. } => ProtoError {
            kind: "already-settled",
            detail: format!("job {id:?} already settled"),
        }
        .to_line(),
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>, idx: usize) {
    loop {
        let id = {
            let mut st = shared.state.lock().expect("daemon state poisoned");
            loop {
                if st.draining == Some(DrainMode::Fast) {
                    return worker_exit(shared, st, idx);
                }
                if let Some(id) = pop_job(&mut st) {
                    st.running.insert(idx, id.clone());
                    if let Some(rec) = st.jobs.get_mut(&id) {
                        rec.status = JobStatus::Running;
                    }
                    break id;
                }
                if st.draining.is_some() {
                    return worker_exit(shared, st, idx); // full drain, queue dry
                }
                let (guard, _) = shared
                    .work
                    .wait_timeout(st, Duration::from_millis(100))
                    .expect("daemon state poisoned");
                st = guard;
            }
        };
        run_job(shared, idx, &id);
    }
}

fn worker_exit(shared: &Arc<Shared>, mut st: std::sync::MutexGuard<'_, State>, _idx: usize) {
    st.workers_alive -= 1;
    drop(st);
    shared.settled.notify_all();
}

fn run_job(shared: &Arc<Shared>, idx: usize, id: &str) {
    let started = Instant::now();
    let (spec, reply) = {
        let st = shared.state.lock().expect("daemon state poisoned");
        let rec = &st.jobs[id];
        (rec.spec.clone(), rec.reply.clone())
    };

    // Chaos worker-kill: die *outside* the supervised attempt, so the
    // supervisor's panic isolation cannot catch it — only the pool
    // monitor's healing can. Fires once per job per incarnation.
    if let Some(plan) = &shared.cfg.chaos {
        if plan.daemon_fault(spec.key()) == Some(DaemonChaosKind::WorkerKill) {
            let mut st = shared.state.lock().expect("daemon state poisoned");
            let fire = st.jobs.get_mut(id).is_some_and(|rec| {
                let fire = !rec.kill_fired;
                rec.kill_fired = true;
                fire
            });
            drop(st);
            if fire {
                panic!("chaos: injected worker kill (job {id})");
            }
        }
    }

    let cfg = spec.system_config();
    let workload = spec.workload();
    let key = checkpoint::cell_hash(&cfg, &workload);
    let scfg = SupervisorConfig {
        deadline_ms: spec.deadline_ms.or(shared.cfg.supervisor.deadline_ms),
        ..shared.cfg.supervisor
    };
    let config_label = cfg.design.label().to_string();
    let repro = format!(
        "beard job {} ({}; resubmit the same canonical line)",
        spec.id,
        spec.stem()
    );

    // Live telemetry: a per-job sink whose samples a forwarder thread
    // streams down the submitting connection as each window closes. Each
    // line carries the job's trace id, and the attributed byte deltas
    // accumulate into per-job gauges — the "decomposition so far" a
    // metrics scrape sees while the job is still running.
    let trace = spec.trace_id();
    let (live, forwarder) = if spec.telemetry && reply.is_some() {
        let (sink, rx) = live_channel();
        let fwd_reply = reply.clone().expect("checked above");
        let fwd_id = spec.id.clone();
        let fwd_trace = trace.clone();
        let fwd_reg = shared.registry.clone();
        let handle = std::thread::spawn(move || {
            let mut attr = [0u64; 8];
            for sample in rx {
                for (total, delta) in attr.iter_mut().zip(sample.attributed_bytes_by_class) {
                    *total += delta;
                }
                record_job_decomposition(&fwd_reg, &fwd_id, &attr, None);
                if let Ok(sample_json) = Json::parse(&sample.to_json_line()) {
                    let line = Json::Obj(vec![
                        ("type".into(), Json::Str("telemetry".into())),
                        ("id".into(), Json::Str(fwd_id.clone())),
                        ("trace".into(), Json::Str(fwd_trace.clone())),
                        ("sample".into(), sample_json),
                    ])
                    .to_string();
                    fwd_reply.send_line(&line);
                }
            }
        });
        (Some(sink), Some(handle))
    } else {
        (None, None)
    };

    let attempt = {
        let results = shared.results.clone();
        let cfg = cfg.clone();
        let workload = workload.clone();
        let live = live.clone();
        let spec = spec.clone();
        move |_n: u32| {
            if let Some(cached) = results.load(&cfg, &workload) {
                return Ok(cached);
            }
            let mut sys = System::try_build(&cfg, &workload)?;
            if spec.telemetry {
                sys.set_telemetry(bear_telemetry::TelemetryConfig::sampling(
                    spec.sample_window,
                ));
                if let Some(sink) = &live {
                    sys.set_telemetry_live(sink.clone());
                }
            }
            let mut stats = sys.run_monitored(cfg.warmup_cycles, cfg.measure_cycles)?;
            stats.workload = workload.name.clone();
            if let Err(e) = results.store(&cfg, &workload, &stats) {
                eprintln!(
                    "[daemon: failed to cache result for {}: {e}]",
                    workload.name
                );
            }
            Ok(stats)
        }
    };
    let (outcome, row) =
        supervisor::supervise_with(&scfg, key, &config_label, &spec.workload, &repro, attempt);
    drop(live);
    if let Some(h) = forwarder {
        h.join().ok();
    }

    if let Some(mut row) = row {
        row.experiment = "daemon".into();
        row.trace = Some(trace.clone());
        row.checkpoint = shared
            .results
            .committed_path(&cfg, &workload)
            .map(|p| p.display().to_string());
        let mut st = shared.state.lock().expect("daemon state poisoned");
        st.rows.push(row.clone());
        drop(st);
        if let Err(e) = supervisor::merge_rows_into(&shared.cfg.out, vec![row]) {
            eprintln!("[daemon: failed to persist failures.json: {e}]");
        }
    }

    // Observability: job wall time and, for completed jobs, the final
    // attributed decomposition. Idempotent by construction — a cached
    // replay or resumed job overwrites the same series.
    shared
        .registry
        .set_help("beard_job_wall_ms", "Job wall time (ms)");
    shared
        .registry
        .histogram(
            "beard_job_wall_ms",
            &[],
            &[10.0, 100.0, 1_000.0, 10_000.0, 60_000.0],
        )
        .observe(started.elapsed().as_secs_f64() * 1_000.0);
    if let Ok(stats) = &outcome {
        record_job_decomposition(
            &shared.registry,
            &spec.id,
            &stats.bloat.bytes,
            Some(stats.bloat.factor()),
        );
    }

    // Settle.
    let mut st = shared.state.lock().expect("daemon state poisoned");
    st.running.remove(&idx);
    let cancel = st.jobs.get(id).is_some_and(|rec| rec.cancel_requested);
    let new_status = if cancel {
        JobStatus::Cancelled
    } else {
        match outcome {
            Ok(stats) => JobStatus::Completed(Box::new(stats)),
            Err(e) => JobStatus::Failed {
                kind: e.kind().to_string(),
                error: e.to_string(),
                attempts: scfg.max_retries as usize + 1,
            },
        }
    };
    match new_status {
        JobStatus::Cancelled => st.counters.cancelled += 1,
        JobStatus::Completed(_) => st.counters.completed += 1,
        JobStatus::Failed { .. } => st.counters.failed += 1,
        JobStatus::Queued | JobStatus::Running => unreachable!("settled jobs settle"),
    }
    let Some(rec) = st.jobs.get_mut(id) else {
        return;
    };
    let stem = rec.spec.stem();
    rec.status = new_status;
    let line = settle_line(&rec.spec, &rec.status);
    let reply = rec.reply.clone();
    // EWMA of job wall time (the settle path itself is instantaneous;
    // what matters is a stable, positive hint base).
    let elapsed = started.elapsed().as_millis() as f64;
    st.mean_job_ms = if st.mean_job_ms > 0.0 {
        0.75 * st.mean_job_ms + 0.25 * elapsed.max(1.0)
    } else {
        elapsed.max(1.0)
    };
    drop(st);
    if cancel {
        if let Err(e) = shared.journal.set_flag(&stem, "cancelled") {
            eprintln!("[daemon: failed to persist cancellation of {id}: {e}]");
        }
    }
    if let (Some(reply), Some(line)) = (reply, line) {
        reply.send_line(&line);
    }
    shared.settled.notify_all();
}

/// Sets the per-job attributed-byte gauges (and, once known, the final
/// bloat factor). `set`, not `add`: live telemetry windows, retries, and
/// the final stats all converge on the same series without double
/// counting.
fn record_job_decomposition(reg: &Registry, job: &str, bytes: &[u64; 8], factor: Option<f64>) {
    reg.set_help(
        "beard_job_cache_bytes",
        "DRAM-cache bytes attributed per bloat category, per job (so far)",
    );
    for (key, &b) in bear_telemetry::CACHE_BYTE_KEYS.iter().zip(bytes) {
        reg.gauge("beard_job_cache_bytes", &[("job", job), ("category", key)])
            .set(b as f64);
    }
    if let Some(f) = factor {
        reg.set_help("beard_job_bloat_factor", "Final bloat factor, per job");
        reg.gauge("beard_job_bloat_factor", &[("job", job)]).set(f);
    }
}

/// The notification line a settled job sends its client; `None` for
/// jobs still queued or running.
fn settle_line(spec: &JobSpec, status: &JobStatus) -> Option<String> {
    let base = |kind: &str| {
        vec![
            ("type".to_string(), Json::Str(kind.into())),
            ("id".to_string(), Json::Str(spec.id.clone())),
        ]
    };
    match status {
        JobStatus::Queued | JobStatus::Running => None,
        JobStatus::Completed(stats) => {
            let mut fields = base("completed");
            fields.push(("config".into(), Json::Str(spec.design.label().into())));
            fields.push(("workload".into(), Json::Str(spec.workload.clone())));
            fields.push(("stats".into(), stats_to_json(stats)));
            Some(Json::Obj(fields).to_string())
        }
        JobStatus::Failed {
            kind,
            error,
            attempts,
        } => {
            let mut fields = base("failed");
            fields.push(("kind".into(), Json::Str(kind.clone())));
            fields.push(("error".into(), Json::Str(error.clone())));
            fields.push(("attempts".into(), Json::uint(*attempts as u64)));
            Some(Json::Obj(fields).to_string())
        }
        JobStatus::Cancelled => Some(Json::Obj(base("cancelled")).to_string()),
    }
}

/// Detects dead worker threads and heals the pool: the dead worker's
/// in-flight job is requeued at the front of its client's queue and a
/// replacement worker takes the same slot. A worker that *returned*
/// (drain) is left retired.
fn monitor_loop(shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(20));
        let mut handles = shared
            .worker_handles
            .lock()
            .expect("worker handles poisoned");
        for idx in 0..handles.len() {
            let dead = handles[idx].as_ref().is_some_and(|h| h.is_finished());
            if !dead {
                continue;
            }
            let h = handles[idx].take().expect("checked above");
            if h.join().is_ok() {
                continue; // clean drain exit, not a death
            }
            {
                let mut st = shared.state.lock().expect("daemon state poisoned");
                if let Some(id) = st.running.remove(&idx) {
                    requeue_front(&mut st, id.clone());
                    shared.registry.set_help(
                        "beard_requeues_total",
                        "Jobs requeued after their worker died mid-job",
                    );
                    shared.registry.counter("beard_requeues_total", &[]).inc();
                    eprintln!("[daemon: worker {idx} died mid-job; requeued {id} and respawned]");
                } else {
                    eprintln!("[daemon: worker {idx} died idle; respawned]");
                }
                st.counters.workers_respawned += 1;
                shared.registry.set_help(
                    "beard_workers_respawned_total",
                    "Replacement workers spawned",
                );
                shared
                    .registry
                    .counter("beard_workers_respawned_total", &[])
                    .inc();
            }
            let sh = shared.clone();
            handles[idx] = Some(std::thread::spawn(move || worker_loop(&sh, idx)));
            shared.work.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Drain and the final report
// ---------------------------------------------------------------------------

fn handle_drain(shared: &Arc<Shared>, fast: bool, reply: &ReplyHandle) {
    {
        let mut st = shared.state.lock().expect("daemon state poisoned");
        if st.draining.is_none() {
            st.draining = Some(if fast {
                DrainMode::Fast
            } else {
                DrainMode::Full
            });
            eprintln!(
                "[daemon: draining ({}); intake closed]",
                if fast { "fast" } else { "full" }
            );
        }
    }
    shared.work.notify_all();
    // Unblock the accept loop so it observes the drain and closes the
    // listener (ordering guarantee: listener closed before pool stops).
    if let Ok(c) = dial(&shared.addr) {
        c.shutdown();
    }
    let summary = {
        let mut st = shared.state.lock().expect("daemon state poisoned");
        while !(st.listener_closed && st.workers_alive == 0) {
            let (guard, _) = shared
                .settled
                .wait_timeout(st, Duration::from_millis(100))
                .expect("daemon state poisoned");
            st = guard;
        }
        if st.finalized {
            // A concurrent drain already finalized; reuse its summary.
            None
        } else {
            st.finalized = true;
            let rows = std::mem::take(&mut st.rows);
            let report = write_report(&shared.cfg.out, &st.jobs);
            let pending = st
                .jobs
                .values()
                .filter(|r| matches!(r.status, JobStatus::Queued | JobStatus::Running))
                .count();
            let counters = st.counters;
            drop(st);
            if let Err(e) = supervisor::merge_rows_into(&shared.cfg.out, rows) {
                eprintln!("[daemon: failed to flush failures.json: {e}]");
            }
            let report = match report {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("[daemon: failed to write daemon_report.json: {e}]");
                    shared.cfg.out.join("daemon_report.json")
                }
            };
            Some(DrainSummary {
                counters,
                pending,
                report,
            })
        }
    };
    let summary = match summary {
        Some(s) => {
            let mut fin = shared.finished.lock().expect("finished poisoned");
            *fin = Some(s.clone());
            shared.done.notify_all();
            s
        }
        None => {
            let fin = shared.finished.lock().expect("finished poisoned");
            fin.clone().expect("finalized implies a summary")
        }
    };
    let line = Json::Obj(vec![
        ("type".into(), Json::Str("drained".into())),
        ("pending".into(), Json::uint(summary.pending as u64)),
        (
            "report".into(),
            Json::Str(summary.report.display().to_string()),
        ),
        ("counters".into(), summary.counters.to_json()),
    ])
    .to_string();
    reply.send_line(&line);
}

/// Writes the deterministic final report `OUT/daemon_report.json`
/// (atomically). Rows are keyed and ordered by job id; counters and
/// timings are deliberately absent, so a fault-free run and a
/// chaos-riddled run of the same jobs produce **byte-identical** files
/// — the recovery proof in `tests/daemon.rs` diffs them directly.
fn write_report(out: &Path, jobs: &BTreeMap<String, JobRecord>) -> std::io::Result<PathBuf> {
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    let mut cancelled = Vec::new();
    let mut pending = Vec::new();
    for (id, rec) in jobs {
        match &rec.status {
            JobStatus::Completed(stats) => rows.push(Json::Obj(vec![
                ("id".into(), Json::Str(id.clone())),
                ("config".into(), Json::Str(rec.spec.design.label().into())),
                ("workload".into(), Json::Str(rec.spec.workload.clone())),
                ("stats".into(), stats_to_json(stats)),
            ])),
            JobStatus::Failed {
                kind,
                error,
                attempts,
            } => failures.push(Json::Obj(vec![
                ("id".into(), Json::Str(id.clone())),
                ("config".into(), Json::Str(rec.spec.design.label().into())),
                ("workload".into(), Json::Str(rec.spec.workload.clone())),
                ("kind".into(), Json::Str(kind.clone())),
                ("error".into(), Json::Str(error.clone())),
                ("attempts".into(), Json::uint(*attempts as u64)),
            ])),
            JobStatus::Cancelled => cancelled.push(Json::Str(id.clone())),
            JobStatus::Queued | JobStatus::Running => pending.push(Json::Str(id.clone())),
        }
    }
    let doc = Json::Obj(vec![
        ("service".into(), Json::Str("beard".into())),
        ("rows".into(), Json::Arr(rows)),
        ("failures".into(), Json::Arr(failures)),
        ("cancelled".into(), Json::Arr(cancelled)),
        ("pending".into(), Json::Arr(pending)),
    ]);
    std::fs::create_dir_all(out)?;
    let path = out.join("daemon_report.json");
    let tmp = out.join("daemon_report.json.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(doc.to_string_pretty().as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A protocol client for `beard` — used by the smoke mode, the chaos
/// proof, and anything scripting the daemon.
#[derive(Debug)]
pub struct Client {
    writer: Conn,
    reader: BufReader<Conn>,
}

impl Client {
    /// Dials `addr` (`"unix:PATH"` or a TCP address).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let conn = dial(addr)?;
        let writer = conn.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(conn),
        })
    }

    /// Bounds every subsequent [`Client::recv`] wait.
    ///
    /// # Errors
    ///
    /// Propagates the socket option error.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Propagates write errors (daemon gone).
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Writes raw bytes with no framing — the hardening tests use this
    /// to send truncated and malformed requests.
    ///
    /// # Errors
    ///
    /// Propagates write errors (daemon gone).
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Receives the next response line, `None` on clean EOF.
    ///
    /// # Errors
    ///
    /// Propagates read errors (timeout, connection reset).
    pub fn recv(&mut self) -> std::io::Result<Option<Json>> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        Json::parse(line.trim_end())
            .map(Some)
            .map_err(|e| std::io::Error::other(format!("unparseable response: {e}: {line:?}")))
    }

    /// Sends a request and returns the next response line.
    ///
    /// # Errors
    ///
    /// I/O errors, EOF before a response, or an unparseable response.
    pub fn request(&mut self, line: &str) -> std::io::Result<Json> {
        self.send(line)?;
        self.recv()?
            .ok_or_else(|| std::io::Error::other("connection closed before a response"))
    }
}

// ---------------------------------------------------------------------------
// The pinned daemon chaos smoke grid
// ---------------------------------------------------------------------------

/// The seed the daemon chaos proof runs under. Pinned (see
/// `smoke_seed_covers_every_daemon_fault`) to draw at least one
/// worker-kill and one daemon-kill over [`smoke_jobs`], plus connection
/// drops on the early connections — every daemon fault class observably
/// fires.
pub const DAEMON_SMOKE_SEED: u64 = 21;

/// The canonical job set for daemon smoke and chaos runs: two clients,
/// two designs, four workloads, tiny cycle counts (milliseconds per job
/// in release builds).
pub fn smoke_jobs() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for (j, design) in [DesignKind::Alloy, DesignKind::LohHill].iter().enumerate() {
        for (i, workload) in ["rate:mcf", "rate:lbm", "rate:libquantum", "rate:milc"]
            .iter()
            .enumerate()
        {
            jobs.push(JobSpec {
                id: format!("smoke-{j}{i}"),
                client: if i % 2 == 0 { "alice" } else { "bob" }.into(),
                design: *design,
                bear: "full".into(),
                workload: (*workload).into(),
                warmup: 2_000,
                measure: 3_000,
                scale_shift: 12,
                deadline_ms: None,
                telemetry: false,
                sample_window: 1_000,
            });
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use bear_sim::check::{check, Source};
    use bear_sim::prop_assert;

    fn empty_state() -> State {
        State {
            jobs: BTreeMap::new(),
            order: VecDeque::new(),
            queues: BTreeMap::new(),
            queued: 0,
            running: BTreeMap::new(),
            draining: None,
            listener_closed: false,
            workers_alive: 0,
            finalized: false,
            counters: Counters::default(),
            rows: Vec::new(),
            mean_job_ms: 0.0,
        }
    }

    fn spec(id: &str, client: &str) -> JobSpec {
        JobSpec {
            id: id.into(),
            client: client.into(),
            design: DesignKind::Alloy,
            bear: "full".into(),
            workload: "rate:mcf".into(),
            warmup: 2_000,
            measure: 3_000,
            scale_shift: 12,
            deadline_ms: None,
            telemetry: false,
            sample_window: 1_000,
        }
    }

    fn add_queued(st: &mut State, id: &str, client: &str) {
        st.jobs.insert(
            id.to_string(),
            JobRecord {
                spec: spec(id, client),
                status: JobStatus::Queued,
                cancel_requested: false,
                kill_fired: false,
                reply: None,
            },
        );
        enqueue(st, client, id.to_string());
    }

    #[test]
    fn canonical_lines_round_trip_exactly() {
        for job in smoke_jobs() {
            let line = job.canonical_line();
            let parsed = parse_request(&line).expect("canonical line must parse");
            assert_eq!(parsed, Request::Submit(Box::new(job.clone())));
            // Identity is stable across the round trip.
            let Request::Submit(back) = parsed else {
                unreachable!()
            };
            assert_eq!(back.key(), job.key());
            assert_eq!(back.canonical_line(), line);
        }
    }

    #[test]
    fn parse_rejections_are_typed() {
        let cases: &[(&str, &str)] = &[
            ("", "protocol"),
            ("not json at all", "protocol"),
            ("[1,2,3]", "protocol"),
            ("{\"op\":\"fnord\"}", "protocol"),
            ("{\"op\":\"submit\",\"id\":\"x\"}", "protocol"),
            (
                "{\"op\":\"submit\",\"id\":\"\",\"client\":\"c\",\"design\":\"Alloy\",\
                 \"bear\":\"full\",\"workload\":\"rate:mcf\",\"warmup\":1,\"measure\":1,\"scale\":12}",
                "bad-job",
            ),
            (
                "{\"op\":\"submit\",\"id\":\"x\",\"client\":\"c\",\"design\":\"Warp\",\
                 \"bear\":\"full\",\"workload\":\"rate:mcf\",\"warmup\":1,\"measure\":1,\"scale\":12}",
                "bad-job",
            ),
            (
                "{\"op\":\"submit\",\"id\":\"x\",\"client\":\"c\",\"design\":\"Alloy\",\
                 \"bear\":\"full\",\"workload\":\"rate:nope\",\"warmup\":1,\"measure\":1,\"scale\":12}",
                "bad-job",
            ),
            (
                "{\"op\":\"submit\",\"id\":\"x\",\"client\":\"c\",\"design\":\"Alloy\",\
                 \"bear\":\"full\",\"workload\":\"rate:mcf\",\"warmup\":1,\"measure\":0,\"scale\":12}",
                "bad-job",
            ),
            ("{\"op\":\"drain\",\"mode\":\"sideways\"}", "protocol"),
        ];
        for (line, want_kind) in cases {
            let err = parse_request(line).expect_err(line);
            assert_eq!(&err.kind, want_kind, "{line} -> {err:?}");
            assert!(!err.detail.is_empty());
            // The error renders as a parseable protocol line itself.
            let rendered = Json::parse(&err.to_line()).expect("error line must be JSON");
            assert_eq!(rendered.get("type").and_then(Json::as_str), Some("error"));
        }
        let oversized = format!("{{\"op\":\"status\",\"pad\":\"{}\"}}", "x".repeat(MAX_LINE));
        assert_eq!(parse_request(&oversized).unwrap_err().kind, "oversized");
    }

    /// Byte-level hardening: mutate valid canonical submit lines at
    /// random positions. `parse_request` must never panic — every
    /// mutation yields either a (different but valid) request or a typed
    /// error with a stable kind.
    #[test]
    fn parse_survives_byte_mutations() {
        let seeds: Vec<String> = smoke_jobs().iter().map(JobSpec::canonical_line).collect();
        check(512, |src: &mut Source| {
            let mut bytes = seeds[src.usize_in(0..seeds.len())].clone().into_bytes();
            for _ in 0..src.usize_in(1..8) {
                let pos = src.usize_in(0..bytes.len());
                match src.u8_in(0..3) {
                    0 => bytes[pos] = (src.any_u64() & 0xFF) as u8,
                    1 => {
                        bytes.remove(pos);
                        if bytes.is_empty() {
                            bytes.push(b'{');
                        }
                    }
                    _ => bytes.insert(pos, (src.any_u64() & 0xFF) as u8),
                }
            }
            let line = String::from_utf8_lossy(&bytes).into_owned();
            match parse_request(&line) {
                Ok(_) => {}
                Err(e) => {
                    prop_assert!(
                        ["protocol", "oversized", "bad-job"].contains(&e.kind),
                        "unexpected error kind {:?}",
                        e.kind
                    );
                    prop_assert!(!e.detail.is_empty());
                }
            }
            Ok(())
        });
    }

    #[test]
    fn fair_share_alternates_between_clients() {
        let mut st = empty_state();
        add_queued(&mut st, "a1", "alice");
        add_queued(&mut st, "a2", "alice");
        add_queued(&mut st, "a3", "alice");
        add_queued(&mut st, "b1", "bob");
        let mut order = Vec::new();
        while let Some(id) = pop_job(&mut st) {
            order.push(id);
        }
        // One job per client per turn: bob's single job interleaves into
        // alice's backlog instead of waiting behind it.
        assert_eq!(order, ["a1", "b1", "a2", "a3"]);
        assert_eq!(st.queued, 0);
        assert!(st.queues.is_empty());
    }

    #[test]
    fn requeue_front_preserves_next_in_line() {
        let mut st = empty_state();
        add_queued(&mut st, "a1", "alice");
        add_queued(&mut st, "a2", "alice");
        let first = pop_job(&mut st).unwrap();
        assert_eq!(first, "a1");
        st.jobs.get_mut("a1").unwrap().status = JobStatus::Running;
        // Worker dies; the healed job goes back to the *front*.
        requeue_front(&mut st, "a1".to_string());
        assert!(matches!(st.jobs["a1"].status, JobStatus::Queued));
        assert_eq!(pop_job(&mut st).as_deref(), Some("a1"));
        assert_eq!(pop_job(&mut st).as_deref(), Some("a2"));
    }

    #[test]
    fn unqueue_removes_only_queued_jobs() {
        let mut st = empty_state();
        add_queued(&mut st, "a1", "alice");
        add_queued(&mut st, "a2", "alice");
        assert!(unqueue(&mut st, "a1"));
        assert!(!unqueue(&mut st, "a1"));
        assert_eq!(st.queued, 1);
        assert_eq!(pop_job(&mut st).as_deref(), Some("a2"));
    }

    #[test]
    fn retry_after_hint_scales_with_backlog_and_clamps() {
        let mut st = empty_state();
        st.mean_job_ms = 100.0;
        st.queued = 4;
        assert_eq!(retry_after_ms(&st, 2), 200);
        st.queued = 10_000;
        assert_eq!(retry_after_ms(&st, 2), 60_000); // clamped high
        st.queued = 0;
        assert_eq!(retry_after_ms(&st, 2), 50); // clamped low
                                                // No history yet: a conservative 1s-per-job guess, not zero.
        st.mean_job_ms = 0.0;
        st.queued = 2;
        assert_eq!(retry_after_ms(&st, 2), 1_000);
    }

    /// The pinned daemon chaos seed must make every daemon fault class
    /// observably fire over the smoke grid: at least one worker kill, at
    /// least one daemon kill (but few enough that the chaos proof's
    /// restart budget holds), healthy jobs too, and connection drops that
    /// hit some but not all of the early connections.
    #[test]
    fn smoke_seed_covers_every_daemon_fault() {
        let plan = ChaosPlan::new(DAEMON_SMOKE_SEED);
        let jobs = smoke_jobs();
        let mut worker_kills = 0;
        let mut daemon_kills = 0;
        let mut clean = 0;
        for job in &jobs {
            match plan.daemon_fault(job.key()) {
                Some(DaemonChaosKind::WorkerKill) => worker_kills += 1,
                Some(DaemonChaosKind::DaemonKill) => daemon_kills += 1,
                Some(DaemonChaosKind::ConnDrop) | None => clean += 1,
            }
        }
        assert!(worker_kills >= 1, "no worker kill drawn: reseed");
        assert!(
            (1..=3).contains(&daemon_kills),
            "daemon kills {daemon_kills} out of budget"
        );
        assert!(clean >= 1, "every job drew a fault: reseed");
        let drops = (0..8u64)
            .flat_map(|c| (0..10u64).map(move |r| (c, r)))
            .filter(|&(c, r)| plan.conn_drop(c, r))
            .count();
        assert!(drops >= 1, "no connection ever drops: reseed");
        assert!(drops < 80, "every connection drops: reseed");
        // The chaos proof submits [`smoke_jobs`] in order over the first
        // connection: a drop must draw *before* the daemon-kill job's
        // submission aborts the process, so a mid-stream connection drop
        // observably fires in the very first incarnation.
        let dk_pos = jobs
            .iter()
            .position(|j| plan.daemon_fault(j.key()) == Some(DaemonChaosKind::DaemonKill))
            .expect("asserted above");
        let first_drop = (0..8u64).find(|&r| plan.conn_drop(0, r));
        assert!(
            first_drop.is_some_and(|r| (r as usize) < dk_pos),
            "conn 0 must drop (at {first_drop:?}) before the daemon kill (job {dk_pos}): reseed"
        );
    }

    /// Scout for [`DAEMON_SMOKE_SEED`] candidates. Not part of the suite.
    #[test]
    #[ignore = "seed scout, run by hand"]
    fn find_daemon_smoke_seed() {
        let jobs = smoke_jobs();
        for seed in 0..200u64 {
            let plan = ChaosPlan::new(seed);
            let (mut wk, mut dk, mut clean) = (0, 0, 0);
            for job in &jobs {
                match plan.daemon_fault(job.key()) {
                    Some(DaemonChaosKind::WorkerKill) => wk += 1,
                    Some(DaemonChaosKind::DaemonKill) => dk += 1,
                    _ => clean += 1,
                }
            }
            let drops = (0..8u64)
                .flat_map(|c| (0..10u64).map(move |r| (c, r)))
                .filter(|&(c, r)| plan.conn_drop(c, r))
                .count();
            let dk_pos = jobs
                .iter()
                .position(|j| plan.daemon_fault(j.key()) == Some(DaemonChaosKind::DaemonKill));
            let first_drop = (0..8u64).find(|&r| plan.conn_drop(0, r));
            let early_drop = match (first_drop, dk_pos) {
                (Some(r), Some(p)) => (r as usize) < p,
                _ => false,
            };
            if wk >= 1
                && (1..=2).contains(&dk)
                && clean >= 4
                && (4..40).contains(&drops)
                && early_drop
            {
                println!(
                    "seed {seed}: worker_kills={wk} daemon_kills={dk} clean={clean} \
                     drops={drops}/80 first_drop={first_drop:?} dk_pos={dk_pos:?}"
                );
            }
        }
    }

    #[test]
    fn stems_are_filesystem_safe_and_collision_coded() {
        let a = spec("weird/../id", "alice");
        let mut b = a.clone();
        b.measure += 1; // same id, different spec
        assert_ne!(a.stem(), b.stem(), "stem must encode the spec identity");
        for s in [a.stem(), b.stem()] {
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));
        }
    }

    fn wait_status<F: Fn(&Json) -> bool>(client: &mut Client, pred: F) -> Json {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let status = client.request("{\"op\":\"status\"}").expect("status");
            if pred(&status) {
                return status;
            }
            assert!(
                Instant::now() < deadline,
                "daemon never reached state: {status}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Reads lines until one of type `want` appears; notifications of
    /// other types may interleave (this is a multiplexed protocol: a
    /// fast job's `completed` can land between a request and its
    /// response).
    fn recv_type(c: &mut Client, want: &str) -> Json {
        for _ in 0..32 {
            let line = c.recv().expect("read").expect("open connection");
            if line.get("type").and_then(Json::as_str) == Some(want) {
                return line;
            }
        }
        panic!("no {want:?} line within 32 messages");
    }

    /// End-to-end, in process: submit, complete, idempotent resubmit,
    /// conflicting resubmit, drain. The daemon report lists every
    /// accepted job exactly once.
    #[test]
    fn daemon_completes_cancels_and_drains() {
        let dir = std::env::temp_dir().join(format!("beard-e2e-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut cfg = DaemonConfig::new(&dir);
        cfg.workers = 1;
        let daemon = Daemon::start(cfg, "127.0.0.1:0").expect("daemon start");
        let addr = daemon.addr().to_string();
        assert_eq!(
            std::fs::read_to_string(dir.join("daemon.addr"))
                .unwrap()
                .trim(),
            addr
        );

        let mut c = Client::connect(&addr).expect("connect");
        c.set_timeout(Some(Duration::from_secs(60))).unwrap();
        c.send(&spec("e2e-run", "alice").canonical_line()).unwrap();
        recv_type(&mut c, "accepted");
        let done = recv_type(&mut c, "completed");
        assert_eq!(done.get("id").and_then(Json::as_str), Some("e2e-run"));
        assert!(done.get("stats").is_some());

        // Same id, same spec: idempotent re-accept plus a replay of the
        // settled outcome — the recovery path for a dropped ack.
        c.send(&spec("e2e-run", "alice").canonical_line()).unwrap();
        recv_type(&mut c, "accepted");
        let replay = recv_type(&mut c, "completed");
        assert_eq!(
            replay.get("stats"),
            done.get("stats"),
            "replay must be verbatim"
        );

        // Same id, different spec: typed conflict.
        let mut conflicting = spec("e2e-run", "alice");
        conflicting.measure += 1;
        let conflict = c.request(&conflicting.canonical_line()).unwrap();
        assert_eq!(conflict.get("type").and_then(Json::as_str), Some("error"));
        assert_eq!(
            conflict.get("kind").and_then(Json::as_str),
            Some("id-conflict")
        );

        let drained = c.request("{\"op\":\"drain\"}").unwrap();
        assert_eq!(drained.get("type").and_then(Json::as_str), Some("drained"));
        assert_eq!(drained.get("pending").and_then(Json::as_u64), Some(0));
        let summary = daemon.wait();
        assert_eq!(summary.counters.completed, 1);
        assert_eq!(summary.counters.accepted, 1);
        assert_eq!(summary.pending, 0);

        // New connections are refused after drain.
        assert!(Client::connect(&addr).is_err());

        let report = Json::parse(&std::fs::read_to_string(dir.join("daemon_report.json")).unwrap())
            .expect("report parses");
        let rows = report.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("id").and_then(Json::as_str), Some("e2e-run"));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Admission control with a zero-worker pool (nothing ever drains):
    /// the queue bound sheds typed `overloaded` responses and a fast
    /// drain checkpoints the still-queued jobs; a second daemon on the
    /// same directory resumes and completes them.
    #[test]
    fn overload_sheds_then_fast_drain_checkpoints_and_resumes() {
        let dir = std::env::temp_dir().join(format!("beard-shed-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut cfg = DaemonConfig::new(&dir);
        cfg.workers = 0;
        cfg.queue_capacity = 2;
        let daemon = Daemon::start(cfg, "127.0.0.1:0").expect("daemon start");
        let addr = daemon.addr().to_string();
        let mut c = Client::connect(&addr).expect("connect");
        c.set_timeout(Some(Duration::from_secs(60))).unwrap();

        let workloads = ["rate:mcf", "rate:lbm", "rate:libquantum", "rate:milc"];
        let mut accepted = Vec::new();
        let mut shed = 0;
        for (i, wl) in workloads.iter().enumerate() {
            let mut job = spec(&format!("shed-{i}"), "alice");
            job.workload = (*wl).into();
            let resp = c.request(&job.canonical_line()).unwrap();
            match resp.get("type").and_then(Json::as_str).unwrap() {
                "accepted" => accepted.push(job.id.clone()),
                "overloaded" => {
                    shed += 1;
                    let hint = resp.get("retry_after_ms").and_then(Json::as_u64).unwrap();
                    assert!((50..=60_000).contains(&hint));
                }
                other => panic!("unexpected response type {other}"),
            }
        }
        assert_eq!(accepted.len(), 2);
        assert_eq!(shed, 2);

        // With no workers, a queued cancel is deterministic: the job is
        // removed from the queue and durably flagged.
        let cancelled = c.request("{\"op\":\"cancel\",\"id\":\"shed-0\"}").unwrap();
        assert_eq!(
            cancelled.get("type").and_then(Json::as_str),
            Some("cancelled")
        );
        let twice = c.request("{\"op\":\"cancel\",\"id\":\"shed-0\"}").unwrap();
        assert_eq!(twice.get("type").and_then(Json::as_str), Some("cancelled"));
        let nosuch = c.request("{\"op\":\"cancel\",\"id\":\"ghost\"}").unwrap();
        assert_eq!(
            nosuch.get("kind").and_then(Json::as_str),
            Some("unknown-job")
        );

        let drained = c.request("{\"op\":\"drain\",\"mode\":\"fast\"}").unwrap();
        assert_eq!(drained.get("type").and_then(Json::as_str), Some("drained"));
        assert_eq!(drained.get("pending").and_then(Json::as_u64), Some(1));
        let summary = daemon.wait();
        assert_eq!(summary.counters.shed, 2);
        assert_eq!(summary.counters.cancelled, 1);
        assert_eq!(summary.pending, 1);
        let report = Json::parse(&std::fs::read_to_string(dir.join("daemon_report.json")).unwrap())
            .expect("report parses");
        assert_eq!(
            report.get("pending").and_then(Json::as_arr).unwrap().len(),
            1
        );
        assert_eq!(
            report.get("cancelled").and_then(Json::as_arr).unwrap(),
            &vec![Json::Str("shed-0".into())]
        );

        // Second incarnation on the same directory: the journal resumes
        // the surviving job with no resubmission and completes it; the
        // cancelled job stays cancelled.
        let daemon2 = Daemon::start(DaemonConfig::new(&dir), "127.0.0.1:0").expect("restart");
        let mut c2 = Client::connect(daemon2.addr()).expect("connect");
        c2.set_timeout(Some(Duration::from_secs(120))).unwrap();
        let status = wait_status(&mut c2, |s| {
            s.get("counters")
                .and_then(|c| c.get("completed"))
                .and_then(Json::as_u64)
                == Some(1)
        });
        assert_eq!(
            status
                .get("counters")
                .and_then(|c| c.get("resumed"))
                .and_then(Json::as_u64),
            Some(1)
        );
        let drained2 = c2.request("{\"op\":\"drain\"}").unwrap();
        assert_eq!(drained2.get("pending").and_then(Json::as_u64), Some(0));
        daemon2.wait();
        let report2 =
            Json::parse(&std::fs::read_to_string(dir.join("daemon_report.json")).unwrap())
                .expect("report parses");
        let rows = report2.get("rows").and_then(Json::as_arr).unwrap();
        let ids: Vec<&str> = rows
            .iter()
            .filter_map(|r| r.get("id").and_then(Json::as_str))
            .collect();
        assert_eq!(ids, ["shed-1"]);
        assert_eq!(
            report2.get("cancelled").and_then(Json::as_arr).unwrap(),
            &vec![Json::Str("shed-0".into())]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Oversized and malformed bytes over a real socket: typed error
    /// lines, no hang, no daemon damage.
    #[test]
    fn socket_hardening_rejects_garbage_without_wedging() {
        let dir = std::env::temp_dir().join(format!("beard-garb-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut cfg = DaemonConfig::new(&dir);
        cfg.workers = 0;
        let daemon = Daemon::start(cfg, "127.0.0.1:0").expect("daemon start");
        let addr = daemon.addr().to_string();

        // Malformed: typed error, connection stays usable.
        let mut c = Client::connect(&addr).unwrap();
        c.set_timeout(Some(Duration::from_secs(10))).unwrap();
        let err = c.request("{{{{ not json").unwrap();
        assert_eq!(err.get("kind").and_then(Json::as_str), Some("protocol"));
        let status = c.request("{\"op\":\"status\"}").unwrap();
        assert_eq!(status.get("type").and_then(Json::as_str), Some("status"));

        // Oversized: typed error, then the daemon closes the connection.
        let mut c = Client::connect(&addr).unwrap();
        c.set_timeout(Some(Duration::from_secs(10))).unwrap();
        let huge = "x".repeat(MAX_LINE + 10);
        c.send(&huge).unwrap();
        let err = c.recv().unwrap().expect("typed error before close");
        assert_eq!(err.get("kind").and_then(Json::as_str), Some("oversized"));
        assert!(c.recv().unwrap().is_none(), "connection must be closed");

        // Truncated submit (no newline, half a request, then EOF): the
        // daemon must neither accept nor wedge.
        let mut c = Client::connect(&addr).unwrap();
        let line = spec("trunc", "alice").canonical_line();
        c.writer
            .write_all(&line.as_bytes()[..line.len() / 2])
            .unwrap();
        c.writer.flush().unwrap();
        drop(c);
        let mut c = Client::connect(&addr).unwrap();
        c.set_timeout(Some(Duration::from_secs(10))).unwrap();
        let status = c.request("{\"op\":\"status\"}").unwrap();
        let accepted = status
            .get("counters")
            .and_then(|v| v.get("accepted"))
            .and_then(Json::as_u64);
        assert_eq!(accepted, Some(0), "truncated submit must not be accepted");

        c.request("{\"op\":\"drain\"}").unwrap();
        daemon.wait();
        std::fs::remove_dir_all(&dir).ok();
    }
}
