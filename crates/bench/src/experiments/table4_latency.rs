//! Table 4: DRAM-cache hit rate and latency (hit / miss / average) for
//! Alloy vs BEAR, aggregated over the full suite.

use crate::experiments::run_matrix;
use crate::report::Report;
use crate::{config_for, f3, print_row, suite_all, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};
use bear_core::metrics::RunStats;

fn aggregate(stats: &[RunStats]) -> (f64, f64, f64, f64) {
    let (mut hits, mut lookups) = (0.0, 0.0);
    let (mut hl, mut hn, mut ml, mut mn) = (0.0, 0.0, 0.0, 0.0);
    for s in stats {
        hits += s.l4.read_hits as f64;
        lookups += s.l4.read_lookups as f64;
        hl += s.l4.hit_latency * s.l4.read_hits as f64;
        hn += s.l4.read_hits as f64;
        let misses = (s.l4.read_lookups - s.l4.read_hits) as f64;
        ml += s.l4.miss_latency * misses;
        mn += misses;
    }
    let hit_rate = hits / lookups.max(1.0);
    let hit_lat = hl / hn.max(1.0);
    let miss_lat = ml / mn.max(1.0);
    let avg = (hl + ml) / (hn + mn).max(1.0);
    (hit_rate, hit_lat, miss_lat, avg)
}

/// Runs and prints Table 4.
pub fn run(plan: &RunPlan, report: &mut Report) {
    report.banner("Table 4", "DRAM cache hit-rate and latency", plan);
    let suite = suite_all();
    let variants = [
        ("Alloy", BearFeatures::none()),
        ("BEAR", BearFeatures::full()),
    ];
    let cfgs: Vec<_> = variants
        .iter()
        .map(|&(_, bear)| config_for(DesignKind::Alloy, bear, plan))
        .collect();
    let results = run_matrix(&cfgs, &suite);
    print_row(
        "design",
        ["hit_rate%", "hit_lat", "miss_lat", "avg_lat"]
            .map(String::from)
            .as_ref(),
    );
    for ((label, _), stats) in variants.iter().zip(&results) {
        let (hr, hl, ml, avg) = aggregate(stats);
        report.add_suite(label, stats, None);
        report.add_scalar(&format!("{label}.hit_rate"), hr);
        report.add_scalar(&format!("{label}.hit_latency"), hl);
        report.add_scalar(&format!("{label}.miss_latency"), ml);
        report.add_scalar(&format!("{label}.avg_latency"), avg);
        print_row(label, &[f3(hr * 100.0), f3(hl), f3(ml), f3(avg)]);
    }
}
