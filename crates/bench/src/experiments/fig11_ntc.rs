//! Figure 11: the Neighboring Tag Cache on top of BAB+DCP.

use crate::experiments::{rate_mix_all, run_matrix, speedups};
use crate::report::Report;
use crate::{config_for, f3, print_row, suite_all, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};

/// Runs and prints the Figure 11 study.
pub fn run(plan: &RunPlan, report: &mut Report) {
    report.banner("Fig 11", "NTC over BAB+DCP", plan);
    let suite = suite_all();
    let variants = [
        ("BAB", BearFeatures::bab()),
        ("BAB+DCP", BearFeatures::bab_dcp()),
        ("BEAR", BearFeatures::full()),
    ];
    let cfgs: Vec<_> = std::iter::once(BearFeatures::none())
        .chain(variants.iter().map(|&(_, b)| b))
        .map(|b| config_for(DesignKind::Alloy, b, plan))
        .collect();
    let mut results = run_matrix(&cfgs, &suite).into_iter();
    let base = results.next().expect("base run");
    report.add_suite("Alloy", &base, None);
    let mut all_spd = Vec::new();
    let mut runs = Vec::new();
    for ((label, _), stats) in variants.iter().zip(results) {
        let spd = speedups(&suite, &stats, &base);
        report.add_suite(label, &stats, Some(&spd));
        all_spd.push(spd);
        runs.push(stats);
    }
    print_row(
        "workload",
        ["BAB", "BAB+DCP", "+NTC", "probesAvoid", "squashed"]
            .map(String::from)
            .as_ref(),
    );
    for (i, w) in suite.iter().enumerate() {
        if w.is_rate {
            print_row(
                &w.name,
                &[
                    f3(all_spd[0][i]),
                    f3(all_spd[1][i]),
                    f3(all_spd[2][i]),
                    format!("{}", runs[2][i].l4.miss_probes_avoided),
                    format!("{}", runs[2][i].l4.parallel_squashed),
                ],
            );
        }
    }
    for ((label, _), spd) in variants.iter().zip(&all_spd) {
        let (r, m, a) = rate_mix_all(&suite, spd);
        report.add_scalar(&format!("{label}.gmean_all"), a);
        println!("gmean {label:<8} RATE {r:.3}  MIX {m:.3}  ALL {a:.3}");
    }
}
