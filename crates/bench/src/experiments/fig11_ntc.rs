//! Figure 11: the Neighboring Tag Cache on top of BAB+DCP.

use crate::experiments::{rate_mix_all, run_suite, speedups};
use crate::{banner, config_for, f3, print_row, suite_all, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};

/// Runs and prints the Figure 11 study.
pub fn run(plan: &RunPlan) {
    banner("Fig 11", "NTC over BAB+DCP", plan);
    let suite = suite_all();
    let base = run_suite(
        &config_for(DesignKind::Alloy, BearFeatures::none(), plan),
        &suite,
    );
    let variants = [
        ("BAB", BearFeatures::bab()),
        ("BAB+DCP", BearFeatures::bab_dcp()),
        ("BEAR", BearFeatures::full()),
    ];
    let mut all_spd = Vec::new();
    let mut runs = Vec::new();
    for (_, bear) in variants {
        let stats = run_suite(&config_for(DesignKind::Alloy, bear, plan), &suite);
        all_spd.push(speedups(&suite, &stats, &base));
        runs.push(stats);
    }
    print_row(
        "workload",
        ["BAB", "BAB+DCP", "+NTC", "probesAvoid", "squashed"]
            .map(String::from).as_ref(),
    );
    for (i, w) in suite.iter().enumerate() {
        if w.is_rate {
            print_row(
                &w.name,
                &[
                    f3(all_spd[0][i]),
                    f3(all_spd[1][i]),
                    f3(all_spd[2][i]),
                    format!("{}", runs[2][i].l4.miss_probes_avoided),
                    format!("{}", runs[2][i].l4.parallel_squashed),
                ],
            );
        }
    }
    for ((label, _), spd) in variants.iter().zip(&all_spd) {
        let (r, m, a) = rate_mix_all(&suite, spd);
        println!("gmean {label:<8} RATE {r:.3}  MIX {m:.3}  ALL {a:.3}");
    }
}
