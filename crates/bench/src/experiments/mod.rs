//! One module per table/figure of the paper's evaluation.
//!
//! Every module exposes `run(plan: &RunPlan, report: &mut Report)` which
//! simulates the required configurations through the parallel grid
//! [`runner`](crate::runner), prints rows/series shaped like the paper's,
//! and records every run (plus headline scalars) into the experiment's
//! machine-readable [`Report`](crate::report::Report). The binaries in
//! `src/bin/` are thin wrappers; `bin/all_experiments` runs the whole
//! campaign.

pub mod ablations;
pub mod bloat_ledger;
pub mod fig03_designs;
pub mod fig04_breakdown;
pub mod fig05_prob_bypass;
pub mod fig07_bab;
pub mod fig09_dcp;
pub mod fig11_ntc;
pub mod fig12_bear;
pub mod fig13_bloat;
pub mod fig14_sensitivity;
pub mod fig15_banks;
pub mod fig16_sram_tags;
pub mod fig17_alternatives;
pub mod loop_speedup;
pub mod table4_latency;
pub mod table5_overhead;

use crate::speedup;
use bear_core::metrics::RunStats;
use bear_workloads::Workload;

pub use crate::runner::{run_matrix, run_suite};

/// Per-workload speedups of `sys` over `base` (same workload order).
pub fn speedups(workloads: &[Workload], sys: &[RunStats], base: &[RunStats]) -> Vec<f64> {
    workloads
        .iter()
        .zip(sys.iter().zip(base))
        .map(|(w, (s, b))| speedup(w, s, b))
        .collect()
}

/// Splits per-workload values into (rate gmean, mix gmean, all gmean).
pub fn rate_mix_all(workloads: &[Workload], values: &[f64]) -> (f64, f64, f64) {
    let rate: Vec<f64> = workloads
        .iter()
        .zip(values)
        .filter(|(w, _)| w.is_rate)
        .map(|(_, &v)| v)
        .collect();
    let mix: Vec<f64> = workloads
        .iter()
        .zip(values)
        .filter(|(w, _)| !w.is_rate)
        .map(|(_, &v)| v)
        .collect();
    (
        crate::gmean(&rate),
        crate::gmean(&mix),
        crate::gmean(values),
    )
}
