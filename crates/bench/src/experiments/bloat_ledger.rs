//! Bloat-decomposition table for the B/BD/BDN/BEAR feature ladder,
//! backed by the bandwidth-attribution ledger.
//!
//! The paper builds BEAR one technique at a time on the Alloy baseline:
//! **B** (plain Alloy), **BD** (+Bandwidth-Aware Bypass), **BDN**
//! (+Dirty-Cacheline Probe), **BEAR** (+Neighboring-Tag Cache — all
//! three). For each rung this experiment reports where every DRAM-cache
//! byte went — the per-[`BloatCategory`] decomposition whose
//! correctness the attribution-conservation invariant and the oracle's
//! ledger audit now enforce at transfer granularity — plus memory-side
//! bytes and the resulting Bloat Factor.
//!
//! With `--metrics-out`, the same decomposition lands in the metrics
//! registry as `bear_cell_cache_bytes_total{design,workload,category}`
//! counters (see `crate::metrics`).

use crate::experiments::run_matrix;
use crate::report::Report;
use crate::{config_for, f3, print_row, suite_rate, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};
use bear_core::metrics::BloatBreakdown;
use bear_core::traffic::BloatCategory;

/// The feature ladder: paper shorthand, report label, features.
pub fn ladder() -> [(&'static str, &'static str, BearFeatures); 4] {
    [
        ("B", "Alloy", BearFeatures::none()),
        ("BD", "BAB", BearFeatures::bab()),
        ("BDN", "BAB+DCP", BearFeatures::bab_dcp()),
        ("BEAR", "BEAR", BearFeatures::full()),
    ]
}

/// Runs and prints the ledger-backed decomposition table.
pub fn run(plan: &RunPlan, report: &mut Report) {
    report.banner(
        "bloat_ledger",
        "Attributed bandwidth decomposition, B/BD/BDN/BEAR",
        plan,
    );
    let suite = suite_rate();
    let ladder = ladder();
    let cfgs: Vec<_> = ladder
        .iter()
        .map(|(_, _, bear)| config_for(DesignKind::Alloy, *bear, plan))
        .collect();
    let results = run_matrix(&cfgs, &suite);
    let header: Vec<String> = ["bloat", "cache_mb", "mem_mb"]
        .into_iter()
        .map(String::from)
        .chain(BloatCategory::ALL.iter().map(|c| c.label().to_string()))
        .collect();
    print_row("rung", &header);
    for ((rung, label, _), stats) in ladder.iter().zip(&results) {
        report.add_suite(label, stats, None);
        let mut merged = BloatBreakdown::default();
        let mut mem_bytes = 0u64;
        for s in stats {
            merged.merge(&s.bloat);
            mem_bytes += s.mem_bytes;
        }
        let mb = |b: u64| format!("{:.2}", b as f64 / (1024.0 * 1024.0));
        let mut cells = vec![f3(merged.factor()), mb(merged.total_bytes()), mb(mem_bytes)];
        cells.extend(BloatCategory::ALL.iter().map(|&c| f3(merged.component(c))));
        print_row(rung, &cells);
        report.add_scalar(&format!("{rung}.bloat_factor"), merged.factor());
        report.add_scalar(&format!("{rung}.mem_bytes"), mem_bytes as f64);
        for (cat, bytes) in BloatCategory::ALL.iter().zip(merged.bytes) {
            report.add_scalar(&format!("{rung}.bytes.{}", cat.label()), bytes as f64);
        }
        // The decomposition must account for every byte: components are
        // per-category bytes over useful bytes, so they sum to the factor.
        let component_sum: f64 = BloatCategory::ALL
            .iter()
            .map(|&c| merged.component(c))
            .sum();
        assert!(
            (component_sum - merged.factor()).abs() < 1e-9,
            "{rung}: components sum to {component_sum}, factor {}",
            merged.factor()
        );
    }
    let b = report.scalars.iter().find(|(k, _)| k == "B.bloat_factor");
    let bear = report
        .scalars
        .iter()
        .find(|(k, _)| k == "BEAR.bloat_factor");
    if let (Some((_, b)), Some((_, bear))) = (b, bear) {
        let reduction = (1.0 - bear / b) * 100.0;
        println!("BEAR bloat reduction vs B (rate suite): {reduction:.1}%");
        report.add_scalar("bear_bloat_reduction_pct", reduction);
    }
}
