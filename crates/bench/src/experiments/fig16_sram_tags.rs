//! Figure 16: BEAR vs the idealized Tags-In-SRAM (64 MB) and Sector Cache
//! (6 MB) designs — L4 hit rate, hit/miss latency, Bloat Factor, speedup.

use crate::experiments::{rate_mix_all, run_matrix, speedups};
use crate::report::Report;
use crate::{config_for, f3, print_row, suite_all, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};
use bear_core::metrics::{BloatBreakdown, RunStats};

fn aggregate(stats: &[RunStats]) -> (f64, f64, f64, f64) {
    let (mut hits, mut lookups, mut hl, mut ml, mut mn) = (0.0, 0.0, 0.0, 0.0, 0.0);
    let mut bloat = BloatBreakdown::default();
    for s in stats {
        hits += s.l4.read_hits as f64;
        lookups += s.l4.read_lookups as f64;
        hl += s.l4.hit_latency * s.l4.read_hits as f64;
        let misses = (s.l4.read_lookups - s.l4.read_hits) as f64;
        ml += s.l4.miss_latency * misses;
        mn += misses;
        bloat.merge(&s.bloat);
    }
    (
        hits / lookups.max(1.0),
        hl / hits.max(1.0),
        ml / mn.max(1.0),
        bloat.factor(),
    )
}

/// Runs and prints the Figure 16 comparison.
pub fn run(plan: &RunPlan, report: &mut Report) {
    report.banner("Fig 16", "BEAR vs Tags-In-SRAM and Sector Cache", plan);
    let suite = suite_all();
    let variants = [
        ("AL", DesignKind::Alloy, BearFeatures::none()),
        ("BEAR", DesignKind::Alloy, BearFeatures::full()),
        ("TIS", DesignKind::TagsInSram, BearFeatures::none()),
        ("SC", DesignKind::SectorCache, BearFeatures::none()),
    ];
    let cfgs: Vec<_> = variants
        .iter()
        .map(|&(_, design, bear)| config_for(design, bear, plan))
        .collect();
    let results = run_matrix(&cfgs, &suite);
    let alloy = &results[0];
    print_row(
        "design",
        ["hit%", "hit_lat", "miss_lat", "bloat", "spd(ALL)"]
            .map(String::from)
            .as_ref(),
    );
    for ((label, _, _), stats) in variants.iter().zip(&results) {
        let (hr, hl, ml, bloat) = aggregate(stats);
        let spd = speedups(&suite, stats, alloy);
        let (_, _, a) = rate_mix_all(&suite, &spd);
        if *label == "AL" {
            report.add_suite(label, stats, None);
        } else {
            report.add_suite(label, stats, Some(&spd));
        }
        report.add_scalar(&format!("{label}.hit_rate"), hr);
        report.add_scalar(&format!("{label}.bloat_factor"), bloat);
        report.add_scalar(&format!("{label}.gmean_all"), a);
        print_row(label, &[f3(hr * 100.0), f3(hl), f3(ml), f3(bloat), f3(a)]);
    }
    println!("(SRAM overhead: TIS 64MB, SC ~6MB, BEAR ~19.2KB — see table5)");
}
