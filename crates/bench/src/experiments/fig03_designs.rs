//! Figure 3: Loh-Hill vs Alloy vs Bandwidth-Optimized — Bloat Factor, hit
//! latency, and speedup relative to a system without a DRAM cache.

use crate::experiments::{rate_mix_all, run_matrix, speedups};
use crate::report::Report;
use crate::{config_for, f3, print_row, suite_all, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};

/// Runs and prints the Figure 3 comparison.
pub fn run(plan: &RunPlan, report: &mut Report) {
    report.banner("Fig 3", "LH / Alloy / BW-Opt vs no DRAM cache", plan);
    let suite = suite_all();
    let none = BearFeatures::none();
    let designs = [DesignKind::LohHill, DesignKind::Alloy, DesignKind::BwOpt];
    let cfgs: Vec<_> = std::iter::once(DesignKind::NoCache)
        .chain(designs)
        .map(|d| config_for(d, none, plan))
        .collect();
    let mut results = run_matrix(&cfgs, &suite).into_iter();
    let base = results.next().expect("base run");
    report.add_suite("NoL4", &base, None);

    print_row(
        "design",
        ["bloat", "hit_lat", "speedup(R)", "speedup(M)", "speedup(A)"]
            .map(String::from)
            .as_ref(),
    );
    for (d, stats) in designs.into_iter().zip(results) {
        let spd = speedups(&suite, &stats, &base);
        let (r, m, a) = rate_mix_all(&suite, &spd);
        report.add_suite(d.label(), &stats, Some(&spd));
        // Aggregate bloat and latency: byte- and request-weighted.
        let mut bloat = bear_core::metrics::BloatBreakdown::default();
        let mut lat_sum = 0.0;
        let mut lat_n = 0.0;
        for s in &stats {
            bloat.merge(&s.bloat);
            lat_sum += s.l4.hit_latency * s.l4.read_hits as f64;
            lat_n += s.l4.read_hits as f64;
        }
        let hit_lat = if lat_n > 0.0 { lat_sum / lat_n } else { 0.0 };
        report.add_scalar(&format!("{}.bloat_factor", d.label()), bloat.factor());
        report.add_scalar(&format!("{}.hit_latency", d.label()), hit_lat);
        report.add_scalar(&format!("{}.speedup_all", d.label()), a);
        print_row(
            d.label(),
            &[f3(bloat.factor()), f3(hit_lat), f3(r), f3(m), f3(a)],
        );
    }
}
