//! Figure 3: Loh-Hill vs Alloy vs Bandwidth-Optimized — Bloat Factor, hit
//! latency, and speedup relative to a system without a DRAM cache.

use crate::experiments::{rate_mix_all, run_suite, speedups};
use crate::{banner, config_for, f3, print_row, suite_all, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};

/// Runs and prints the Figure 3 comparison.
pub fn run(plan: &RunPlan) {
    banner("Fig 3", "LH / Alloy / BW-Opt vs no DRAM cache", plan);
    let suite = suite_all();
    let none = BearFeatures::none();
    let base = run_suite(&config_for(DesignKind::NoCache, none, plan), &suite);
    let designs = [DesignKind::LohHill, DesignKind::Alloy, DesignKind::BwOpt];

    print_row(
        "design",
        ["bloat", "hit_lat", "speedup(R)", "speedup(M)", "speedup(A)"]
            .map(String::from).as_ref(),
    );
    for d in designs {
        let stats = run_suite(&config_for(d, none, plan), &suite);
        let spd = speedups(&suite, &stats, &base);
        let (r, m, a) = rate_mix_all(&suite, &spd);
        // Aggregate bloat and latency: byte- and request-weighted.
        let mut bloat = bear_core::metrics::BloatBreakdown::default();
        let mut lat_sum = 0.0;
        let mut lat_n = 0.0;
        for s in &stats {
            bloat.merge(&s.bloat);
            lat_sum += s.l4.hit_latency * s.l4.read_hits as f64;
            lat_n += s.l4.read_hits as f64;
        }
        let hit_lat = if lat_n > 0.0 { lat_sum / lat_n } else { 0.0 };
        print_row(
            d.label(),
            &[
                f3(bloat.factor()),
                f3(hit_lat),
                f3(r),
                f3(m),
                f3(a),
            ],
        );
    }
}
