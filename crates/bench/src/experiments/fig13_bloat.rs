//! Figure 13: Bloat Factor breakdown for (a) Alloy, (b) BAB, (c) BAB+DCP,
//! (d) full BEAR, and (e) BW-Opt, aggregated over RATE / MIX / ALL.

use crate::experiments::run_matrix;
use crate::report::Report;
use crate::{config_for, f3, print_row, suite_all, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};
use bear_core::metrics::BloatBreakdown;
use bear_core::traffic::BloatCategory;
use bear_workloads::Workload;

fn merged(stats: &[(bool, &BloatBreakdown)], rate: Option<bool>) -> BloatBreakdown {
    let mut out = BloatBreakdown::default();
    for (is_rate, b) in stats {
        if rate.is_none() || rate == Some(*is_rate) {
            out.merge(b);
        }
    }
    out
}

/// Runs and prints the Figure 13 breakdowns.
pub fn run(plan: &RunPlan, report: &mut Report) {
    report.banner("Fig 13", "Bloat Factor breakdown by scheme", plan);
    let suite = suite_all();
    let schemes: [(&str, DesignKind, BearFeatures); 5] = [
        ("a:Alloy", DesignKind::Alloy, BearFeatures::none()),
        ("b:BAB", DesignKind::Alloy, BearFeatures::bab()),
        ("c:BAB+DCP", DesignKind::Alloy, BearFeatures::bab_dcp()),
        ("d:BEAR", DesignKind::Alloy, BearFeatures::full()),
        ("e:BW-Opt", DesignKind::BwOpt, BearFeatures::none()),
    ];
    let cfgs: Vec<_> = schemes
        .iter()
        .map(|&(_, design, bear)| config_for(design, bear, plan))
        .collect();
    let results = run_matrix(&cfgs, &suite);
    let header: Vec<String> = ["group", "bloat"]
        .into_iter()
        .map(String::from)
        .chain(BloatCategory::ALL.iter().map(|c| c.label().to_string()))
        .collect();
    print_row("scheme", &header);
    let mut alloy_all: Option<f64> = None;
    let mut bear_all: Option<f64> = None;
    for ((label, _, _), stats) in schemes.iter().zip(&results) {
        report.add_suite(label, stats, None);
        let tagged: Vec<(bool, &BloatBreakdown)> = suite
            .iter()
            .zip(stats)
            .map(|(w, s): (&Workload, _)| (w.is_rate, &s.bloat))
            .collect();
        for (group, filter) in [("RATE", Some(true)), ("MIX", Some(false)), ("ALL", None)] {
            let b = merged(&tagged, filter);
            let mut cells = vec![group.to_string(), f3(b.factor())];
            cells.extend(BloatCategory::ALL.iter().map(|&c| f3(b.component(c))));
            print_row(label, &cells);
            if filter.is_none() {
                report.add_scalar(&format!("{label}.bloat_factor_all"), b.factor());
                if *label == "a:Alloy" {
                    alloy_all = Some(b.factor());
                }
                if *label == "d:BEAR" {
                    bear_all = Some(b.factor());
                }
            }
        }
    }
    if let (Some(a), Some(b)) = (alloy_all, bear_all) {
        report.add_scalar("bear_bloat_reduction_pct", (1.0 - b / a) * 100.0);
        println!(
            "BEAR bloat reduction vs Alloy (ALL): {:.1}%",
            (1.0 - b / a) * 100.0
        );
    }
}
