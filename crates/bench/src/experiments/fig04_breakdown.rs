//! Figure 4: where the bandwidth goes — Alloy's Bloat Factor decomposed
//! into the six secondary-operation categories, against BW-Opt, plus the
//! potential performance of eliminating the bloat.

use crate::experiments::{rate_mix_all, run_suite, speedups};
use crate::{banner, config_for, f3, print_row, suite_all, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};
use bear_core::metrics::BloatBreakdown;
use bear_core::traffic::BloatCategory;

/// Runs and prints the Figure 4 breakdown.
pub fn run(plan: &RunPlan) {
    banner("Fig 4", "Alloy bloat breakdown and BW-Opt potential", plan);
    let suite = suite_all();
    let none = BearFeatures::none();
    let alloy = run_suite(&config_for(DesignKind::Alloy, none, plan), &suite);
    let opt = run_suite(&config_for(DesignKind::BwOpt, none, plan), &suite);

    for (label, stats) in [("Alloy", &alloy), ("BW-Opt", &opt)] {
        let mut bloat = BloatBreakdown::default();
        for s in stats {
            bloat.merge(&s.bloat);
        }
        println!("{label}: bloat factor {:.3}", bloat.factor());
        for cat in BloatCategory::ALL {
            let c = bloat.component(cat);
            if c > 0.0005 {
                print_row(&format!("  {}", cat.label()), &[f3(c)]);
            }
        }
    }
    let spd = speedups(&suite, &opt, &alloy);
    let (_, _, all) = rate_mix_all(&suite, &spd);
    println!("potential performance (BW-Opt over Alloy, gmean ALL): {:.3}", all);
}
