//! Figure 4: where the bandwidth goes — Alloy's Bloat Factor decomposed
//! into the six secondary-operation categories, against BW-Opt, plus the
//! potential performance of eliminating the bloat.

use crate::experiments::{rate_mix_all, run_matrix, speedups};
use crate::report::Report;
use crate::{config_for, f3, print_row, suite_all, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};
use bear_core::metrics::BloatBreakdown;
use bear_core::traffic::BloatCategory;

/// Runs and prints the Figure 4 breakdown.
pub fn run(plan: &RunPlan, report: &mut Report) {
    report.banner("Fig 4", "Alloy bloat breakdown and BW-Opt potential", plan);
    let suite = suite_all();
    let none = BearFeatures::none();
    let cfgs = [
        config_for(DesignKind::Alloy, none, plan),
        config_for(DesignKind::BwOpt, none, plan),
    ];
    let results = run_matrix(&cfgs, &suite);
    let (alloy, opt) = (&results[0], &results[1]);

    for (label, stats) in [("Alloy", alloy), ("BW-Opt", opt)] {
        let mut bloat = BloatBreakdown::default();
        for s in stats.iter() {
            bloat.merge(&s.bloat);
        }
        println!("{label}: bloat factor {:.3}", bloat.factor());
        report.add_scalar(&format!("{label}.bloat_factor"), bloat.factor());
        for cat in BloatCategory::ALL {
            let c = bloat.component(cat);
            if c > 0.0005 {
                print_row(&format!("  {}", cat.label()), &[f3(c)]);
                report.add_scalar(&format!("{label}.component.{}", cat.label()), c);
            }
        }
    }
    let spd = speedups(&suite, opt, alloy);
    report.add_suite("Alloy", alloy, None);
    report.add_suite("BW-Opt", opt, Some(&spd));
    let (_, _, all) = rate_mix_all(&suite, &spd);
    report.add_scalar("potential_performance_all", all);
    println!(
        "potential performance (BW-Opt over Alloy, gmean ALL): {:.3}",
        all
    );
}
