//! Wall-clock speedup of the event-driven run loop over per-cycle polling.
//!
//! The simulator's run loop fast-forwards provably idle cycles (see
//! `System::set_event_driven`); skipped cycles are no-ops by construction,
//! so both modes retire identical instruction streams and report identical
//! statistics — this experiment *asserts* that equivalence on every cell
//! while measuring the wall-clock ratio. The grid is the campaign smoke
//! grid: one representative cell per design family, mixing memory-bound
//! and cache-friendly workloads so both skip regimes (blocked-on-DRAM and
//! mid-gap retirement) are exercised.
//!
//! Report rows carry the event-driven run's statistics with `speedup` set
//! to `poll_wall_ns / event_wall_ns`; scalars record both raw wall times
//! per cell (`poll_ns:<config>:<workload>`, `event_ns:<config>:<workload>`)
//! and the headline `speedup_gmean`.

//!
//! A `--threads LIST` sweep (see the binary) reruns the event-driven grid
//! at each listed `BEAR_SIM_THREADS` count, asserting the simulated
//! results stay bit-identical to serial (the sharded tick's determinism
//! contract) and recording `event_ns_t<N>:<cell>`, `speedup_t<N>:<cell>`,
//! and `speedup_gmean_t<N>` alongside the serial scalars. The headline
//! `speedup_gmean` always means the *serial* event-vs-poll ratio so the
//! committed perf floor keeps one meaning across sweeps.

use crate::report::Report;
use crate::{config_for, f3, gmean, print_row, quick_mode, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};
use bear_core::metrics::RunStats;
use bear_core::system::System;
use bear_workloads::{BenchmarkProfile, Workload};
use std::sync::Mutex;
use std::time::Instant;

/// Extra `BEAR_SIM_THREADS` counts to sweep (`--threads`), set by the
/// binary before the experiment runs. Empty means serial only.
static THREAD_SWEEP: Mutex<Vec<usize>> = Mutex::new(Vec::new());

/// Selects the thread counts the next [`run`] sweeps in addition to the
/// serial baseline (duplicates and `1` are dropped — serial is always
/// measured).
pub fn set_thread_sweep(threads: Vec<usize>) {
    let mut sweep: Vec<usize> = threads.into_iter().filter(|&t| t > 1).collect();
    sweep.sort_unstable();
    sweep.dedup();
    *THREAD_SWEEP.lock().expect("thread sweep poisoned") = sweep;
}

fn thread_sweep() -> Vec<usize> {
    THREAD_SWEEP.lock().expect("thread sweep poisoned").clone()
}

/// One cell of the smoke grid.
struct Cell {
    label: &'static str,
    design: DesignKind,
    bear: BearFeatures,
    bench: &'static str,
}

/// The campaign smoke grid: every design family once.
fn grid() -> Vec<Cell> {
    vec![
        Cell {
            label: "NoCache",
            design: DesignKind::NoCache,
            bear: BearFeatures::none(),
            bench: "mcf",
        },
        Cell {
            label: "Alloy",
            design: DesignKind::Alloy,
            bear: BearFeatures::none(),
            bench: "sphinx3",
        },
        Cell {
            label: "BEAR",
            design: DesignKind::Alloy,
            bear: BearFeatures::full(),
            bench: "mcf",
        },
        Cell {
            label: "LohHill",
            design: DesignKind::LohHill,
            bear: BearFeatures::none(),
            bench: "gcc",
        },
        Cell {
            label: "TIS",
            design: DesignKind::TagsInSram,
            bear: BearFeatures::none(),
            bench: "omnetpp",
        },
    ]
}

/// Runs one cell in the given mode, returning (best wall ns, stats).
/// Wall time covers the monitored run only (not system construction);
/// best-of-N suppresses scheduler noise the way the microbench harness
/// median does, without tripling an already simulation-bound budget.
fn time_cell(
    cfg: &bear_core::config::SystemConfig,
    workload: &Workload,
    event_driven: bool,
    threads: usize,
    samples: usize,
) -> (u64, RunStats, f64) {
    let mut best_ns = u64::MAX;
    let mut best_stats = None;
    let mut skip_frac = 0.0;
    for _ in 0..samples.max(1) {
        let mut sys = System::build(cfg, workload);
        sys.set_event_driven(event_driven);
        sys.set_sim_threads(threads);
        let t0 = Instant::now();
        let stats = sys.run(cfg.warmup_cycles, cfg.measure_cycles);
        let ns = t0.elapsed().as_nanos() as u64;
        if ns < best_ns {
            best_ns = ns;
            best_stats = Some(stats);
            let (skipped, live) = sys.loop_counters();
            skip_frac = skipped as f64 / (skipped + live).max(1) as f64;
        }
    }
    (best_ns, best_stats.expect("at least one sample"), skip_frac)
}

/// Asserts the two modes produced bit-identical simulated results.
fn assert_equivalent(label: &str, bench: &str, event: &RunStats, poll: &RunStats) {
    assert_eq!(
        event.insts_per_core, poll.insts_per_core,
        "{label}×{bench}: instruction streams diverged between run-loop modes"
    );
    assert_eq!(
        event.l4.read_lookups, poll.l4.read_lookups,
        "{label}×{bench}: L4 lookups diverged between run-loop modes"
    );
    assert_eq!(
        event.bloat.total_bytes(),
        poll.bloat.total_bytes(),
        "{label}×{bench}: cache bus bytes diverged between run-loop modes"
    );
    assert_eq!(
        event.mem_bytes, poll.mem_bytes,
        "{label}×{bench}: memory bus bytes diverged between run-loop modes"
    );
}

/// Entry point (see the `loop_speedup` binary).
pub fn run(plan: &RunPlan, report: &mut Report) {
    report.banner(
        "loop_speedup",
        "Event-driven run loop vs per-cycle polling (wall clock)",
        plan,
    );
    let samples = if quick_mode() { 2 } else { 3 };
    print_row(
        "cell",
        &[
            "poll ms".into(),
            "event ms".into(),
            "skipped".into(),
            "speedup".into(),
        ],
    );
    let sweep = thread_sweep();
    let mut speedups = Vec::new();
    let mut threaded: Vec<(usize, Vec<f64>)> = sweep.iter().map(|&t| (t, Vec::new())).collect();
    for cell in grid() {
        let cfg = config_for(cell.design, cell.bear, plan);
        let profile = BenchmarkProfile::by_name(cell.bench)
            .unwrap_or_else(|| panic!("unknown benchmark {}", cell.bench));
        let workload = Workload::rate(profile);
        let (poll_ns, poll_stats, _) = time_cell(&cfg, &workload, false, 1, samples);
        let (event_ns, event_stats, skip_frac) = time_cell(&cfg, &workload, true, 1, samples);
        assert_equivalent(cell.label, cell.bench, &event_stats, &poll_stats);
        let sp = poll_ns as f64 / event_ns.max(1) as f64;
        let key = format!("{}:{}", cell.label, cell.bench);
        print_row(
            &format!("{}x{}", cell.label, cell.bench),
            &[
                format!("{:.1}", poll_ns as f64 / 1e6),
                format!("{:.1}", event_ns as f64 / 1e6),
                format!("{:.0}%", skip_frac * 100.0),
                f3(sp),
            ],
        );
        report.add_run(cell.label, &event_stats, Some(sp));
        report.add_scalar(&format!("poll_ns:{key}"), poll_ns as f64);
        report.add_scalar(&format!("event_ns:{key}"), event_ns as f64);
        report.add_scalar(&format!("skip_frac:{key}"), skip_frac);
        speedups.push(sp);
        for (t, sps) in &mut threaded {
            let (t_ns, t_stats, _) = time_cell(&cfg, &workload, true, *t, samples);
            // The determinism contract: thread count must never change
            // what was simulated, only how fast.
            assert_equivalent(cell.label, cell.bench, &t_stats, &poll_stats);
            let t_sp = poll_ns as f64 / t_ns.max(1) as f64;
            print_row(
                &format!("{}x{}@t{t}", cell.label, cell.bench),
                &[
                    format!("{:.1}", poll_ns as f64 / 1e6),
                    format!("{:.1}", t_ns as f64 / 1e6),
                    String::from("-"),
                    f3(t_sp),
                ],
            );
            report.add_scalar(&format!("event_ns_t{t}:{key}"), t_ns as f64);
            report.add_scalar(&format!("speedup_t{t}:{key}"), t_sp);
            sps.push(t_sp);
        }
    }
    let overall = gmean(&speedups);
    println!("overall speedup (gmean): {}", f3(overall));
    report.add_scalar("speedup_gmean", overall);
    for (t, sps) in &threaded {
        let g = gmean(sps);
        println!("overall speedup at {t} threads (gmean): {}", f3(g));
        report.add_scalar(&format!("speedup_gmean_t{t}"), g);
    }
}
