//! Figure 15: sensitivity to the number of DRAM-cache banks (64 → 2048),
//! separating bank-conflict relief from bus contention.

use crate::experiments::{rate_mix_all, run_suite, speedups};
use crate::{banner, config_for, f3, print_row, suite_sensitivity, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};

/// Runs and prints the Figure 15 sweep.
pub fn run(plan: &RunPlan) {
    banner("Fig 15", "Sensitivity to DRAM cache banks", plan);
    let suite = suite_sensitivity();
    print_row("banks", ["BEAR/Alloy(R)", "(M)", "(ALL)"].map(String::from).as_ref());
    for total_banks in [64u32, 128, 256, 512, 1024, 2048] {
        let banks_per_rank = total_banks / 4; // 4 channels, 1 rank
        let mut base_cfg = config_for(DesignKind::Alloy, BearFeatures::none(), plan);
        base_cfg.cache_dram.topology.banks_per_rank = banks_per_rank;
        let mut bear_cfg = config_for(DesignKind::Alloy, BearFeatures::full(), plan);
        bear_cfg.cache_dram.topology.banks_per_rank = banks_per_rank;
        let base = run_suite(&base_cfg, &suite);
        let bear = run_suite(&bear_cfg, &suite);
        let spd = speedups(&suite, &bear, &base);
        let (r, m, a) = rate_mix_all(&suite, &spd);
        print_row(&format!("{total_banks}"), &[f3(r), f3(m), f3(a)]);
    }
}
