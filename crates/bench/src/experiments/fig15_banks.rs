//! Figure 15: sensitivity to the number of DRAM-cache banks (64 → 2048),
//! separating bank-conflict relief from bus contention.

use crate::experiments::{rate_mix_all, run_matrix, speedups};
use crate::report::Report;
use crate::{config_for, f3, print_row, suite_sensitivity, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};

/// Runs and prints the Figure 15 sweep.
pub fn run(plan: &RunPlan, report: &mut Report) {
    report.banner("Fig 15", "Sensitivity to DRAM cache banks", plan);
    let suite = suite_sensitivity();
    let bank_points = [64u32, 128, 256, 512, 1024, 2048];
    let mut cfgs = Vec::new();
    for total_banks in bank_points {
        let banks_per_rank = total_banks / 4; // 4 channels, 1 rank
        for bear in [BearFeatures::none(), BearFeatures::full()] {
            let mut cfg = config_for(DesignKind::Alloy, bear, plan);
            cfg.cache_dram.topology.banks_per_rank = banks_per_rank;
            cfgs.push(cfg);
        }
    }
    let results = run_matrix(&cfgs, &suite);
    print_row(
        "banks",
        ["BEAR/Alloy(R)", "(M)", "(ALL)"].map(String::from).as_ref(),
    );
    for (i, total_banks) in bank_points.into_iter().enumerate() {
        let (base, bear) = (&results[2 * i], &results[2 * i + 1]);
        let spd = speedups(&suite, bear, base);
        let (r, m, a) = rate_mix_all(&suite, &spd);
        report.add_suite(&format!("Alloy@{total_banks}banks"), base, None);
        report.add_suite(&format!("BEAR@{total_banks}banks"), bear, Some(&spd));
        report.add_scalar(&format!("banks.{total_banks}.gmean_all"), a);
        print_row(&format!("{total_banks}"), &[f3(r), f3(m), f3(a)]);
    }
}
