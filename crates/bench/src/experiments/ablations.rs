//! Ablation studies of BEAR's design choices (extending the paper's
//! Section 4.2 sensitivity discussion):
//!
//! 1. **Bypass probability**: the paper picked P = 90 % for BAB; we sweep
//!    P ∈ {25, 50, 75, 90, 100} %.
//! 2. **Duel slack Δ**: the paper found Δ = 1/16 best; we sweep
//!    Δ ∈ {1/4, 1/8, 1/16, 1/32, 1/64}.
//! 3. **Writeback allocation**: write-allocate (the baseline) vs
//!    no-allocate (writeback misses go straight to memory).
//! 4. **Temporal NTC** (§9.4): the paper suggests combining the spatial
//!    neighbor-tag cache with a temporal tag cache; we measure the combo.
//! 5. **Predictor organization**: MAP-I (PC-indexed, the baseline) vs the
//!    cheaper global MAP-G.

use crate::experiments::{rate_mix_all, run_suite, speedups};
use crate::{banner, config_for, f3, print_row, suite_sensitivity, RunPlan};
use bear_core::config::{BearFeatures, DesignKind, FillPolicy};

/// Runs and prints all three ablations.
pub fn run(plan: &RunPlan) {
    let suite = suite_sensitivity();
    let base = run_suite(
        &config_for(DesignKind::Alloy, BearFeatures::none(), plan),
        &suite,
    );

    banner("Ablation 1", "BAB bypass probability", plan);
    print_row("P", ["speedup(R)", "(M)", "(ALL)"].map(String::from).as_ref());
    for p in [0.25, 0.5, 0.75, 0.9, 1.0] {
        let bear = BearFeatures {
            fill_policy: FillPolicy::BandwidthAware(p),
            ..BearFeatures::none()
        };
        let stats = run_suite(&config_for(DesignKind::Alloy, bear, plan), &suite);
        let spd = speedups(&suite, &stats, &base);
        let (r, m, a) = rate_mix_all(&suite, &spd);
        print_row(&format!("{:.0}%", p * 100.0), &[f3(r), f3(m), f3(a)]);
    }

    banner("Ablation 2", "BAB duel slack Δ", plan);
    print_row("delta", ["speedup(R)", "(M)", "(ALL)"].map(String::from).as_ref());
    for shift in [2u32, 3, 4, 5, 6] {
        let mut cfg = config_for(DesignKind::Alloy, BearFeatures::bab(), plan);
        cfg.bab_delta_shift = shift;
        let stats = run_suite(&cfg, &suite);
        let spd = speedups(&suite, &stats, &base);
        let (r, m, a) = rate_mix_all(&suite, &spd);
        print_row(&format!("1/{}", 1u32 << shift), &[f3(r), f3(m), f3(a)]);
    }

    banner("Ablation 3", "Writeback allocation policy", plan);
    print_row("policy", ["speedup(R)", "(M)", "(ALL)"].map(String::from).as_ref());
    for (label, allocate) in [("allocate", true), ("no-allocate", false)] {
        let mut cfg = config_for(DesignKind::Alloy, BearFeatures::none(), plan);
        cfg.writeback_allocate = allocate;
        let stats = run_suite(&cfg, &suite);
        let spd = speedups(&suite, &stats, &base);
        let (r, m, a) = rate_mix_all(&suite, &spd);
        print_row(label, &[f3(r), f3(m), f3(a)]);
    }

    banner("Ablation 5", "MAP-I vs MAP-G predictor", plan);
    print_row("predictor", ["speedup(R)", "(M)", "(ALL)"].map(String::from).as_ref());
    for (label, kind) in [
        ("MAP-I", bear_core::predictor::PredictorKind::MapI),
        ("MAP-G", bear_core::predictor::PredictorKind::MapG),
    ] {
        let mut cfg = config_for(DesignKind::Alloy, BearFeatures::none(), plan);
        cfg.predictor = kind;
        let stats = run_suite(&cfg, &suite);
        let spd = speedups(&suite, &stats, &base);
        let (r, m, a) = rate_mix_all(&suite, &spd);
        print_row(label, &[f3(r), f3(m), f3(a)]);
    }

    banner("Ablation 4", "Temporal NTC extension (§9.4)", plan);
    print_row("ntc mode", ["speedup(R)", "(M)", "(ALL)"].map(String::from).as_ref());
    for (label, bear) in [
        ("spatial", BearFeatures::full()),
        ("spatial+temporal", BearFeatures::full_with_temporal_ntc()),
    ] {
        let stats = run_suite(&config_for(DesignKind::Alloy, bear, plan), &suite);
        let spd = speedups(&suite, &stats, &base);
        let (r, m, a) = rate_mix_all(&suite, &spd);
        print_row(label, &[f3(r), f3(m), f3(a)]);
    }
}
