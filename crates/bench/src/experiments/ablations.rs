//! Ablation studies of BEAR's design choices (extending the paper's
//! Section 4.2 sensitivity discussion):
//!
//! 1. **Bypass probability**: the paper picked P = 90 % for BAB; we sweep
//!    P ∈ {25, 50, 75, 90, 100} %.
//! 2. **Duel slack Δ**: the paper found Δ = 1/16 best; we sweep
//!    Δ ∈ {1/4, 1/8, 1/16, 1/32, 1/64}.
//! 3. **Writeback allocation**: write-allocate (the baseline) vs
//!    no-allocate (writeback misses go straight to memory).
//! 4. **Temporal NTC** (§9.4): the paper suggests combining the spatial
//!    neighbor-tag cache with a temporal tag cache; we measure the combo.
//! 5. **Predictor organization**: MAP-I (PC-indexed, the baseline) vs the
//!    cheaper global MAP-G.

use crate::experiments::{rate_mix_all, run_matrix, speedups};
use crate::report::Report;
use crate::{config_for, f3, print_row, suite_sensitivity, RunPlan};
use bear_core::config::{BearFeatures, DesignKind, FillPolicy};

/// Runs and prints all the ablations.
pub fn run(plan: &RunPlan, report: &mut Report) {
    let suite = suite_sensitivity();

    // Build every config up front so the whole grid runs as one
    // parallel batch; printing below preserves the original order.
    let mut cfgs = vec![config_for(DesignKind::Alloy, BearFeatures::none(), plan)];

    let bypass_points = [0.25, 0.5, 0.75, 0.9, 1.0];
    for p in bypass_points {
        let bear = BearFeatures {
            fill_policy: FillPolicy::BandwidthAware(p),
            ..BearFeatures::none()
        };
        cfgs.push(config_for(DesignKind::Alloy, bear, plan));
    }

    let delta_points = [2u32, 3, 4, 5, 6];
    for shift in delta_points {
        let mut cfg = config_for(DesignKind::Alloy, BearFeatures::bab(), plan);
        cfg.bab_delta_shift = shift;
        cfgs.push(cfg);
    }

    let wb_points = [("allocate", true), ("no-allocate", false)];
    for (_, allocate) in wb_points {
        let mut cfg = config_for(DesignKind::Alloy, BearFeatures::none(), plan);
        cfg.writeback_allocate = allocate;
        cfgs.push(cfg);
    }

    let pred_points = [
        ("MAP-I", bear_core::predictor::PredictorKind::MapI),
        ("MAP-G", bear_core::predictor::PredictorKind::MapG),
    ];
    for (_, kind) in pred_points {
        let mut cfg = config_for(DesignKind::Alloy, BearFeatures::none(), plan);
        cfg.predictor = kind;
        cfgs.push(cfg);
    }

    let ntc_points = [
        ("spatial", BearFeatures::full()),
        ("spatial+temporal", BearFeatures::full_with_temporal_ntc()),
    ];
    for (_, bear) in ntc_points {
        cfgs.push(config_for(DesignKind::Alloy, bear, plan));
    }

    let results = run_matrix(&cfgs, &suite);
    let mut results = results.iter();
    let base = results.next().expect("base run");
    report.add_suite("Alloy", base, None);
    let spd_header: Vec<String> = ["speedup(R)", "(M)", "(ALL)"].map(String::from).into();
    let emit = |label: String, stats: &Vec<bear_core::metrics::RunStats>, report: &mut Report| {
        let spd = speedups(&suite, stats, base);
        let (r, m, a) = rate_mix_all(&suite, &spd);
        report.add_suite(&label, stats, Some(&spd));
        report.add_scalar(&format!("{label}.gmean_all"), a);
        print_row(&label, &[f3(r), f3(m), f3(a)]);
    };

    report.banner("Ablation 1", "BAB bypass probability", plan);
    print_row("P", &spd_header);
    for p in bypass_points {
        emit(
            format!("{:.0}%", p * 100.0),
            results.next().expect("run"),
            report,
        );
    }

    report.banner("Ablation 2", "BAB duel slack Δ", plan);
    print_row("delta", &spd_header);
    for shift in delta_points {
        emit(
            format!("1/{}", 1u32 << shift),
            results.next().expect("run"),
            report,
        );
    }

    report.banner("Ablation 3", "Writeback allocation policy", plan);
    print_row("policy", &spd_header);
    for (label, _) in wb_points {
        emit(label.to_string(), results.next().expect("run"), report);
    }

    report.banner("Ablation 5", "MAP-I vs MAP-G predictor", plan);
    print_row("predictor", &spd_header);
    for (label, _) in pred_points {
        emit(label.to_string(), results.next().expect("run"), report);
    }

    report.banner("Ablation 4", "Temporal NTC extension (§9.4)", plan);
    print_row("ntc mode", &spd_header);
    for (label, _) in ntc_points {
        emit(label.to_string(), results.next().expect("run"), report);
    }
}
