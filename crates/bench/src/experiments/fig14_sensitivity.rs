//! Figure 14: sensitivity of BEAR's gain to (a) DRAM-cache bandwidth
//! (4×/8×/16× of commodity memory) and (b) capacity (512 MB / 1 GB / 2 GB
//! at full scale). Speedups are normalized to Alloy *at each
//! configuration*, as in the paper.

use crate::experiments::{rate_mix_all, run_suite, speedups};
use crate::{banner, config_for, f3, print_row, suite_sensitivity, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};
use bear_dram::config::DramConfig;

/// Runs and prints both Figure 14 sweeps.
pub fn run(plan: &RunPlan) {
    banner("Fig 14a", "Sensitivity to DRAM cache bandwidth", plan);
    let suite = suite_sensitivity();
    print_row("bandwidth", ["BEAR/Alloy(R)", "(M)", "(ALL)"].map(String::from).as_ref());
    for factor in [4u32, 8, 16] {
        let mut base_cfg = config_for(DesignKind::Alloy, BearFeatures::none(), plan);
        base_cfg.cache_dram = DramConfig::stacked_cache_bandwidth(factor);
        let mut bear_cfg = config_for(DesignKind::Alloy, BearFeatures::full(), plan);
        bear_cfg.cache_dram = DramConfig::stacked_cache_bandwidth(factor);
        let base = run_suite(&base_cfg, &suite);
        let bear = run_suite(&bear_cfg, &suite);
        let spd = speedups(&suite, &bear, &base);
        let (r, m, a) = rate_mix_all(&suite, &spd);
        print_row(&format!("{factor}x"), &[f3(r), f3(m), f3(a)]);
    }

    banner("Fig 14b", "Sensitivity to DRAM cache capacity", plan);
    print_row("capacity", ["BEAR/Alloy(R)", "(M)", "(ALL)"].map(String::from).as_ref());
    for (label, full_bytes) in [("0.5GB", 1u64 << 29), ("1GB", 1 << 30), ("2GB", 1 << 31)] {
        let mut base_cfg = config_for(DesignKind::Alloy, BearFeatures::none(), plan);
        base_cfg.l4_capacity_full = full_bytes;
        let mut bear_cfg = config_for(DesignKind::Alloy, BearFeatures::full(), plan);
        bear_cfg.l4_capacity_full = full_bytes;
        let base = run_suite(&base_cfg, &suite);
        let bear = run_suite(&bear_cfg, &suite);
        let spd = speedups(&suite, &bear, &base);
        let (r, m, a) = rate_mix_all(&suite, &spd);
        print_row(label, &[f3(r), f3(m), f3(a)]);
    }
}
