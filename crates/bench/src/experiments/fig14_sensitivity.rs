//! Figure 14: sensitivity of BEAR's gain to (a) DRAM-cache bandwidth
//! (4×/8×/16× of commodity memory) and (b) capacity (512 MB / 1 GB / 2 GB
//! at full scale). Speedups are normalized to Alloy *at each
//! configuration*, as in the paper.

use crate::experiments::{rate_mix_all, run_matrix, speedups};
use crate::report::Report;
use crate::{config_for, f3, print_row, suite_sensitivity, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};
use bear_dram::config::DramConfig;

/// Runs and prints both Figure 14 sweeps.
pub fn run(plan: &RunPlan, report: &mut Report) {
    report.banner("Fig 14a", "Sensitivity to DRAM cache bandwidth", plan);
    let suite = suite_sensitivity();

    // Both sweeps interleave (Alloy, BEAR) config pairs; run the whole
    // grid in one parallel batch per sweep.
    let bw_points = [4u32, 8, 16];
    let mut cfgs = Vec::new();
    for factor in bw_points {
        for bear in [BearFeatures::none(), BearFeatures::full()] {
            let mut cfg = config_for(DesignKind::Alloy, bear, plan);
            cfg.cache_dram = DramConfig::stacked_cache_bandwidth(factor);
            cfgs.push(cfg);
        }
    }
    let results = run_matrix(&cfgs, &suite);
    print_row(
        "bandwidth",
        ["BEAR/Alloy(R)", "(M)", "(ALL)"].map(String::from).as_ref(),
    );
    for (i, factor) in bw_points.into_iter().enumerate() {
        let (base, bear) = (&results[2 * i], &results[2 * i + 1]);
        let spd = speedups(&suite, bear, base);
        let (r, m, a) = rate_mix_all(&suite, &spd);
        report.add_suite(&format!("Alloy@{factor}x"), base, None);
        report.add_suite(&format!("BEAR@{factor}x"), bear, Some(&spd));
        report.add_scalar(&format!("bandwidth.{factor}x.gmean_all"), a);
        print_row(&format!("{factor}x"), &[f3(r), f3(m), f3(a)]);
    }

    report.banner("Fig 14b", "Sensitivity to DRAM cache capacity", plan);
    let cap_points = [("0.5GB", 1u64 << 29), ("1GB", 1 << 30), ("2GB", 1 << 31)];
    let mut cfgs = Vec::new();
    for (_, full_bytes) in cap_points {
        for bear in [BearFeatures::none(), BearFeatures::full()] {
            let mut cfg = config_for(DesignKind::Alloy, bear, plan);
            cfg.l4_capacity_full = full_bytes;
            cfgs.push(cfg);
        }
    }
    let results = run_matrix(&cfgs, &suite);
    print_row(
        "capacity",
        ["BEAR/Alloy(R)", "(M)", "(ALL)"].map(String::from).as_ref(),
    );
    for (i, (label, _)) in cap_points.into_iter().enumerate() {
        let (base, bear) = (&results[2 * i], &results[2 * i + 1]);
        let spd = speedups(&suite, bear, base);
        let (r, m, a) = rate_mix_all(&suite, &spd);
        report.add_suite(&format!("Alloy@{label}"), base, None);
        report.add_suite(&format!("BEAR@{label}"), bear, Some(&spd));
        report.add_scalar(&format!("capacity.{label}.gmean_all"), a);
        print_row(label, &[f3(r), f3(m), f3(a)]);
    }
}
