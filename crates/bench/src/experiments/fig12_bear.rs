//! Figure 12: overall performance — Alloy (baseline), BEAR, and BW-Opt —
//! per workload, with RATE / MIX / ALL54 geometric means.

use crate::experiments::{rate_mix_all, run_suite, speedups};
use crate::{banner, config_for, f3, print_row, suite_all, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};

/// Runs and prints the Figure 12 comparison.
pub fn run(plan: &RunPlan) {
    banner("Fig 12", "Alloy / BEAR / BW-Opt overall performance", plan);
    let suite = suite_all();
    let alloy = run_suite(
        &config_for(DesignKind::Alloy, BearFeatures::none(), plan),
        &suite,
    );
    let bear = run_suite(
        &config_for(DesignKind::Alloy, BearFeatures::full(), plan),
        &suite,
    );
    let opt = run_suite(
        &config_for(DesignKind::BwOpt, BearFeatures::none(), plan),
        &suite,
    );
    let spd_bear = speedups(&suite, &bear, &alloy);
    let spd_opt = speedups(&suite, &opt, &alloy);
    print_row("workload", ["BEAR", "BW-Opt"].map(String::from).as_ref());
    for (i, w) in suite.iter().enumerate() {
        print_row(&w.name, &[f3(spd_bear[i]), f3(spd_opt[i])]);
    }
    let (r1, m1, a1) = rate_mix_all(&suite, &spd_bear);
    let (r2, m2, a2) = rate_mix_all(&suite, &spd_opt);
    println!("gmean BEAR:   RATE {r1:.3}  MIX {m1:.3}  ALL54 {a1:.3}");
    println!("gmean BW-Opt: RATE {r2:.3}  MIX {m2:.3}  ALL54 {a2:.3}");
}
