//! Figure 12: overall performance — Alloy (baseline), BEAR, and BW-Opt —
//! per workload, with RATE / MIX / ALL54 geometric means.

use crate::experiments::{rate_mix_all, run_matrix, speedups};
use crate::report::Report;
use crate::{config_for, f3, print_row, suite_all, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};

/// Runs and prints the Figure 12 comparison.
pub fn run(plan: &RunPlan, report: &mut Report) {
    report.banner("Fig 12", "Alloy / BEAR / BW-Opt overall performance", plan);
    let suite = suite_all();
    let cfgs = [
        config_for(DesignKind::Alloy, BearFeatures::none(), plan),
        config_for(DesignKind::Alloy, BearFeatures::full(), plan),
        config_for(DesignKind::BwOpt, BearFeatures::none(), plan),
    ];
    let results = run_matrix(&cfgs, &suite);
    let (alloy, bear, opt) = (&results[0], &results[1], &results[2]);
    let spd_bear = speedups(&suite, bear, alloy);
    let spd_opt = speedups(&suite, opt, alloy);
    report.add_suite("Alloy", alloy, None);
    report.add_suite("BEAR", bear, Some(&spd_bear));
    report.add_suite("BW-Opt", opt, Some(&spd_opt));
    print_row("workload", ["BEAR", "BW-Opt"].map(String::from).as_ref());
    for (i, w) in suite.iter().enumerate() {
        print_row(&w.name, &[f3(spd_bear[i]), f3(spd_opt[i])]);
    }
    let (r1, m1, a1) = rate_mix_all(&suite, &spd_bear);
    let (r2, m2, a2) = rate_mix_all(&suite, &spd_opt);
    report.add_scalar("BEAR.gmean_rate", r1);
    report.add_scalar("BEAR.gmean_mix", m1);
    report.add_scalar("BEAR.gmean_all", a1);
    report.add_scalar("BW-Opt.gmean_all", a2);
    println!("gmean BEAR:   RATE {r1:.3}  MIX {m1:.3}  ALL54 {a1:.3}");
    println!("gmean BW-Opt: RATE {r2:.3}  MIX {m2:.3}  ALL54 {a2:.3}");
}
