//! Figure 5: naive Probabilistic Bypass at P = 50 % and P = 90 % — hit
//! latency reduction, hit-rate change, and speedup per rate workload.

use crate::experiments::run_matrix;
use crate::report::Report;
use crate::{config_for, f3, print_row, speedup, suite_rate, RunPlan};
use bear_core::config::{BearFeatures, DesignKind, FillPolicy};

/// Runs and prints the Figure 5 study.
pub fn run(plan: &RunPlan, report: &mut Report) {
    report.banner("Fig 5", "Probabilistic Bypass P=50% / P=90%", plan);
    let suite = suite_rate();
    let mut cfgs = vec![config_for(DesignKind::Alloy, BearFeatures::none(), plan)];
    for p in [0.5, 0.9] {
        let bear = BearFeatures {
            fill_policy: FillPolicy::Probabilistic(p),
            ..BearFeatures::none()
        };
        cfgs.push(config_for(DesignKind::Alloy, bear, plan));
    }
    let mut results = run_matrix(&cfgs, &suite).into_iter();
    let base = results.next().expect("base run");
    let variants: Vec<_> = results.collect();
    report.add_suite("Alloy", &base, None);

    print_row(
        "workload",
        ["dLat50%", "dLat90%", "dHit50", "dHit90", "spd50", "spd90"]
            .map(String::from)
            .as_ref(),
    );
    let mut spd = [Vec::new(), Vec::new()];
    for (i, w) in suite.iter().enumerate() {
        let b = &base[i];
        let cells: Vec<String> = (0..2)
            .map(|v| {
                let s = &variants[v][i];
                f3(1.0 - s.l4.hit_latency / b.l4.hit_latency.max(1e-9))
            })
            .chain((0..2).map(|v| {
                let s = &variants[v][i];
                f3(s.l4.hit_rate - b.l4.hit_rate)
            }))
            .chain((0..2).map(|v| {
                let s = speedup(w, &variants[v][i], b);
                spd[v].push(s);
                f3(s)
            }))
            .collect();
        print_row(&w.name, &cells);
    }
    for (v, label) in [(0, "PB-50%"), (1, "PB-90%")] {
        report.add_suite(label, &variants[v], Some(&spd[v]));
        report.add_scalar(&format!("{label}.gmean"), crate::gmean(&spd[v]));
    }
    println!(
        "gmean speedups: P=50% {:.3}, P=90% {:.3}",
        crate::gmean(&spd[0]),
        crate::gmean(&spd[1]),
    );
}
