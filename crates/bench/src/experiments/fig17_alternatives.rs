//! Figure 17: alternative DRAM-cache implementations — LH, MC, Alloy,
//! inclusive Alloy, and BEAR — normalized to a system without a DRAM cache.

use crate::experiments::{rate_mix_all, run_suite, speedups};
use crate::{banner, config_for, f3, print_row, suite_all, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};

/// Runs and prints the Figure 17 comparison.
pub fn run(plan: &RunPlan) {
    banner("Fig 17", "DRAM cache implementations vs no DRAM cache", plan);
    let suite = suite_all();
    let base = run_suite(
        &config_for(DesignKind::NoCache, BearFeatures::none(), plan),
        &suite,
    );
    let variants = [
        ("LH", DesignKind::LohHill, BearFeatures::none()),
        ("MC", DesignKind::MostlyClean, BearFeatures::none()),
        ("Alloy", DesignKind::Alloy, BearFeatures::none()),
        ("Incl-Alloy", DesignKind::InclusiveAlloy, BearFeatures::none()),
        ("BEAR", DesignKind::Alloy, BearFeatures::full()),
    ];
    print_row("design", ["RATE", "MIX", "ALL"].map(String::from).as_ref());
    for (label, design, bear) in variants {
        let stats = run_suite(&config_for(design, bear, plan), &suite);
        let spd = speedups(&suite, &stats, &base);
        let (r, m, a) = rate_mix_all(&suite, &spd);
        print_row(label, &[f3(r), f3(m), f3(a)]);
    }
}
