//! Figure 17: alternative DRAM-cache implementations — LH, MC, Alloy,
//! inclusive Alloy, and BEAR — normalized to a system without a DRAM cache.

use crate::experiments::{rate_mix_all, run_matrix, speedups};
use crate::report::Report;
use crate::{config_for, f3, print_row, suite_all, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};

/// Runs and prints the Figure 17 comparison.
pub fn run(plan: &RunPlan, report: &mut Report) {
    report.banner(
        "Fig 17",
        "DRAM cache implementations vs no DRAM cache",
        plan,
    );
    let suite = suite_all();
    let variants = [
        ("LH", DesignKind::LohHill, BearFeatures::none()),
        ("MC", DesignKind::MostlyClean, BearFeatures::none()),
        ("Alloy", DesignKind::Alloy, BearFeatures::none()),
        (
            "Incl-Alloy",
            DesignKind::InclusiveAlloy,
            BearFeatures::none(),
        ),
        ("BEAR", DesignKind::Alloy, BearFeatures::full()),
    ];
    let cfgs: Vec<_> = std::iter::once((DesignKind::NoCache, BearFeatures::none()))
        .chain(variants.iter().map(|&(_, d, b)| (d, b)))
        .map(|(design, bear)| config_for(design, bear, plan))
        .collect();
    let mut results = run_matrix(&cfgs, &suite).into_iter();
    let base = results.next().expect("base run");
    report.add_suite("NoCache", &base, None);
    print_row("design", ["RATE", "MIX", "ALL"].map(String::from).as_ref());
    for ((label, _, _), stats) in variants.iter().zip(results) {
        let spd = speedups(&suite, &stats, &base);
        let (r, m, a) = rate_mix_all(&suite, &spd);
        report.add_suite(label, &stats, Some(&spd));
        report.add_scalar(&format!("{label}.gmean_all"), a);
        print_row(label, &[f3(r), f3(m), f3(a)]);
    }
}
