//! Table 5: storage overhead of the BEAR components, plus the SRAM costs
//! of the alternative tag organizations (Section 8). Pure arithmetic — no
//! simulation.

use crate::report::Report;
use crate::{print_row, RunPlan};
use bear_core::config::{BearFeatures, DesignKind, SystemConfig};
use bear_core::overhead::{sector_tag_store_bytes, tis_tag_store_bytes, StorageOverhead};

/// Prints Table 5.
pub fn run(plan: &RunPlan, report: &mut Report) {
    report.banner("Table 5", "Storage overhead of BEAR", plan);
    let mut cfg = SystemConfig::paper_baseline(DesignKind::Alloy);
    cfg.bear = BearFeatures::full();
    let o = StorageOverhead::of(&cfg);
    report.add_scalar("bab_bytes", o.bab_bytes as f64);
    report.add_scalar("dcp_bytes", o.dcp_bytes as f64);
    report.add_scalar("ntc_bytes", o.ntc_bytes as f64);
    report.add_scalar("total_bytes", o.total() as f64);
    report.add_scalar("tis_tag_store_bytes", tis_tag_store_bytes(1 << 30) as f64);
    report.add_scalar("sc_tag_store_bytes", sector_tag_store_bytes(1 << 30) as f64);
    print_row("component", &["bytes".to_string()]);
    print_row("BAB", &[format!("{}", o.bab_bytes)]);
    print_row("DCP", &[format!("{}", o.dcp_bytes)]);
    print_row("NTC", &[format!("{}", o.ntc_bytes)]);
    print_row(
        "total",
        &[format!(
            "{} (~{:.1} KB)",
            o.total(),
            o.total() as f64 / 1024.0
        )],
    );
    println!();
    print_row("alternative", &["SRAM bytes".to_string()]);
    print_row(
        "TIS tag store",
        &[format!("{} (64 MB)", tis_tag_store_bytes(1 << 30))],
    );
    print_row(
        "SC tag store",
        &[format!(
            "{} (~{:.1} MB)",
            sector_tag_store_bytes(1 << 30),
            sector_tag_store_bytes(1 << 30) as f64 / (1 << 20) as f64
        )],
    );
}
