//! Figure 9: DRAM Cache Presence on top of BAB — speedup over the Alloy
//! baseline for BAB alone and BAB+DCP.

use crate::experiments::{rate_mix_all, run_matrix, speedups};
use crate::report::Report;
use crate::{config_for, f3, print_row, suite_all, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};

/// Runs and prints the Figure 9 study.
pub fn run(plan: &RunPlan, report: &mut Report) {
    report.banner("Fig 9", "DCP over BAB", plan);
    let suite = suite_all();
    let cfgs = [
        config_for(DesignKind::Alloy, BearFeatures::none(), plan),
        config_for(DesignKind::Alloy, BearFeatures::bab(), plan),
        config_for(DesignKind::Alloy, BearFeatures::bab_dcp(), plan),
    ];
    let results = run_matrix(&cfgs, &suite);
    let (base, bab, dcp) = (&results[0], &results[1], &results[2]);
    let spd_bab = speedups(&suite, bab, base);
    let spd_dcp = speedups(&suite, dcp, base);
    report.add_suite("Alloy", base, None);
    report.add_suite("BAB", bab, Some(&spd_bab));
    report.add_suite("BAB+DCP", dcp, Some(&spd_dcp));
    print_row(
        "workload",
        ["BAB", "BAB+DCP", "wbAvoid%"].map(String::from).as_ref(),
    );
    for (i, w) in suite.iter().enumerate() {
        if w.is_rate {
            let avoided = dcp[i].l4.wb_probes_avoided;
            print_row(
                &w.name,
                &[f3(spd_bab[i]), f3(spd_dcp[i]), format!("{avoided}")],
            );
        }
    }
    let (r1, m1, a1) = rate_mix_all(&suite, &spd_bab);
    let (r2, m2, a2) = rate_mix_all(&suite, &spd_dcp);
    report.add_scalar("BAB.gmean_all", a1);
    report.add_scalar("BAB+DCP.gmean_all", a2);
    println!("gmean BAB:     RATE {r1:.3}  MIX {m1:.3}  ALL {a1:.3}");
    println!("gmean BAB+DCP: RATE {r2:.3}  MIX {m2:.3}  ALL {a2:.3}");
}
