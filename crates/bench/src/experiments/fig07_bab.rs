//! Figure 7: Bandwidth-Aware Bypass speedup over the Alloy baseline.

use crate::experiments::{rate_mix_all, run_matrix, speedups};
use crate::report::Report;
use crate::{config_for, f3, print_row, suite_all, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};

/// Runs and prints the Figure 7 study.
pub fn run(plan: &RunPlan, report: &mut Report) {
    report.banner("Fig 7", "Bandwidth-Aware Bypass speedup", plan);
    let suite = suite_all();
    let cfgs = [
        config_for(DesignKind::Alloy, BearFeatures::none(), plan),
        config_for(DesignKind::Alloy, BearFeatures::bab(), plan),
    ];
    let results = run_matrix(&cfgs, &suite);
    let (base, bab) = (&results[0], &results[1]);
    let spd = speedups(&suite, bab, base);
    report.add_suite("Alloy", base, None);
    report.add_suite("BAB", bab, Some(&spd));
    print_row(
        "workload",
        ["speedup", "hit%b", "hit%BAB"].map(String::from).as_ref(),
    );
    for (i, w) in suite.iter().enumerate() {
        if w.is_rate {
            print_row(
                &w.name,
                &[
                    f3(spd[i]),
                    f3(base[i].l4.hit_rate * 100.0),
                    f3(bab[i].l4.hit_rate * 100.0),
                ],
            );
        }
    }
    let (r, m, a) = rate_mix_all(&suite, &spd);
    report.add_scalar("gmean_rate", r);
    report.add_scalar("gmean_mix", m);
    report.add_scalar("gmean_all", a);
    println!("gmean speedup: RATE {r:.3}  MIX {m:.3}  ALL {a:.3}");
    let hb: f64 = base.iter().map(|s| s.l4.hit_rate).sum::<f64>() / base.len() as f64;
    let hx: f64 = bab.iter().map(|s| s.l4.hit_rate).sum::<f64>() / bab.len() as f64;
    report.add_scalar("mean_hit_rate.Alloy", hb);
    report.add_scalar("mean_hit_rate.BAB", hx);
    println!(
        "mean hit rate: baseline {:.1}%  BAB {:.1}%",
        hb * 100.0,
        hx * 100.0
    );
}
