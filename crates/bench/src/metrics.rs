//! Campaign-side metrics registry: `--metrics-out` plumbing.
//!
//! Mirrors [`crate::telemetry`]'s seam: a process-wide active
//! [`Registry`] is armed by the campaign driver ([`set_active`]) and fed
//! transparently by `try_run_one` — each freshly simulated cell records
//! its bandwidth-attribution decomposition (per-category cache bytes
//! from the ledger-backed [`BloatBreakdown`]), memory bytes, and bloat
//! factor. The driver dumps the registry's stable JSON at campaign end
//! via [`write_active`].
//!
//! Observability-only by construction: nothing here touches `RunStats`
//! or the report files, so a campaign with no `--metrics-out` stays
//! byte-identical (the double-gate guard test in `tests/telemetry.rs`
//! pins this for an *armed* registry too).
//!
//! [`BloatBreakdown`]: bear_core::metrics::BloatBreakdown

use bear_core::config::SystemConfig;
use bear_core::metrics::RunStats;
use bear_telemetry::Registry;
use bear_workloads::Workload;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The campaign-wide active registry, consulted by `try_run_one`.
static ACTIVE: Mutex<Option<Registry>> = Mutex::new(None);

/// Activates (or, with `None`, deactivates) metrics collection for
/// subsequently simulated cells.
pub fn set_active(registry: Option<Registry>) {
    *ACTIVE.lock().unwrap_or_else(|e| e.into_inner()) = registry;
}

/// A clone of the active registry, if one is armed.
pub fn active() -> Option<Registry> {
    ACTIVE.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Records one freshly simulated cell into the active registry (no-op
/// when none is armed): per-category attributed cache bytes, memory
/// bytes, bloat factor, and a cell counter, all labelled by design and
/// workload.
pub(crate) fn record_cell(cfg: &SystemConfig, workload: &Workload, stats: &RunStats) {
    let Some(reg) = active() else {
        return;
    };
    let design = cfg.design.label();
    let workload = workload.name.as_str();
    reg.set_help("bear_cells_total", "Cells simulated by this campaign");
    reg.counter("bear_cells_total", &[("design", design)]).inc();
    reg.set_help(
        "bear_cell_cache_bytes_total",
        "DRAM-cache bytes attributed per bloat category",
    );
    for (key, &bytes) in bear_telemetry::CACHE_BYTE_KEYS
        .iter()
        .zip(&stats.bloat.bytes)
    {
        reg.counter(
            "bear_cell_cache_bytes_total",
            &[
                ("design", design),
                ("workload", workload),
                ("category", key),
            ],
        )
        .add(bytes);
    }
    reg.set_help("bear_cell_mem_bytes_total", "Main-memory bytes moved");
    reg.counter(
        "bear_cell_mem_bytes_total",
        &[("design", design), ("workload", workload)],
    )
    .add(stats.mem_bytes);
    reg.set_help(
        "bear_cell_bloat_factor",
        "Cache bytes moved per useful byte delivered",
    );
    reg.gauge(
        "bear_cell_bloat_factor",
        &[("design", design), ("workload", workload)],
    )
    .set(stats.bloat.factor());
}

/// Writes the active registry's stable JSON dump to `path`, atomically
/// (tmp → rename). No-op returning `path` when no registry is armed.
///
/// # Errors
///
/// Propagates the underlying filesystem error; callers treat metrics
/// persistence as best-effort.
pub fn write_active(path: &Path) -> std::io::Result<PathBuf> {
    let Some(reg) = active() else {
        return Ok(path.to_path_buf());
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension("json.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(reg.to_json().as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(path.to_path_buf())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Json;
    use bear_core::config::DesignKind;
    use bear_core::metrics::RunStats;

    /// Serializes tests that flip the process-global [`ACTIVE`] seam.
    static SEAM: Mutex<()> = Mutex::new(());

    fn sample_stats() -> RunStats {
        let mut stats = RunStats::default();
        stats.bloat.bytes[0] = 640;
        stats.bloat.bytes[2] = 320;
        stats.bloat.useful_lines = 10;
        stats.mem_bytes = 128;
        stats
    }

    #[test]
    fn record_cell_is_inert_without_a_registry() {
        let _guard = SEAM.lock().unwrap_or_else(|e| e.into_inner());
        set_active(None);
        let cfg = SystemConfig::paper_baseline(DesignKind::Alloy);
        let workload = bear_workloads::rate_workloads().remove(0);
        record_cell(&cfg, &workload, &sample_stats());
        assert!(active().is_none());
    }

    #[test]
    fn record_cell_attributes_bytes_and_dump_parses() {
        let _guard = SEAM.lock().unwrap_or_else(|e| e.into_inner());
        let reg = Registry::new();
        set_active(Some(reg.clone()));
        let cfg = SystemConfig::paper_baseline(DesignKind::Alloy);
        let workload = bear_workloads::rate_workloads().remove(0);
        record_cell(&cfg, &workload, &sample_stats());
        set_active(None);
        let hit = reg.counter(
            "bear_cell_cache_bytes_total",
            &[
                ("design", cfg.design.label()),
                ("workload", &workload.name),
                ("category", "hit"),
            ],
        );
        assert_eq!(hit.get(), 640);
        let dump = reg.to_json();
        let doc = Json::parse(&dump).expect("dump parses");
        let metrics = doc.get("metrics").and_then(Json::as_arr).expect("metrics");
        assert!(!metrics.is_empty());
        // Write + read back through the atomic path.
        let path = std::env::temp_dir().join(format!("bear_metrics_{}.json", std::process::id()));
        set_active(Some(reg));
        write_active(&path).expect("write dump");
        set_active(None);
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text, dump);
        std::fs::remove_file(&path).ok();
    }
}
