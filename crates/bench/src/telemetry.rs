//! Campaign-side telemetry sink: per-cell JSONL time series on disk.
//!
//! The simulator produces telemetry (see `bear_core::telemetry`); this
//! module decides *whether* a campaign collects it and *where* it lands.
//! Mirroring [`crate::checkpoint`], a process-wide active sink is set by
//! the campaign driver ([`set_active`]) and consulted transparently by
//! `try_run_one`: when a sink is active, every freshly simulated cell is
//! armed with [`TelemetryConfig::sampling`] and its windowed samples are
//! written to
//!
//! ```text
//! DIR/telemetry/<cell_stem>.jsonl     one JSON object per sample window
//! ```
//!
//! where `<cell_stem>` is the same `<design>-<workload>-<hash>` stem the
//! checkpoint store uses, so a cell's time series and its checkpointed
//! stats correlate by filename.
//!
//! # Resume semantics
//!
//! Checkpoint-cached cells return from `try_run_one` *before* the sink is
//! consulted, so a resumed campaign never re-arms or re-writes telemetry
//! for a finished cell: its `.jsonl` from the original run stays intact,
//! with no duplicated or torn windows. Files are written with the same
//! tmp → rename protocol as checkpoints, so an interrupt mid-write leaves
//! an ignorable `.tmp`, never a half sample.
//!
//! With no active sink (the default), cells run with
//! [`TelemetryConfig::Off`] and are byte-identical to a build without the
//! feature — the `telemetry_off_is_free` guard test pins this.

use crate::checkpoint::cell_stem;
use bear_core::config::SystemConfig;
use bear_core::system::System;
use bear_telemetry::{Sample, TelemetryConfig, TelemetryOptions};
use bear_workloads::Workload;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Destination and options for campaign telemetry collection.
#[derive(Debug, Clone)]
pub struct TelemetrySink {
    dir: PathBuf,
    opts: TelemetryOptions,
}

impl TelemetrySink {
    /// Sink writing sampling-only telemetry under `OUT_DIR/telemetry/`
    /// with the given window (`None` → the default window).
    pub fn new(out_dir: &Path, sample_window: Option<u64>) -> TelemetrySink {
        let mut opts = TelemetryOptions::default();
        if let Some(w) = sample_window {
            opts.sample_window = w;
        }
        TelemetrySink {
            dir: out_dir.join("telemetry"),
            opts,
        }
    }

    /// The telemetry configuration cells should be armed with.
    pub fn config(&self) -> TelemetryConfig {
        TelemetryConfig::On(self.opts.clone())
    }

    /// Writes one cell's samples as JSONL, atomically (tmp → rename).
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error; callers treat
    /// telemetry persistence as best-effort.
    pub fn write(
        &self,
        cfg: &SystemConfig,
        workload: &Workload,
        samples: &[Sample],
    ) -> std::io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let path = self.dir.join(format!("{}.jsonl", cell_stem(cfg, workload)));
        let tmp = path.with_extension("jsonl.tmp");
        {
            let mut f = File::create(&tmp)?;
            for s in samples {
                f.write_all(s.to_json_line().as_bytes())?;
                f.write_all(b"\n")?;
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

/// The campaign-wide active sink, consulted by `try_run_one`. `None`
/// (the default) leaves every cell's telemetry off.
static ACTIVE: Mutex<Option<TelemetrySink>> = Mutex::new(None);

/// Activates (or, with `None`, deactivates) telemetry collection for
/// subsequently simulated cells.
pub fn set_active(sink: Option<TelemetrySink>) {
    *ACTIVE.lock().expect("telemetry sink poisoned") = sink;
}

/// Arms a freshly built system when a sink is active.
pub(crate) fn arm_active(sys: &mut System) {
    if let Some(sink) = ACTIVE.lock().expect("telemetry sink poisoned").as_ref() {
        sys.set_telemetry(sink.config());
    }
}

/// Drains a finished cell's telemetry into the active sink, if any.
/// Write errors degrade to a warning — telemetry must never fail a
/// finished simulation.
pub(crate) fn write_active(cfg: &SystemConfig, workload: &Workload, sys: &mut System) {
    let sink = {
        let guard = ACTIVE.lock().expect("telemetry sink poisoned");
        match guard.as_ref() {
            Some(sink) => sink.clone(),
            None => return,
        }
    };
    let Some(report) = sys.take_telemetry() else {
        return;
    };
    if let Err(e) = sink.write(cfg, workload, &report.samples) {
        eprintln!(
            "[warning: failed to write telemetry for {} × {}: {e}]",
            cfg.design.label(),
            workload.name
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bear_core::config::DesignKind;

    #[test]
    fn sink_writes_one_line_per_sample() {
        let dir = std::env::temp_dir().join(format!("bear_telem_sink_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        let cfg = SystemConfig::paper_baseline(DesignKind::Alloy);
        let workload = bear_workloads::rate_workloads().remove(0);
        let samples = vec![
            Sample {
                window: 0,
                start_cycle: 0,
                end_cycle: 100,
                ..Default::default()
            },
            Sample {
                window: 1,
                start_cycle: 100,
                end_cycle: 200,
                ..Default::default()
            },
        ];
        let sink = TelemetrySink::new(&dir, Some(100));
        let path = sink.write(&cfg, &workload, &samples).expect("write jsonl");
        let text = fs::read_to_string(&path).expect("read back");
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            crate::report::Json::parse(line).expect("each line is valid JSON");
        }
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("Alloy"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn window_override_reaches_the_config() {
        let sink = TelemetrySink::new(Path::new("/tmp/x"), Some(1234));
        let TelemetryConfig::On(opts) = sink.config() else {
            panic!("sink config must be On");
        };
        assert_eq!(opts.sample_window, 1234);
        assert!(!opts.trace, "campaign sink is sampling-only");
        assert!(!opts.profile, "campaign sink is sampling-only");
    }
}
