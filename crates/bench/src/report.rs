//! Machine-readable experiment reports.
//!
//! Every experiment module, in addition to its human-readable tables on
//! stdout, records its raw results into a [`Report`]: one row per
//! simulated (configuration, workload) cell carrying the full
//! [`RunStats`], the Bloat Factor, and the speedup versus that
//! experiment's baseline, plus a flat map of headline scalars (geometric
//! means, storage bytes, …). Passing `--out DIR` to any experiment binary
//! serializes the report as `DIR/<experiment>.json`, so result
//! trajectories can be generated and diffed run-over-run.
//!
//! The schema is a single shape shared by all experiments (documented
//! with a worked example in `EXPERIMENTS.md`):
//!
//! ```json
//! {
//!   "experiment": "fig07",
//!   "title": "Bandwidth-Aware Bypass speedup",
//!   "plan": {"warmup": 1500000, "measure": 1000000, "scale_shift": 9, "quick": false},
//!   "rows": [
//!     {"config": "BAB", "workload": "rate:mcf", "speedup": 0.987,
//!      "bloat_factor": 4.1, "stats": { ...every RunStats field... }},
//!     ...
//!   ],
//!   "failures": [
//!     {"config": "BEAR", "workload": "rate:mcf", "kind": "panic",
//!      "error": "worker thread panicked: ...", "attempts": 3},
//!     ...
//!   ],
//!   "scalars": {"gmean_all": 1.010, ...}
//! }
//! ```
//!
//! Serialization is hand-rolled (see [`Json`]) — the offline-first
//! contract of this workspace forbids registry dependencies, serde
//! included. Object keys keep insertion order, so serialized reports are
//! byte-stable for identical results.

use crate::{quick_mode, RunPlan};
use bear_core::metrics::RunStats;
use bear_core::traffic::BloatCategory;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A JSON value with order-preserving objects.
///
/// ```
/// use bear_bench::report::Json;
/// let v = Json::Obj(vec![
///     ("n".into(), Json::Num(1.5)),
///     ("s".into(), Json::Str("a\"b".into())),
/// ]);
/// assert_eq!(v.to_string(), r#"{"n":1.5,"s":"a\"b"}"#);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys serialize in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Unsigned integer helper (`u64` exceeding 2^53 loses precision in
    /// JSON numbers, so large counters serialize via their exact decimal
    /// representation — still a valid JSON number).
    pub fn uint(v: u64) -> Json {
        // All counters in this workspace fit f64's 53-bit mantissa in
        // practice, but go through the exact path to be safe.
        if v < (1u64 << 53) {
            Json::Num(v as f64)
        } else {
            Json::Str(v.to_string())
        }
    }

    fn escape(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        let pad = |out: &mut String, n: usize| {
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(n));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // `{}` on f64 is the shortest round-trip representation.
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => Self::escape(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    item.write(out, indent + 1, pretty);
                }
                if !items.is_empty() {
                    pad(out, indent);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    Self::escape(k, out);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, indent + 1, pretty);
                }
                if !fields.is_empty() {
                    pad(out, indent);
                }
                out.push('}');
            }
        }
    }

    /// Two-space-indented serialization (what report files use).
    pub fn to_string_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0, true);
        s
    }

    /// Parses a JSON document (checkpointed cells, prior reports).
    ///
    /// Object key order is preserved, so `parse` ∘ serialize is the
    /// identity on documents this module wrote.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first offending byte offset.
    ///
    /// ```
    /// use bear_bench::report::Json;
    /// let v = Json::parse(r#"{"a":[1,true,"x\n"],"b":null}"#).unwrap();
    /// assert_eq!(v.to_string(), r#"{"a":[1,true,"x\n"],"b":null}"#);
    /// assert!(Json::parse("{oops").is_err());
    /// ```
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Unsigned-integer value: an exactly-integral number, or the string
    /// fallback [`Json::uint`] uses above 2^53.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v < (1u64 << 53) as f64 => {
                Some(*v as u64)
            }
            Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Recursive-descent parser over the subset of JSON [`Json`] emits (which
/// is all of JSON minus non-integer `\u` surrogate abuse).
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            None => Err("unexpected end of input".into()),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    if self.bytes.get(self.pos) == Some(&b',') {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.expect(b']')?;
                Ok(Json::Arr(items))
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    self.skip_ws();
                    if self.bytes.get(self.pos) == Some(&b',') {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.expect(b'}')?;
                Ok(Json::Obj(fields))
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(
                                char::from_u32(code).ok_or("\\u escape is not a scalar value")?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

impl std::fmt::Display for Json {
    /// Compact (single-line) serialization.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.write(&mut s, 0, false);
        f.write_str(&s)
    }
}

/// One simulated cell of an experiment's (config × workload) grid.
#[derive(Debug, Clone)]
pub struct ReportRow {
    /// Configuration label (e.g. `"Alloy"`, `"BAB+DCP"`, `"BEAR@4x"`).
    pub config: String,
    /// Workload name (from [`RunStats::workload`]).
    pub workload: String,
    /// Speedup versus the experiment's baseline, when one exists.
    pub speedup: Option<f64>,
    /// Degradation marker: `None` for a healthy cell (the field is then
    /// **omitted** from the serialized row, keeping healthy reports
    /// byte-identical to pre-supervision ones), `Some("failed:<kind>")`
    /// for a quarantined placeholder (see
    /// [`Report::mark_degraded_rows`]).
    pub status: Option<String>,
    /// Full statistics of the run.
    pub stats: RunStats,
}

/// A cell that failed to produce statistics (panicked, stalled, timed
/// out, or was misconfigured) even after the supervisor's retries.
/// Failed cells degrade to zeroed placeholder rows in the tables; the
/// failure itself is recorded here so the report says *why*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureRow {
    /// Configuration (design) label of the failed cell.
    pub config: String,
    /// Workload name of the failed cell.
    pub workload: String,
    /// Error class (`"panic"`, `"stalled"`, `"timeout"`, `"config"`, …).
    pub kind: String,
    /// Full error message.
    pub error: String,
    /// Attempts the supervisor spent before quarantining the cell
    /// (1 = permanent failure, no retry was warranted).
    pub attempts: usize,
}

/// A structured record of one experiment: rows plus headline scalars.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment id — also the output file stem (e.g. `"fig07"`).
    pub experiment: String,
    /// Human-readable title (recorded by [`Report::banner`]).
    pub title: String,
    /// One row per simulated (config, workload) cell, in execution order.
    pub rows: Vec<ReportRow>,
    /// Cells that failed instead of producing a row.
    pub failures: Vec<FailureRow>,
    /// Headline aggregates: geometric means, storage bytes, etc.
    pub scalars: Vec<(String, f64)>,
}

impl Report {
    /// Creates an empty report for `experiment`.
    pub fn new(experiment: &str) -> Self {
        Report {
            experiment: experiment.to_string(),
            ..Default::default()
        }
    }

    /// Prints the standard experiment header and records the title.
    pub fn banner(&mut self, id: &str, title: &str, plan: &RunPlan) {
        self.title = title.to_string();
        println!("=== {id}: {title} ===");
        println!(
            "(scale 1/{}, warmup {}, measure {} cycles{})",
            1u64 << plan.scale_shift,
            plan.warmup,
            plan.measure,
            if quick_mode() { ", QUICK mode" } else { "" }
        );
    }

    /// Records one run under configuration label `config`.
    pub fn add_run(&mut self, config: &str, stats: &RunStats, speedup: Option<f64>) {
        self.rows.push(ReportRow {
            config: config.to_string(),
            workload: stats.workload.clone(),
            speedup,
            status: None,
            stats: stats.clone(),
        });
    }

    /// Records a whole suite run under one configuration label, with
    /// optional per-workload speedups (same order as `stats`).
    pub fn add_suite(&mut self, config: &str, stats: &[RunStats], speedups: Option<&[f64]>) {
        for (i, s) in stats.iter().enumerate() {
            self.add_run(config, s, speedups.map(|v| v[i]));
        }
    }

    /// Records a headline scalar (geometric mean, byte count, …).
    pub fn add_scalar(&mut self, key: &str, value: f64) {
        self.scalars.push((key.to_string(), value));
    }

    /// Records a failed cell.
    pub fn add_failure(&mut self, row: FailureRow) {
        self.failures.push(row);
    }

    /// Tags every placeholder row left by a quarantined cell with a
    /// `status` of `"failed:<kind>"`, so graceful degradation is visible
    /// *in the row* and consumers never mistake a zeroed placeholder for
    /// a real result. A failure matches a placeholder by workload plus
    /// config label — the supervisor records the cell's *design* label,
    /// while experiments name rows freely ("Alloy" vs "BAB" for the same
    /// design), so the row's `stats.design` (which placeholders inherit
    /// from their config) is accepted alongside the row label. A no-op
    /// when nothing failed — healthy reports keep their exact
    /// pre-supervision bytes.
    pub fn mark_degraded_rows(&mut self) {
        if self.failures.is_empty() {
            return;
        }
        for row in &mut self.rows {
            let placeholder =
                row.stats.cycles == 0 && row.stats.ipc_per_core.iter().all(|&v| v == 0.0);
            if !placeholder {
                continue;
            }
            let kind = self
                .failures
                .iter()
                .find(|f| {
                    f.workload == row.workload
                        && (f.config == row.config || f.config == row.stats.design)
                })
                .map(|f| f.kind.clone());
            if let Some(kind) = kind {
                row.status = Some(format!("failed:{kind}"));
            }
        }
    }

    /// The report as a JSON document.
    pub fn to_json(&self, plan: &RunPlan) -> Json {
        Json::Obj(vec![
            ("experiment".into(), Json::Str(self.experiment.clone())),
            ("title".into(), Json::Str(self.title.clone())),
            (
                "plan".into(),
                Json::Obj(vec![
                    ("warmup".into(), Json::uint(plan.warmup)),
                    ("measure".into(), Json::uint(plan.measure)),
                    ("scale_shift".into(), Json::uint(plan.scale_shift as u64)),
                    ("quick".into(), Json::Bool(quick_mode())),
                ]),
            ),
            (
                "rows".into(),
                Json::Arr(self.rows.iter().map(row_to_json).collect()),
            ),
            (
                "failures".into(),
                Json::Arr(
                    self.failures
                        .iter()
                        .map(|f| {
                            Json::Obj(vec![
                                ("config".into(), Json::Str(f.config.clone())),
                                ("workload".into(), Json::Str(f.workload.clone())),
                                ("kind".into(), Json::Str(f.kind.clone())),
                                ("error".into(), Json::Str(f.error.clone())),
                                ("attempts".into(), Json::uint(f.attempts as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "scalars".into(),
                Json::Obj(
                    self.scalars
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes `DIR/<experiment>.json` (creating `DIR` if needed) and
    /// returns the path.
    ///
    /// The write is atomic (temp file, fsync, rename): however the
    /// campaign dies — panic, OOM-kill, a chaos kill point — a report
    /// file is either the previous complete document or the new complete
    /// document, never a torn half-write.
    pub fn write(&self, dir: &Path, plan: &RunPlan) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.experiment));
        let tmp = dir.join(format!("{}.json.tmp", self.experiment));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_json(plan).to_string_pretty().as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

/// Serializes every [`RunStats`] field except `workload` (the "stats"
/// object of a row — `workload` lives one level up, next to `config`).
///
/// Paired with [`stats_from_json`]: numbers use `f64`'s shortest
/// round-trip `Display` and [`Json::uint`]'s exact path, so
/// serialize → [`Json::parse`] → deserialize reproduces the input
/// bit-for-bit. Checkpointed campaign cells rely on that for
/// byte-identical resumed reports.
pub fn stats_to_json(s: &RunStats) -> Json {
    let l4 = &s.l4;
    let bloat_bytes: Vec<(String, Json)> = BloatCategory::ALL
        .iter()
        .map(|&c| (c.label().to_string(), Json::uint(s.bloat.bytes[c as usize])))
        .collect();
    Json::Obj(vec![
        ("design".into(), Json::Str(s.design.clone())),
        ("cycles".into(), Json::uint(s.cycles)),
        (
            "insts_per_core".into(),
            Json::Arr(s.insts_per_core.iter().map(|&v| Json::uint(v)).collect()),
        ),
        (
            "ipc_per_core".into(),
            Json::Arr(s.ipc_per_core.iter().map(|&v| Json::Num(v)).collect()),
        ),
        (
            "l4".into(),
            Json::Obj(vec![
                ("read_lookups".into(), Json::uint(l4.read_lookups)),
                ("read_hits".into(), Json::uint(l4.read_hits)),
                ("hit_rate".into(), Json::Num(l4.hit_rate)),
                ("wb_hit_rate".into(), Json::Num(l4.wb_hit_rate)),
                ("hit_latency".into(), Json::Num(l4.hit_latency)),
                ("miss_latency".into(), Json::Num(l4.miss_latency)),
                ("avg_latency".into(), Json::Num(l4.avg_latency)),
                ("fills".into(), Json::uint(l4.fills)),
                ("bypasses".into(), Json::uint(l4.bypasses)),
                (
                    "miss_probes_avoided".into(),
                    Json::uint(l4.miss_probes_avoided),
                ),
                ("wb_probes_avoided".into(), Json::uint(l4.wb_probes_avoided)),
                ("parallel_squashed".into(), Json::uint(l4.parallel_squashed)),
            ]),
        ),
        (
            "bloat".into(),
            Json::Obj(vec![
                ("bytes".into(), Json::Obj(bloat_bytes)),
                ("useful_lines".into(), Json::uint(s.bloat.useful_lines)),
            ]),
        ),
        ("l3_hit_rate".into(), Json::Num(s.l3_hit_rate)),
        (
            "cache_read_queue_latency".into(),
            Json::Num(s.cache_read_queue_latency),
        ),
        ("mem_bytes".into(), Json::uint(s.mem_bytes)),
    ])
}

/// Reconstructs [`RunStats`] from a [`stats_to_json`] object plus the
/// externally-stored workload name.
///
/// # Errors
///
/// Names the first missing or ill-typed field. Callers treating the JSON
/// as a cache (checkpoint cells) should treat an error as "absent" and
/// re-run the cell.
pub fn stats_from_json(workload: &str, v: &Json) -> Result<RunStats, String> {
    fn field<'j>(v: &'j Json, key: &str) -> Result<&'j Json, String> {
        v.get(key).ok_or_else(|| format!("missing field `{key}`"))
    }
    fn f64_of(v: &Json, key: &str) -> Result<f64, String> {
        field(v, key)?
            .as_f64()
            .ok_or_else(|| format!("field `{key}` is not a number"))
    }
    fn u64_of(v: &Json, key: &str) -> Result<u64, String> {
        field(v, key)?
            .as_u64()
            .ok_or_else(|| format!("field `{key}` is not an unsigned integer"))
    }

    let mut s = RunStats {
        workload: workload.to_string(),
        design: field(v, "design")?
            .as_str()
            .ok_or("field `design` is not a string")?
            .to_string(),
        cycles: u64_of(v, "cycles")?,
        l3_hit_rate: f64_of(v, "l3_hit_rate")?,
        cache_read_queue_latency: f64_of(v, "cache_read_queue_latency")?,
        mem_bytes: u64_of(v, "mem_bytes")?,
        ..Default::default()
    };
    s.insts_per_core = field(v, "insts_per_core")?
        .as_arr()
        .ok_or("field `insts_per_core` is not an array")?
        .iter()
        .map(|item| item.as_u64().ok_or("bad entry in `insts_per_core`"))
        .collect::<Result<_, _>>()?;
    s.ipc_per_core = field(v, "ipc_per_core")?
        .as_arr()
        .ok_or("field `ipc_per_core` is not an array")?
        .iter()
        .map(|item| item.as_f64().ok_or("bad entry in `ipc_per_core`"))
        .collect::<Result<_, _>>()?;

    let l4 = field(v, "l4")?;
    s.l4.read_lookups = u64_of(l4, "read_lookups")?;
    s.l4.read_hits = u64_of(l4, "read_hits")?;
    s.l4.hit_rate = f64_of(l4, "hit_rate")?;
    s.l4.wb_hit_rate = f64_of(l4, "wb_hit_rate")?;
    s.l4.hit_latency = f64_of(l4, "hit_latency")?;
    s.l4.miss_latency = f64_of(l4, "miss_latency")?;
    s.l4.avg_latency = f64_of(l4, "avg_latency")?;
    s.l4.fills = u64_of(l4, "fills")?;
    s.l4.bypasses = u64_of(l4, "bypasses")?;
    s.l4.miss_probes_avoided = u64_of(l4, "miss_probes_avoided")?;
    s.l4.wb_probes_avoided = u64_of(l4, "wb_probes_avoided")?;
    s.l4.parallel_squashed = u64_of(l4, "parallel_squashed")?;

    let bloat = field(v, "bloat")?;
    let bytes = field(bloat, "bytes")?;
    for &c in BloatCategory::ALL.iter() {
        s.bloat.bytes[c as usize] = u64_of(bytes, c.label())?;
    }
    s.bloat.useful_lines = u64_of(bloat, "useful_lines")?;
    Ok(s)
}

fn row_to_json(row: &ReportRow) -> Json {
    let mut fields = vec![
        ("config".into(), Json::Str(row.config.clone())),
        ("workload".into(), Json::Str(row.workload.clone())),
        ("speedup".into(), row.speedup.map_or(Json::Null, Json::Num)),
    ];
    // Only degraded rows carry a status key: healthy reports stay
    // byte-identical to ones written before the supervision layer.
    if let Some(status) = &row.status {
        fields.push(("status".into(), Json::Str(status.clone())));
    }
    fields.push(("bloat_factor".into(), Json::Num(row.stats.bloat.factor())));
    fields.push(("stats".into(), stats_to_json(&row.stats)));
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_nests() {
        let v = Json::Obj(vec![
            ("a\n".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("b".into(), Json::Num(f64::NAN)),
        ]);
        assert_eq!(v.to_string(), r#"{"a\n":[null,true],"b":null}"#);
    }

    #[test]
    fn json_pretty_roundtrips_structure() {
        let v = Json::Obj(vec![("x".into(), Json::Arr(vec![Json::Num(1.0)]))]);
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  \"x\": [\n    1\n  ]\n"));
    }

    #[test]
    fn uint_is_exact_for_large_values() {
        assert_eq!(Json::uint(5).to_string(), "5");
        let big = (1u64 << 60) + 1;
        assert_eq!(Json::uint(big).to_string(), format!("\"{big}\""));
    }

    #[test]
    fn report_serializes_rows_and_scalars() {
        let plan = RunPlan {
            warmup: 10,
            measure: 20,
            scale_shift: 9,
        };
        let mut r = Report::new("figXX");
        let stats = RunStats {
            workload: "rate:mcf".into(),
            design: "Alloy".into(),
            cycles: 20,
            ipc_per_core: vec![0.5],
            ..Default::default()
        };
        r.add_run("Alloy", &stats, None);
        r.add_run("BEAR", &stats, Some(1.25));
        r.add_scalar("gmean_all", 1.25);
        let json = r.to_json(&plan).to_string();
        assert!(json.contains(r#""experiment":"figXX""#));
        assert!(json.contains(r#""workload":"rate:mcf""#));
        assert!(json.contains(r#""speedup":null"#));
        assert!(json.contains(r#""speedup":1.25"#));
        assert!(json.contains(r#""gmean_all":1.25"#));
        assert!(json.contains(r#""Hit":0"#), "bloat categories present");
    }

    #[test]
    fn parse_roundtrips_own_output() {
        let v = Json::Obj(vec![
            ("title".into(), Json::Str("tabs\tand \"quotes\"\n".into())),
            (
                "nums".into(),
                Json::Arr(vec![
                    Json::Num(0.1),
                    Json::Num(-3.25e-7),
                    Json::uint((1u64 << 60) + 7),
                ]),
            ),
            ("flag".into(), Json::Bool(false)),
            ("none".into(), Json::Null),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("empty_arr".into(), Json::Arr(vec![])),
        ]);
        for text in [v.to_string(), v.to_string_pretty()] {
            assert_eq!(Json::parse(&text).expect("parse"), v);
        }
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "\"unterminated", "{\"a\" 1}", "1 2", "nul"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_decodes_escapes() {
        let v = Json::parse(r#""aA\n\t\\\"\/""#).expect("parse");
        assert_eq!(v.as_str(), Some("aA\n\t\\\"/"));
    }

    #[test]
    fn stats_json_roundtrip_is_exact() {
        let mut stats = RunStats {
            workload: "rate:mcf".into(),
            design: "BEAR".into(),
            cycles: 123_456_789,
            insts_per_core: vec![7, (1u64 << 60) + 3, 0],
            ipc_per_core: vec![0.1, 1.0 / 3.0, 2.5e-11],
            l3_hit_rate: 0.12345678901234567,
            cache_read_queue_latency: 17.25,
            mem_bytes: (1u64 << 55) + 11,
            ..Default::default()
        };
        stats.l4.read_lookups = 42;
        stats.l4.read_hits = 19;
        stats.l4.hit_rate = 19.0 / 42.0;
        stats.l4.wb_hit_rate = 0.75;
        stats.l4.hit_latency = 51.5;
        stats.l4.miss_latency = 180.125;
        stats.l4.avg_latency = 99.0 + 1.0 / 7.0;
        stats.l4.fills = 23;
        stats.l4.bypasses = 9;
        stats.l4.miss_probes_avoided = 4;
        stats.l4.wb_probes_avoided = 2;
        stats.l4.parallel_squashed = 1;
        for (i, b) in stats.bloat.bytes.iter_mut().enumerate() {
            *b = (i as u64 + 1) * 80;
        }
        stats.bloat.useful_lines = 640;

        let text = stats_to_json(&stats).to_string_pretty();
        let parsed = Json::parse(&text).expect("parse");
        let back = stats_from_json("rate:mcf", &parsed).expect("deserialize");
        assert_eq!(back, stats);
        // And the re-serialization is byte-identical, which is what the
        // checkpoint/resume path ultimately depends on.
        assert_eq!(stats_to_json(&back).to_string_pretty(), text);
    }

    #[test]
    fn stats_from_json_rejects_missing_fields() {
        let stats = RunStats::default();
        let Json::Obj(mut fields) = stats_to_json(&stats) else {
            panic!("stats serialize to an object");
        };
        fields.retain(|(k, _)| k != "cycles");
        let err = stats_from_json("w", &Json::Obj(fields)).unwrap_err();
        assert!(err.contains("cycles"), "error was: {err}");
    }

    #[test]
    fn failures_serialize_into_reports() {
        let plan = RunPlan {
            warmup: 1,
            measure: 1,
            scale_shift: 9,
        };
        let mut r = Report::new("figXX");
        r.add_failure(FailureRow {
            config: "BEAR".into(),
            workload: "rate:mcf".into(),
            kind: "panic".into(),
            error: "worker thread panicked: boom".into(),
            attempts: 3,
        });
        let json = r.to_json(&plan).to_string();
        assert!(json.contains(r#""failures":[{"config":"BEAR""#));
        assert!(json.contains(r#""kind":"panic""#));
        assert!(json.contains(r#""attempts":3"#));
    }

    #[test]
    fn failure_rows_serialize_key_stably() {
        // The failures.json / report schema is an interface: key order
        // and shape must not drift with worker scheduling or refactors.
        let plan = RunPlan {
            warmup: 1,
            measure: 1,
            scale_shift: 9,
        };
        let mut r = Report::new("figXX");
        r.add_failure(FailureRow {
            config: "BAB".into(),
            workload: "mix:a".into(),
            kind: "timeout".into(),
            error: "cell BAB/mix:a exceeded its 100ms wall-clock deadline".into(),
            attempts: 1,
        });
        let json = r.to_json(&plan).to_string();
        assert!(json.contains(
            r#"{"config":"BAB","workload":"mix:a","kind":"timeout","error":"cell BAB/mix:a exceeded its 100ms wall-clock deadline","attempts":1}"#
        ));
    }

    #[test]
    fn degraded_rows_are_marked_and_healthy_rows_are_untouched() {
        let plan = RunPlan {
            warmup: 1,
            measure: 1,
            scale_shift: 9,
        };
        let healthy = RunStats {
            workload: "rate:mcf".into(),
            design: "Alloy".into(),
            cycles: 100,
            ipc_per_core: vec![0.5],
            ..Default::default()
        };
        let placeholder = RunStats {
            workload: "rate:lbm".into(),
            design: "Alloy".into(),
            cycles: 0,
            ipc_per_core: vec![0.0],
            ..Default::default()
        };
        let mut r = Report::new("figXX");
        r.add_run("Alloy", &healthy, None);
        r.add_run("Alloy", &placeholder, Some(0.0));

        // Without failures, marking is a strict no-op (byte identity).
        let before = r.to_json(&plan).to_string();
        r.mark_degraded_rows();
        assert_eq!(r.to_json(&plan).to_string(), before);
        assert!(!before.contains("status"), "healthy rows carry no status");

        r.add_failure(FailureRow {
            config: "Alloy".into(),
            workload: "rate:lbm".into(),
            kind: "panic".into(),
            error: "boom".into(),
            attempts: 3,
        });
        r.mark_degraded_rows();
        let json = r.to_json(&plan).to_string();
        assert!(json.contains(r#""workload":"rate:lbm","speedup":0,"status":"failed:panic""#));
        assert!(
            !json.contains(r#""workload":"rate:mcf","speedup":null,"status""#),
            "the healthy row must stay unmarked"
        );
    }

    #[test]
    fn report_write_creates_file() {
        let plan = RunPlan {
            warmup: 1,
            measure: 1,
            scale_shift: 9,
        };
        let dir = std::env::temp_dir().join(format!("bear_report_test_{}", std::process::id()));
        let mut r = Report::new("smoke");
        r.add_scalar("x", 1.0);
        let path = r.write(&dir, &plan).expect("write report");
        let body = std::fs::read_to_string(&path).expect("read back");
        assert!(body.starts_with('{') && body.ends_with("}\n"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
