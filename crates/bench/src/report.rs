//! Machine-readable experiment reports.
//!
//! Every experiment module, in addition to its human-readable tables on
//! stdout, records its raw results into a [`Report`]: one row per
//! simulated (configuration, workload) cell carrying the full
//! [`RunStats`], the Bloat Factor, and the speedup versus that
//! experiment's baseline, plus a flat map of headline scalars (geometric
//! means, storage bytes, …). Passing `--out DIR` to any experiment binary
//! serializes the report as `DIR/<experiment>.json`, so result
//! trajectories can be generated and diffed run-over-run.
//!
//! The schema is a single shape shared by all experiments (documented
//! with a worked example in `EXPERIMENTS.md`):
//!
//! ```json
//! {
//!   "experiment": "fig07",
//!   "title": "Bandwidth-Aware Bypass speedup",
//!   "plan": {"warmup": 1500000, "measure": 1000000, "scale_shift": 9, "quick": false},
//!   "rows": [
//!     {"config": "BAB", "workload": "rate:mcf", "speedup": 0.987,
//!      "bloat_factor": 4.1, "stats": { ...every RunStats field... }},
//!     ...
//!   ],
//!   "scalars": {"gmean_all": 1.010, ...}
//! }
//! ```
//!
//! Serialization is hand-rolled (see [`Json`]) — the offline-first
//! contract of this workspace forbids registry dependencies, serde
//! included. Object keys keep insertion order, so serialized reports are
//! byte-stable for identical results.

use crate::{quick_mode, RunPlan};
use bear_core::metrics::RunStats;
use bear_core::traffic::BloatCategory;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A JSON value with order-preserving objects.
///
/// ```
/// use bear_bench::report::Json;
/// let v = Json::Obj(vec![
///     ("n".into(), Json::Num(1.5)),
///     ("s".into(), Json::Str("a\"b".into())),
/// ]);
/// assert_eq!(v.to_string(), r#"{"n":1.5,"s":"a\"b"}"#);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys serialize in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Unsigned integer helper (`u64` exceeding 2^53 loses precision in
    /// JSON numbers, so large counters serialize via their exact decimal
    /// representation — still a valid JSON number).
    pub fn uint(v: u64) -> Json {
        // All counters in this workspace fit f64's 53-bit mantissa in
        // practice, but go through the exact path to be safe.
        if v < (1u64 << 53) {
            Json::Num(v as f64)
        } else {
            Json::Str(v.to_string())
        }
    }

    fn escape(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        let pad = |out: &mut String, n: usize| {
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(n));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // `{}` on f64 is the shortest round-trip representation.
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => Self::escape(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    item.write(out, indent + 1, pretty);
                }
                if !items.is_empty() {
                    pad(out, indent);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    Self::escape(k, out);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, indent + 1, pretty);
                }
                if !fields.is_empty() {
                    pad(out, indent);
                }
                out.push('}');
            }
        }
    }

    /// Two-space-indented serialization (what report files use).
    pub fn to_string_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0, true);
        s
    }
}

impl std::fmt::Display for Json {
    /// Compact (single-line) serialization.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.write(&mut s, 0, false);
        f.write_str(&s)
    }
}

/// One simulated cell of an experiment's (config × workload) grid.
#[derive(Debug, Clone)]
pub struct ReportRow {
    /// Configuration label (e.g. `"Alloy"`, `"BAB+DCP"`, `"BEAR@4x"`).
    pub config: String,
    /// Workload name (from [`RunStats::workload`]).
    pub workload: String,
    /// Speedup versus the experiment's baseline, when one exists.
    pub speedup: Option<f64>,
    /// Full statistics of the run.
    pub stats: RunStats,
}

/// A structured record of one experiment: rows plus headline scalars.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment id — also the output file stem (e.g. `"fig07"`).
    pub experiment: String,
    /// Human-readable title (recorded by [`Report::banner`]).
    pub title: String,
    /// One row per simulated (config, workload) cell, in execution order.
    pub rows: Vec<ReportRow>,
    /// Headline aggregates: geometric means, storage bytes, etc.
    pub scalars: Vec<(String, f64)>,
}

impl Report {
    /// Creates an empty report for `experiment`.
    pub fn new(experiment: &str) -> Self {
        Report {
            experiment: experiment.to_string(),
            ..Default::default()
        }
    }

    /// Prints the standard experiment header and records the title.
    pub fn banner(&mut self, id: &str, title: &str, plan: &RunPlan) {
        self.title = title.to_string();
        println!("=== {id}: {title} ===");
        println!(
            "(scale 1/{}, warmup {}, measure {} cycles{})",
            1u64 << plan.scale_shift,
            plan.warmup,
            plan.measure,
            if quick_mode() { ", QUICK mode" } else { "" }
        );
    }

    /// Records one run under configuration label `config`.
    pub fn add_run(&mut self, config: &str, stats: &RunStats, speedup: Option<f64>) {
        self.rows.push(ReportRow {
            config: config.to_string(),
            workload: stats.workload.clone(),
            speedup,
            stats: stats.clone(),
        });
    }

    /// Records a whole suite run under one configuration label, with
    /// optional per-workload speedups (same order as `stats`).
    pub fn add_suite(&mut self, config: &str, stats: &[RunStats], speedups: Option<&[f64]>) {
        for (i, s) in stats.iter().enumerate() {
            self.add_run(config, s, speedups.map(|v| v[i]));
        }
    }

    /// Records a headline scalar (geometric mean, byte count, …).
    pub fn add_scalar(&mut self, key: &str, value: f64) {
        self.scalars.push((key.to_string(), value));
    }

    /// The report as a JSON document.
    pub fn to_json(&self, plan: &RunPlan) -> Json {
        Json::Obj(vec![
            ("experiment".into(), Json::Str(self.experiment.clone())),
            ("title".into(), Json::Str(self.title.clone())),
            (
                "plan".into(),
                Json::Obj(vec![
                    ("warmup".into(), Json::uint(plan.warmup)),
                    ("measure".into(), Json::uint(plan.measure)),
                    ("scale_shift".into(), Json::uint(plan.scale_shift as u64)),
                    ("quick".into(), Json::Bool(quick_mode())),
                ]),
            ),
            (
                "rows".into(),
                Json::Arr(self.rows.iter().map(row_to_json).collect()),
            ),
            (
                "scalars".into(),
                Json::Obj(
                    self.scalars
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes `DIR/<experiment>.json` (creating `DIR` if needed) and
    /// returns the path.
    pub fn write(&self, dir: &Path, plan: &RunPlan) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.experiment));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json(plan).to_string_pretty().as_bytes())?;
        f.write_all(b"\n")?;
        Ok(path)
    }
}

/// Serializes every [`RunStats`] field (the "stats" object of a row).
fn stats_to_json(s: &RunStats) -> Json {
    let l4 = &s.l4;
    let bloat_bytes: Vec<(String, Json)> = BloatCategory::ALL
        .iter()
        .map(|&c| (c.label().to_string(), Json::uint(s.bloat.bytes[c as usize])))
        .collect();
    Json::Obj(vec![
        ("design".into(), Json::Str(s.design.clone())),
        ("cycles".into(), Json::uint(s.cycles)),
        (
            "insts_per_core".into(),
            Json::Arr(s.insts_per_core.iter().map(|&v| Json::uint(v)).collect()),
        ),
        (
            "ipc_per_core".into(),
            Json::Arr(s.ipc_per_core.iter().map(|&v| Json::Num(v)).collect()),
        ),
        (
            "l4".into(),
            Json::Obj(vec![
                ("read_lookups".into(), Json::uint(l4.read_lookups)),
                ("read_hits".into(), Json::uint(l4.read_hits)),
                ("hit_rate".into(), Json::Num(l4.hit_rate)),
                ("wb_hit_rate".into(), Json::Num(l4.wb_hit_rate)),
                ("hit_latency".into(), Json::Num(l4.hit_latency)),
                ("miss_latency".into(), Json::Num(l4.miss_latency)),
                ("avg_latency".into(), Json::Num(l4.avg_latency)),
                ("fills".into(), Json::uint(l4.fills)),
                ("bypasses".into(), Json::uint(l4.bypasses)),
                (
                    "miss_probes_avoided".into(),
                    Json::uint(l4.miss_probes_avoided),
                ),
                ("wb_probes_avoided".into(), Json::uint(l4.wb_probes_avoided)),
                ("parallel_squashed".into(), Json::uint(l4.parallel_squashed)),
            ]),
        ),
        (
            "bloat".into(),
            Json::Obj(vec![
                ("bytes".into(), Json::Obj(bloat_bytes)),
                ("useful_lines".into(), Json::uint(s.bloat.useful_lines)),
            ]),
        ),
        ("l3_hit_rate".into(), Json::Num(s.l3_hit_rate)),
        (
            "cache_read_queue_latency".into(),
            Json::Num(s.cache_read_queue_latency),
        ),
        ("mem_bytes".into(), Json::uint(s.mem_bytes)),
    ])
}

fn row_to_json(row: &ReportRow) -> Json {
    Json::Obj(vec![
        ("config".into(), Json::Str(row.config.clone())),
        ("workload".into(), Json::Str(row.workload.clone())),
        ("speedup".into(), row.speedup.map_or(Json::Null, Json::Num)),
        ("bloat_factor".into(), Json::Num(row.stats.bloat.factor())),
        ("stats".into(), stats_to_json(&row.stats)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_nests() {
        let v = Json::Obj(vec![
            ("a\n".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("b".into(), Json::Num(f64::NAN)),
        ]);
        assert_eq!(v.to_string(), r#"{"a\n":[null,true],"b":null}"#);
    }

    #[test]
    fn json_pretty_roundtrips_structure() {
        let v = Json::Obj(vec![("x".into(), Json::Arr(vec![Json::Num(1.0)]))]);
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  \"x\": [\n    1\n  ]\n"));
    }

    #[test]
    fn uint_is_exact_for_large_values() {
        assert_eq!(Json::uint(5).to_string(), "5");
        let big = (1u64 << 60) + 1;
        assert_eq!(Json::uint(big).to_string(), format!("\"{big}\""));
    }

    #[test]
    fn report_serializes_rows_and_scalars() {
        let plan = RunPlan {
            warmup: 10,
            measure: 20,
            scale_shift: 9,
        };
        let mut r = Report::new("figXX");
        let stats = RunStats {
            workload: "rate:mcf".into(),
            design: "Alloy".into(),
            cycles: 20,
            ipc_per_core: vec![0.5],
            ..Default::default()
        };
        r.add_run("Alloy", &stats, None);
        r.add_run("BEAR", &stats, Some(1.25));
        r.add_scalar("gmean_all", 1.25);
        let json = r.to_json(&plan).to_string();
        assert!(json.contains(r#""experiment":"figXX""#));
        assert!(json.contains(r#""workload":"rate:mcf""#));
        assert!(json.contains(r#""speedup":null"#));
        assert!(json.contains(r#""speedup":1.25"#));
        assert!(json.contains(r#""gmean_all":1.25"#));
        assert!(json.contains(r#""Hit":0"#), "bloat categories present");
    }

    #[test]
    fn report_write_creates_file() {
        let plan = RunPlan {
            warmup: 1,
            measure: 1,
            scale_shift: 9,
        };
        let dir = std::env::temp_dir().join(format!("bear_report_test_{}", std::process::id()));
        let mut r = Report::new("smoke");
        r.add_scalar("x", 1.0);
        let path = r.write(&dir, &plan).expect("write report");
        let body = std::fs::read_to_string(&path).expect("read back");
        assert!(body.starts_with('{') && body.ends_with("}\n"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
