//! Campaign supervision: deadlines, retry with deterministic backoff,
//! and quarantine of cells that exhaust their retries.
//!
//! PR 2's fault isolation records a failed cell once and abandons it.
//! For hour-scale campaigns (gigascale runs, the future campaign daemon)
//! that is not enough: a worker poisoned by a transient environmental
//! fault — a panic, a wedged host, a full disk — should be *retried*
//! before the cell is written off, and a cell that keeps failing should
//! be *quarantined* with enough context to reproduce it, without taking
//! the campaign down.
//!
//! The supervisor wraps every grid cell (see
//! [`run_cell`], called by [`crate::runner`]'s parallel map) in a retry
//! loop:
//!
//! 1. Each attempt may run under a wall-clock **deadline**
//!    (`BEAR_CELL_DEADLINE_MS`); an attempt that outlives it is declared
//!    [`SimError::Timeout`] — the harness-level escalation of the in-sim
//!    forward-progress watchdog, able to catch wedges the sim cannot see.
//! 2. A failed attempt is classified by [`SimError::is_transient`]:
//!    transient failures are retried up to `BEAR_MAX_RETRIES` times with
//!    **deterministic exponential backoff** (base `BEAR_RETRY_BASE_MS`
//!    doubled per retry, plus seeded jitter — reproducible, never
//!    thundering-herd synchronized); permanent failures (config,
//!    invariant, divergence) fail immediately, because they would fail
//!    identically on every attempt.
//! 3. A cell that succeeds after retries is recorded as **healed**; a
//!    cell that exhausts them is **quarantined**: a
//!    [`FailureRow`] (kind, attempts, message) degrades it to a
//!    placeholder in the report, and a [`SupervisionRow`] in the
//!    `failures.json` manifest carries the full recovery story — error
//!    kind, attempt count, checkpoint state, and a repro pointer.
//!
//! All supervision chatter goes to **stderr**; with no faults and no
//! chaos plan armed, stdout and every report byte are identical to an
//! unsupervised run.

use crate::report::{FailureRow, Json};
use crate::{chaos, checkpoint, runner, try_run_one};
use bear_core::config::SystemConfig;
use bear_core::metrics::RunStats;
use bear_sim::error::{RunOutcome, SimError};
use bear_sim::rng::SimRng;
use bear_telemetry::SelfProfiler;
use bear_workloads::Workload;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

/// Retry/deadline policy for one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Maximum retries after the first attempt (`BEAR_MAX_RETRIES`,
    /// default 2 — so up to three attempts per cell).
    pub max_retries: u32,
    /// Backoff base in milliseconds (`BEAR_RETRY_BASE_MS`, default 50):
    /// retry *n* sleeps `base * 2^(n-1)` plus jitter, capped at 10 s.
    pub backoff_base_ms: u64,
    /// Per-attempt wall-clock deadline (`BEAR_CELL_DEADLINE_MS`);
    /// `None` (the default) lets attempts run unbounded, like PR 2.
    pub deadline_ms: Option<u64>,
    /// Seed for the backoff jitter stream (mixed with the cell key, so
    /// different cells never sleep in lockstep).
    pub jitter_seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_retries: 2,
            backoff_base_ms: 50,
            deadline_ms: None,
            jitter_seed: 0xBEA2_5EED,
        }
    }
}

impl SupervisorConfig {
    /// The campaign policy, honoring the environment knobs
    /// (`BEAR_MAX_RETRIES`, `BEAR_RETRY_BASE_MS`, `BEAR_CELL_DEADLINE_MS`).
    ///
    /// # Panics
    ///
    /// Panics on malformed values — a typo must not silently disable
    /// retries for an hour-scale campaign.
    pub fn from_env() -> Self {
        let mut cfg = SupervisorConfig::default();
        if let Ok(v) = std::env::var("BEAR_MAX_RETRIES") {
            cfg.max_retries = v.parse().expect("BEAR_MAX_RETRIES must be an integer");
        }
        if let Ok(v) = std::env::var("BEAR_RETRY_BASE_MS") {
            cfg.backoff_base_ms = v.parse().expect("BEAR_RETRY_BASE_MS must be an integer");
        }
        if let Ok(v) = std::env::var("BEAR_CELL_DEADLINE_MS") {
            let ms: u64 = v.parse().expect("BEAR_CELL_DEADLINE_MS must be an integer");
            assert!(ms > 0, "BEAR_CELL_DEADLINE_MS must be positive");
            cfg.deadline_ms = Some(ms);
        }
        cfg
    }
}

/// How the supervisor disposed of a noteworthy cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Disposition {
    /// The cell failed at least once but a retry succeeded.
    Healed,
    /// The cell exhausted its retries (or failed permanently) and was
    /// written off; its report row is a placeholder.
    Quarantined,
    /// A fault was absorbed without affecting the cell's result (e.g. a
    /// checkpoint write failed but the in-memory result survived).
    Absorbed,
}

impl Disposition {
    /// Manifest section name.
    pub fn label(&self) -> &'static str {
        match self {
            Disposition::Healed => "healed",
            Disposition::Quarantined => "quarantined",
            Disposition::Absorbed => "absorbed",
        }
    }
}

/// One supervised-recovery event, as recorded in `failures.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisionRow {
    /// Experiment id (tagged by the campaign driver after each step).
    pub experiment: String,
    /// Configuration (design) label of the cell.
    pub config: String,
    /// Workload name of the cell.
    pub workload: String,
    /// What happened to the cell.
    pub disposition: Disposition,
    /// Error kind of the (last) failure (`"panic"`, `"timeout"`, …).
    pub kind: String,
    /// Full message of the (last) failure.
    pub error: String,
    /// Attempts consumed (1 = failed or healed without any retry).
    pub attempts: usize,
    /// Label of the injected chaos fault, when one caused this (absent
    /// for organic failures).
    pub chaos: Option<String>,
    /// Path of the cell's committed checkpoint, if one exists on disk.
    pub checkpoint: Option<String>,
    /// How to reproduce the cell in isolation.
    pub repro: String,
    /// Correlation id threading this event to telemetry lines and
    /// metrics (the daemon stamps its per-job trace id here; batch
    /// campaigns leave it absent and their manifests unchanged).
    pub trace: Option<String>,
}

impl SupervisionRow {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("experiment".into(), Json::Str(self.experiment.clone())),
            ("config".into(), Json::Str(self.config.clone())),
            ("workload".into(), Json::Str(self.workload.clone())),
            ("kind".into(), Json::Str(self.kind.clone())),
            ("error".into(), Json::Str(self.error.clone())),
            ("attempts".into(), Json::uint(self.attempts as u64)),
        ];
        fields.push((
            "chaos".into(),
            self.chaos.clone().map_or(Json::Null, Json::Str),
        ));
        fields.push((
            "checkpoint".into(),
            self.checkpoint.clone().map_or(Json::Null, Json::Str),
        ));
        fields.push(("repro".into(), Json::Str(self.repro.clone())));
        // Only daemon rows carry a trace; omitting the key otherwise
        // keeps batch-campaign manifests byte-identical to before.
        if let Some(trace) = &self.trace {
            fields.push(("trace".into(), Json::Str(trace.clone())));
        }
        Json::Obj(fields)
    }
}

/// Supervision events recorded since the campaign started (manifest
/// source) — appended by [`run_cell`]/[`record_absorbed`], tagged with
/// the current [`set_experiment`] label, snapshotted by
/// [`write_manifest`], drained by [`take_supervision`].
static MANIFEST: Mutex<Vec<SupervisionRow>> = Mutex::new(Vec::new());

/// Directory to persist `failures.json` into after every recorded event
/// (`None` keeps the manifest in-memory only). Incremental persistence
/// matters because the process can die *mid-experiment* — a chaos kill
/// point, a real OOM-kill — and recovery history must survive into the
/// resumed campaign's manifest.
static MANIFEST_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Experiment id to stamp onto subsequently recorded events (set by the
/// campaign driver at the start of each step).
static EXPERIMENT: Mutex<String> = Mutex::new(String::new());

/// Campaign-wide recovery event counters (`supervisor.retry` etc.),
/// reported at the end of a campaign via [`profile_report`].
static PROF: Mutex<SelfProfiler> = Mutex::new(SelfProfiler::new());

fn prof_bump(name: &'static str) {
    PROF.lock().expect("supervisor profile poisoned").bump(name);
}

/// Sets the experiment id stamped onto subsequently recorded supervision
/// events. The campaign driver calls this at the *start* of each step —
/// before any cell can fail — so even events whose process dies
/// mid-experiment carry the right id in the persisted manifest.
pub fn set_experiment(experiment: &str) {
    *EXPERIMENT.lock().expect("experiment label poisoned") = experiment.to_string();
}

/// Sets (or, with `None`, clears) the directory `failures.json` is
/// incrementally persisted into.
pub fn set_manifest_dir(dir: Option<&Path>) {
    *MANIFEST_DIR.lock().expect("manifest dir poisoned") = dir.map(Path::to_path_buf);
}

/// Records a supervision event (also used by the chaos layer for
/// absorbed checkpoint faults), stamping it with the current experiment
/// id and — when a manifest directory is set — immediately persisting
/// the updated `failures.json` so the event survives a process kill.
pub(crate) fn push_row(mut row: SupervisionRow) {
    if row.experiment.is_empty() {
        row.experiment = EXPERIMENT
            .lock()
            .expect("experiment label poisoned")
            .clone();
    }
    MANIFEST
        .lock()
        .expect("supervision manifest poisoned")
        .push(row);
    let dir = MANIFEST_DIR.lock().expect("manifest dir poisoned").clone();
    if let Some(dir) = dir {
        if let Err(e) = write_manifest(&dir) {
            eprintln!("[warning: failed to persist failures.json: {e}]");
        }
    }
}

/// Drains every recorded supervision event, sorted by (experiment,
/// config, workload, kind) — deterministic regardless of worker
/// completion order. Tests use this; the campaign manifest uses the
/// non-draining [`write_manifest`].
pub fn take_supervision() -> Vec<SupervisionRow> {
    let mut v = std::mem::take(&mut *MANIFEST.lock().expect("supervision manifest poisoned"));
    sort_rows(&mut v);
    v
}

fn sort_rows(v: &mut [SupervisionRow]) {
    // The full field tuple, so equal rows (a resumed campaign re-records
    // a quarantine identically) end up adjacent for dedup and the order
    // is completion-order- and worker-count-independent.
    let key = |r: &SupervisionRow| {
        (
            r.experiment.clone(),
            r.config.clone(),
            r.workload.clone(),
            r.kind.clone(),
            r.attempts,
            r.disposition,
            r.error.clone(),
            r.chaos.clone(),
            r.checkpoint.clone(),
            r.repro.clone(),
            r.trace.clone(),
        )
    };
    v.sort_by_key(key);
}

/// Parses one manifest entry back into a [`SupervisionRow`] (used to
/// merge a previous incarnation's persisted manifest). `None` for rows
/// that do not match the schema — a hand-edited manifest loses rows, it
/// never aborts a campaign.
fn row_from_json(v: &Json, disposition: Disposition) -> Option<SupervisionRow> {
    let s = |key: &str| v.get(key).and_then(Json::as_str).map(str::to_string);
    Some(SupervisionRow {
        experiment: s("experiment")?,
        config: s("config")?,
        workload: s("workload")?,
        disposition,
        kind: s("kind")?,
        error: s("error")?,
        attempts: v.get("attempts")?.as_u64()? as usize,
        chaos: s("chaos"),
        checkpoint: s("checkpoint"),
        repro: s("repro")?,
        trace: s("trace"),
    })
}

/// Rows persisted by a previous incarnation of this campaign (empty when
/// no manifest exists or it does not parse).
fn read_manifest_rows(dir: &Path) -> Vec<SupervisionRow> {
    let Ok(text) = std::fs::read_to_string(dir.join("failures.json")) else {
        return Vec::new();
    };
    let Ok(doc) = Json::parse(&text) else {
        return Vec::new();
    };
    let mut rows = Vec::new();
    for d in [
        Disposition::Quarantined,
        Disposition::Healed,
        Disposition::Absorbed,
    ] {
        if let Some(section) = doc.get(d.label()).and_then(Json::as_arr) {
            rows.extend(section.iter().filter_map(|v| row_from_json(v, d)));
        }
    }
    rows
}

/// A held advisory lock on a directory's `failures.json`.
///
/// The manifest merge is read-merge-write: two concurrent writers — two
/// daemon incarnations during a restart overlap, a campaign and a daemon
/// sharing an out directory — can each read the pre-merge manifest and
/// the loser's rows vanish, even though each individual write is an
/// atomic rename. The lock file serializes the whole merge. It is
/// advisory (plain `create_new`, no OS byte-range locks, per the
/// no-registry rule) and self-healing: a lock older than
/// [`ManifestLock::STALE_MS`] is presumed abandoned by a killed process
/// and broken.
struct ManifestLock {
    path: PathBuf,
}

impl ManifestLock {
    /// Age (ms) past which a lock file is presumed orphaned by a dead
    /// writer and broken. Merges take milliseconds; a kill -9 between
    /// acquire and drop is the only way a lock gets this old.
    const STALE_MS: u128 = 5_000;

    fn acquire(dir: &Path) -> std::io::Result<ManifestLock> {
        let path = dir.join("failures.json.lock");
        let deadline = std::time::Instant::now() + Duration::from_millis(10_000);
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(_) => return Ok(ManifestLock { path }),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let stale = path
                        .metadata()
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| t.elapsed().ok())
                        .is_some_and(|age| age.as_millis() > Self::STALE_MS);
                    if stale || std::time::Instant::now() > deadline {
                        // Orphaned (or wedged beyond any plausible merge):
                        // break it and retry the create_new race.
                        std::fs::remove_file(&path).ok();
                        continue;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for ManifestLock {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

/// Writes the machine-readable recovery manifest `DIR/failures.json`
/// (atomically: temp file, fsync, rename) from everything recorded so
/// far **merged with the manifest a previous incarnation of this
/// campaign persisted in `DIR`** — a killed-and-resumed campaign keeps
/// its full recovery history (identical rows recur deterministically
/// across incarnations and collapse in the dedup). Returns its path.
/// The schema:
///
/// ```json
/// {
///   "campaign": {"chaos_seed": 7, "max_retries": 2},
///   "quarantined": [{"experiment": "fig07", "config": "BAB",
///     "workload": "rate:mcf", "kind": "panic", "error": "...",
///     "attempts": 3, "chaos": "worker-panic",
///     "checkpoint": null, "repro": "..."}],
///   "healed": [...same shape...],
///   "absorbed": [...same shape...]
/// }
/// ```
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_manifest(dir: &Path) -> std::io::Result<PathBuf> {
    let rows = MANIFEST
        .lock()
        .expect("supervision manifest poisoned")
        .clone();
    merge_rows_into(dir, rows)
}

/// Merges `new_rows` into `DIR/failures.json` under the manifest's
/// advisory lock: existing rows are re-read *inside* the critical
/// section, so two concurrent writer processes both land their rows
/// instead of last-writer-wins dropping one side's. This is the write
/// path for everything that persists supervision history — the in-process
/// campaign manifest ([`write_manifest`]) and the daemon's per-job
/// recovery rows.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn merge_rows_into(dir: &Path, new_rows: Vec<SupervisionRow>) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let _lock = ManifestLock::acquire(dir)?;
    let mut rows = read_manifest_rows(dir);
    rows.extend(new_rows);
    sort_rows(&mut rows);
    rows.dedup();
    let scfg = SupervisorConfig::from_env();
    let section = |d: Disposition| {
        Json::Arr(
            rows.iter()
                .filter(|r| r.disposition == d)
                .map(SupervisionRow::to_json)
                .collect(),
        )
    };
    let doc = Json::Obj(vec![
        (
            "campaign".into(),
            Json::Obj(vec![
                (
                    "chaos_seed".into(),
                    chaos::armed_seed().map_or(Json::Null, Json::uint),
                ),
                ("max_retries".into(), Json::uint(scfg.max_retries as u64)),
            ]),
        ),
        ("quarantined".into(), section(Disposition::Quarantined)),
        ("healed".into(), section(Disposition::Healed)),
        ("absorbed".into(), section(Disposition::Absorbed)),
    ]);
    std::fs::create_dir_all(dir)?;
    let path = dir.join("failures.json");
    let tmp = dir.join("failures.json.tmp");
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(doc.to_string_pretty().as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Compact recovery summary for the campaign heartbeat (e.g.
/// `"2 retries, 1 quarantined"`), or `None` while the campaign is clean
/// — quiet campaigns keep their exact pre-supervision heartbeat lines.
pub fn recovery_note() -> Option<String> {
    let p = PROF.lock().expect("supervisor profile poisoned");
    let count = |name: &str| {
        p.rows()
            .find(|&(n, _, _)| n == name)
            .map_or(0, |(_, _, c)| c)
    };
    let parts: Vec<String> = [
        ("supervisor.retry", "retries"),
        ("supervisor.healed", "healed"),
        ("supervisor.quarantined", "quarantined"),
        ("supervisor.absorbed", "absorbed"),
    ]
    .iter()
    .filter_map(|(key, label)| {
        let c = count(key);
        (c > 0).then(|| format!("{c} {label}"))
    })
    .collect();
    (!parts.is_empty()).then(|| parts.join(", "))
}

/// A text report of the supervisor's recovery counters (retries, heals,
/// quarantines, absorbed faults), or `None` when nothing happened —
/// campaign drivers print it to stderr at the end of a run.
pub fn profile_report() -> Option<String> {
    let p = PROF.lock().expect("supervisor profile poisoned");
    if p.is_empty() {
        return None;
    }
    let mut rows: Vec<(&'static str, u64)> = p.rows().map(|(n, _ns, c)| (n, c)).collect();
    rows.sort();
    let body: Vec<String> = rows.iter().map(|(n, c)| format!("{n}={c}")).collect();
    Some(format!("supervision: {}", body.join(" ")))
}

/// Deterministic backoff before retry number `retry_no` (1-based) of the
/// cell identified by `key`: exponential in the retry number, plus
/// seeded jitter derived from (jitter seed, cell key, retry number) so
/// the schedule is reproducible but never synchronized across cells.
/// Capped at 10 s.
pub fn backoff_ms(scfg: &SupervisorConfig, key: u64, retry_no: u32) -> u64 {
    let base = scfg.backoff_base_ms;
    let exp = base.saturating_mul(1u64 << (retry_no.saturating_sub(1)).min(16));
    let jitter =
        SimRng::new(scfg.jitter_seed ^ key ^ (retry_no as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .next_below(base.max(1));
    exp.saturating_add(jitter).min(10_000)
}

/// Runs `f` to completion with panic capture, no deadline.
fn run_inline<R>(context: &str, f: impl FnOnce() -> RunOutcome<R>) -> RunOutcome<R> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
        .unwrap_or_else(|payload| Err(SimError::panicked(context, panic_message(&payload))))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` on a helper thread and waits at most `limit_ms`; an attempt
/// that outlives the deadline becomes [`SimError::Timeout`]. The
/// abandoned thread is detached — it finishes (or panics) into a
/// disconnected channel and its result is dropped; the supervisor has
/// already moved on.
fn run_deadlined<R, F>(context: &str, limit_ms: u64, f: F) -> RunOutcome<R>
where
    R: Send + 'static,
    F: FnOnce() -> RunOutcome<R> + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let ctx = context.to_string();
    std::thread::spawn(move || {
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
            .unwrap_or_else(|payload| Err(SimError::panicked(&ctx, panic_message(&payload))));
        tx.send(out).ok();
    });
    match rx.recv_timeout(Duration::from_millis(limit_ms)) {
        Ok(out) => out,
        Err(_) => Err(SimError::timeout(context, limit_ms)),
    }
}

/// Supervises repeated attempts of one unit of work: retry loop,
/// per-attempt deadline, chaos injection, and classification of the
/// final outcome. `attempt` receives the attempt number (0-based).
///
/// Returns the final outcome plus a [`SupervisionRow`] when anything
/// noteworthy happened (`None` for a clean first-attempt success).
/// Recording the row (manifest, failure log) is the caller's job so this
/// stays a pure, unit-testable state machine.
pub fn supervise_with<R, F>(
    scfg: &SupervisorConfig,
    key: u64,
    config_label: &str,
    workload_name: &str,
    repro: &str,
    attempt: F,
) -> (RunOutcome<R>, Option<SupervisionRow>)
where
    R: Send + 'static,
    F: Fn(u32) -> RunOutcome<R> + Clone + Send + Sync + 'static,
{
    let context = format!("{config_label}/{workload_name}");
    let mut first_error: Option<SimError> = None;
    let mut chaos_label: Option<String> = None;
    let mut n: u32 = 0;
    loop {
        let fault = chaos::attempt_fault(key, n);
        if let Some(f) = fault {
            chaos_label.get_or_insert_with(|| f.kind.label().to_string());
        }
        // A chaos stall carries its own (short) deadline so the injected
        // wedge is detected quickly; otherwise the campaign policy rules.
        let deadline = chaos::stall_deadline_ms(fault).or(scfg.deadline_ms);
        let outcome = {
            let attempt = attempt.clone();
            let run = move || {
                if let Some(e) = chaos::apply_attempt_fault(fault) {
                    return Err(e);
                }
                attempt(n)
            };
            match deadline {
                Some(ms) => run_deadlined(&context, ms, run),
                None => run_inline(&context, run),
            }
        };
        match outcome {
            Ok(r) => {
                let row = (n > 0).then(|| {
                    prof_bump("supervisor.healed");
                    let e = first_error.clone().expect("retried without an error");
                    eprintln!("[cell HEALED on attempt {}: {context}: {e}]", n + 1);
                    SupervisionRow {
                        experiment: String::new(),
                        config: config_label.to_string(),
                        workload: workload_name.to_string(),
                        disposition: Disposition::Healed,
                        kind: e.kind().to_string(),
                        error: e.to_string(),
                        attempts: n as usize + 1,
                        chaos: chaos_label.clone(),
                        checkpoint: None,
                        repro: repro.to_string(),
                        trace: None,
                    }
                });
                return (Ok(r), row);
            }
            Err(e) => {
                let e = e.in_context(context.clone());
                first_error.get_or_insert_with(|| e.clone());
                if e.is_transient() && n < scfg.max_retries {
                    n += 1;
                    let sleep = backoff_ms(scfg, key, n);
                    prof_bump("supervisor.retry");
                    eprintln!(
                        "[cell RETRY {n}/{}: {context}: {e}; backing off {sleep}ms]",
                        scfg.max_retries
                    );
                    std::thread::sleep(Duration::from_millis(sleep));
                    continue;
                }
                prof_bump("supervisor.quarantined");
                eprintln!(
                    "[cell QUARANTINED after {} attempt(s): {context}: {e}]",
                    n + 1
                );
                let row = SupervisionRow {
                    experiment: String::new(),
                    config: config_label.to_string(),
                    workload: workload_name.to_string(),
                    disposition: Disposition::Quarantined,
                    kind: e.kind().to_string(),
                    error: e.to_string(),
                    attempts: n as usize + 1,
                    chaos: chaos_label,
                    checkpoint: None,
                    repro: repro.to_string(),
                    trace: None,
                };
                return (Err(e), Some(row));
            }
        }
    }
}

/// Records an absorbed fault (one that never reached the cell's result,
/// e.g. a failed checkpoint write) in the manifest and counters.
pub(crate) fn record_absorbed(config: &str, workload: &str, kind: &str, chaos: &str, error: &str) {
    prof_bump("supervisor.absorbed");
    push_row(SupervisionRow {
        experiment: String::new(),
        config: config.to_string(),
        workload: workload.to_string(),
        disposition: Disposition::Absorbed,
        kind: kind.to_string(),
        error: error.to_string(),
        attempts: 0,
        chaos: Some(chaos.to_string()),
        checkpoint: None,
        repro: String::new(),
        trace: None,
    });
}

/// The supervised cell runner used by [`crate::runner::run_suite`] /
/// [`crate::runner::run_matrix`]: wraps [`try_run_one`] in the retry /
/// deadline / quarantine state machine, records recovery events, and —
/// on quarantine — the [`FailureRow`] that degrades the cell to a
/// placeholder in the report.
pub fn run_cell(cfg: &SystemConfig, workload: &Workload) -> RunOutcome<RunStats> {
    let scfg = SupervisorConfig::from_env();
    let key = checkpoint::cell_hash(cfg, workload);
    let stem = checkpoint::cell_stem(cfg, workload);
    let config_label = cfg.design.label().to_string();
    let workload_name = workload.name.clone();
    let repro = format!("cell {stem} (BEAR_WORKERS=1, same plan/env)");
    let attempt = {
        let cfg = cfg.clone();
        let workload = workload.clone();
        move |_n: u32| try_run_one(&cfg, &workload)
    };
    let (outcome, row) = supervise_with(&scfg, key, &config_label, &workload_name, &repro, attempt);
    if let Some(mut row) = row {
        row.checkpoint = checkpoint::active_committed_path(cfg, workload);
        if row.disposition == Disposition::Quarantined {
            runner::record_failure_row(FailureRow {
                config: row.config.clone(),
                workload: row.workload.clone(),
                kind: row.kind.clone(),
                error: row.error.clone(),
                attempts: row.attempts,
            });
        }
        push_row(row);
    }
    if outcome.is_ok() {
        chaos::on_cell_complete();
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn quiet() -> SupervisorConfig {
        SupervisorConfig {
            max_retries: 2,
            backoff_base_ms: 1,
            deadline_ms: None,
            jitter_seed: 7,
        }
    }

    #[test]
    fn clean_success_produces_no_row() {
        let (out, row) = supervise_with(&quiet(), 1, "A", "w", "r", |_| Ok(42u64));
        assert_eq!(out.unwrap(), 42);
        assert!(row.is_none(), "clean first-attempt success is silent");
    }

    #[test]
    fn transient_failures_heal_within_the_retry_budget() {
        let calls = Arc::new(AtomicU32::new(0));
        let c = calls.clone();
        let (out, row) = supervise_with(&quiet(), 2, "A", "w", "r", move |n| {
            c.fetch_add(1, Ordering::SeqCst);
            if n < 2 {
                Err(SimError::panicked("cell", "flaky"))
            } else {
                Ok(7u64)
            }
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        let row = row.expect("healed cells are recorded");
        assert_eq!(row.disposition, Disposition::Healed);
        assert_eq!(row.attempts, 3);
        assert_eq!(row.kind, "panic", "the first error is the one reported");
        assert!(row.error.contains("A/w"), "error is contextualized");
    }

    #[test]
    fn permanent_failures_are_not_retried() {
        let calls = Arc::new(AtomicU32::new(0));
        let c = calls.clone();
        let (out, row) = supervise_with(&quiet(), 3, "A", "w", "r", move |_| {
            c.fetch_add(1, Ordering::SeqCst);
            Err::<u64, _>(SimError::config("l3", "ways must be non-zero"))
        });
        assert_eq!(out.unwrap_err().kind(), "config");
        assert_eq!(calls.load(Ordering::SeqCst), 1, "no retry on config errors");
        let row = row.expect("quarantined");
        assert_eq!(row.disposition, Disposition::Quarantined);
        assert_eq!(row.attempts, 1);
    }

    #[test]
    fn exhausted_retries_quarantine_with_attempt_count() {
        let (out, row) = supervise_with(&quiet(), 4, "BAB", "rate:mcf", "r", |_| {
            Err::<u64, _>(SimError::panicked("cell", "always broken"))
        });
        assert_eq!(out.unwrap_err().kind(), "panic");
        let row = row.expect("quarantined");
        assert_eq!(row.disposition, Disposition::Quarantined);
        assert_eq!(row.attempts, 3, "initial attempt + max_retries");
        assert_eq!(row.workload, "rate:mcf");
    }

    #[test]
    fn deadline_converts_a_wedged_attempt_into_timeout_then_heals() {
        let scfg = SupervisorConfig {
            deadline_ms: Some(40),
            ..quiet()
        };
        let (out, row) = supervise_with(&scfg, 5, "A", "w", "r", |n| {
            if n == 0 {
                std::thread::sleep(Duration::from_millis(400));
            }
            Ok(1u64)
        });
        assert_eq!(out.unwrap(), 1);
        let row = row.expect("healed after the timeout");
        assert_eq!(row.kind, "timeout");
        assert!(row.error.contains("40ms"));
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let scfg = SupervisorConfig {
            backoff_base_ms: 50,
            jitter_seed: 99,
            ..quiet()
        };
        let b1 = backoff_ms(&scfg, 0xAB, 1);
        let b2 = backoff_ms(&scfg, 0xAB, 2);
        let b3 = backoff_ms(&scfg, 0xAB, 3);
        assert_eq!(b1, backoff_ms(&scfg, 0xAB, 1), "same inputs, same sleep");
        assert!((50..100).contains(&b1), "base + jitter < base: {b1}");
        assert!((100..150).contains(&b2), "doubled: {b2}");
        assert!((200..250).contains(&b3), "doubled again: {b3}");
        assert_ne!(
            backoff_ms(&scfg, 0xAB, 1),
            backoff_ms(&scfg, 0xCD, 1),
            "different cells jitter differently (for these keys)"
        );
        assert_eq!(backoff_ms(&scfg, 1, 30), 10_000, "hard 10s cap");
    }

    #[test]
    fn concurrent_manifest_merges_drop_no_rows() {
        // Regression: before the advisory lock, two writers could both
        // read the pre-merge manifest and the loser's rows vanished
        // (last-writer-wins), even though each rename was atomic.
        let dir = std::env::temp_dir().join(format!(
            "bear_manifest_merge_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let writers = 8;
        let handles: Vec<_> = (0..writers)
            .map(|i| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    let row = SupervisionRow {
                        experiment: "merge-race".into(),
                        config: format!("W{i}"),
                        workload: format!("w{i}"),
                        disposition: Disposition::Quarantined,
                        kind: "panic".into(),
                        error: format!("writer {i}"),
                        attempts: 1,
                        chaos: None,
                        checkpoint: None,
                        repro: String::new(),
                        trace: None,
                    };
                    merge_rows_into(&dir, vec![row]).expect("merge");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer thread");
        }
        let rows = read_manifest_rows(&dir);
        let mine: Vec<_> = rows
            .iter()
            .filter(|r| r.experiment == "merge-race")
            .collect();
        assert_eq!(
            mine.len(),
            writers,
            "every concurrent writer's row must survive the merge: {mine:?}"
        );
        assert!(
            !dir.join("failures.json.lock").exists(),
            "the lock is released after the merge"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_manifest_locks_are_broken() {
        let dir = std::env::temp_dir().join(format!("bear_manifest_stale_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // An orphaned lock from a killed writer, aged past the stale bound.
        let lock = dir.join("failures.json.lock");
        std::fs::write(&lock, "").unwrap();
        let old = std::time::SystemTime::now() - Duration::from_secs(60);
        // Not every test filesystem lets us backdate mtime; fall back to
        // exercising the wait-then-break path only when we can.
        let backdated = std::fs::File::open(&lock)
            .and_then(|f| f.set_modified(old))
            .is_ok();
        if backdated {
            let t0 = std::time::Instant::now();
            merge_rows_into(&dir, Vec::new()).expect("merge past stale lock");
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "a stale lock must be broken promptly"
            );
            assert!(dir.join("failures.json").exists());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_rows_sort_deterministically() {
        let mk = |cfg: &str, w: &str, kind: &str| SupervisionRow {
            experiment: "figX".into(),
            config: cfg.into(),
            workload: w.into(),
            disposition: Disposition::Quarantined,
            kind: kind.into(),
            error: String::new(),
            attempts: 1,
            chaos: None,
            checkpoint: None,
            repro: String::new(),
            trace: None,
        };
        let mut a = vec![
            mk("B", "w2", "panic"),
            mk("A", "w9", "io"),
            mk("A", "w1", "panic"),
        ];
        let mut b = a.clone();
        b.reverse();
        sort_rows(&mut a);
        sort_rows(&mut b);
        assert_eq!(a, b, "sort is insertion-order independent");
        assert_eq!(a[0].config, "A");
        assert_eq!(a[0].workload, "w1");
    }
}
