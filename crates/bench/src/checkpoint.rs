//! Campaign checkpoint/resume: durable per-cell result persistence.
//!
//! A full experiment campaign simulates hundreds of (configuration,
//! workload) cells over many minutes. Losing the whole campaign to a
//! mid-run crash, OOM-kill, or `kill -9` would make long campaigns
//! fragile, so every finished cell is persisted *incrementally* under the
//! report directory:
//!
//! ```text
//! DIR/cells/<experiment>/<slug>-<hash>.json   the cell's RunStats
//! DIR/cells/<experiment>/<slug>-<hash>.done   commit marker (empty)
//! ```
//!
//! The write protocol is crash-safe: stats are written to a temp file,
//! fsync'd, renamed into place, and only then marked committed by an
//! fsync'd `.done` file **containing the digest of the exact bytes of
//! the data file**. An interrupt at any point leaves either a complete,
//! marked cell or an ignorable partial — never a half-written cell that
//! a resume would trust. The digest closes the last gap: even a
//! committed-*looking* cell whose data file was torn after the fact (a
//! crashed filesystem, a partial disk flush, a chaos-injected
//! truncation) hashes wrong and is rejected, not merely relied on to
//! fail JSON parsing.
//!
//! `<hash>` is an FNV-1a digest of the **full Debug rendering** of the
//! cell's configuration and workload, so any parameter change — cycle
//! counts, scale, feature flags, suite contents — changes the filename
//! and stale cells are never reused. Reuse requires the `.done` marker,
//! a parseable document, and a matching recorded hash; anything less and
//! the cell silently re-runs.
//!
//! Because [`crate::report::stats_to_json`] round-trips `RunStats`
//! bit-for-bit, a resumed campaign produces a merged report **byte
//! identical** to an uninterrupted one (pinned by the `resume_identical`
//! integration test).
//!
//! The store is activated per experiment by the campaign driver
//! ([`set_active`]); `try_run_one` consults it transparently, so every
//! experiment module gains checkpointing without code changes.

use crate::report::{stats_from_json, stats_to_json, Json};
use bear_core::config::SystemConfig;
use bear_core::metrics::RunStats;
use bear_sim::faultinject::ChaosKind;
use bear_workloads::Workload;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// FNV-1a 64-bit hash (offline-first: no hasher dependencies).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Identity of a cell: digest over the full `Debug` rendering of its
/// configuration and workload.
pub fn cell_hash(cfg: &SystemConfig, workload: &Workload) -> u64 {
    fnv1a64(format!("{cfg:?}\n{workload:?}").as_bytes())
}

/// Filesystem-safe, human-skimmable cell file stem:
/// `<design>-<workload>-<hash>`. Shared with the telemetry sink so a
/// cell's checkpoint and its `telemetry/<stem>.jsonl` time series carry
/// the same name.
pub fn cell_stem(cfg: &SystemConfig, workload: &Workload) -> String {
    let slug: String = format!("{}-{}", cfg.design.label(), workload.name)
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .take(48)
        .collect();
    format!("{slug}-{:016x}", cell_hash(cfg, workload))
}

/// Durable store for one experiment's finished cells.
#[derive(Debug, Clone)]
pub struct CellStore {
    dir: PathBuf,
}

impl CellStore {
    /// Store rooted at `OUT_DIR/cells/<experiment>/`.
    pub fn new(out_dir: &Path, experiment: &str) -> CellStore {
        CellStore {
            dir: out_dir.join("cells").join(experiment),
        }
    }

    /// Store rooted at an explicit directory — for journals that reuse
    /// the commit protocol but are not per-experiment cell caches (the
    /// campaign daemon's job journal).
    pub fn at(dir: &Path) -> CellStore {
        CellStore {
            dir: dir.to_path_buf(),
        }
    }

    fn raw_paths(&self, stem: &str) -> (PathBuf, PathBuf) {
        (
            self.dir.join(format!("{stem}.json")),
            self.dir.join(format!("{stem}.done")),
        )
    }

    fn paths(&self, cfg: &SystemConfig, workload: &Workload) -> (PathBuf, PathBuf) {
        self.raw_paths(&cell_stem(cfg, workload))
    }

    /// Loads a committed cell, or `None` when the cell is absent,
    /// uncommitted (no `.done` marker), torn (the data file's bytes no
    /// longer hash to the digest the marker recorded at commit time),
    /// unparseable, or was produced by a different configuration (hash
    /// mismatch). `None` simply means "re-run the cell" — a corrupt
    /// checkpoint can cost work, never correctness.
    pub fn load(&self, cfg: &SystemConfig, workload: &Workload) -> Option<RunStats> {
        let body = self.load_raw(&cell_stem(cfg, workload))?;
        let doc = Json::parse(&body).ok()?;
        if doc.get("cell_hash")?.as_str()? != format!("{:016x}", cell_hash(cfg, workload)) {
            return None;
        }
        let name = doc.get("workload")?.as_str()?;
        if name != workload.name {
            return None;
        }
        stats_from_json(name, doc.get("stats")?).ok()
    }

    /// Persists a finished cell with the crash-safe protocol described in
    /// the module docs.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error; callers treat
    /// checkpointing as best-effort and keep the in-memory result.
    pub fn store(
        &self,
        cfg: &SystemConfig,
        workload: &Workload,
        stats: &RunStats,
    ) -> std::io::Result<()> {
        self.store_with_fault(cfg, workload, stats, None)
    }

    /// [`CellStore::store`] with an optional chaos fault applied at the
    /// weakest points of the protocol: [`ChaosKind::CheckpointIo`] fails
    /// at the data file's fsync (nothing is committed — the classic
    /// full-disk / dying-device failure), and
    /// [`ChaosKind::TornCheckpoint`] truncates the data file *after* the
    /// commit marker landed (the committed-looking artifact a crashed
    /// filesystem can leave). Any other kind is a plain store.
    pub(crate) fn store_with_fault(
        &self,
        cfg: &SystemConfig,
        workload: &Workload,
        stats: &RunStats,
        fault: Option<ChaosKind>,
    ) -> std::io::Result<()> {
        let doc = Json::Obj(vec![
            (
                "cell_hash".into(),
                Json::Str(format!("{:016x}", cell_hash(cfg, workload))),
            ),
            ("workload".into(), Json::Str(workload.name.clone())),
            ("stats".into(), stats_to_json(stats)),
        ]);
        let mut body = doc.to_string_pretty();
        body.push('\n');
        self.commit_raw(&cell_stem(cfg, workload), &body, fault)
    }

    /// The shared commit path: temp file, fsync, rename, fsync'd `.done`
    /// marker recording the digest of the exact committed bytes, with the
    /// optional chaos fault applied at the protocol's weakest points.
    fn commit_raw(&self, stem: &str, body: &str, fault: Option<ChaosKind>) -> std::io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let (json_path, done_path) = self.raw_paths(stem);
        let tmp = json_path.with_extension("json.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(body.as_bytes())?;
            if fault == Some(ChaosKind::CheckpointIo) {
                // The injected fsync failure: the data never provably
                // reached the disk, so the cell stays uncommitted.
                fs::remove_file(&tmp).ok();
                return Err(std::io::Error::other(
                    "chaos: injected fsync failure (checkpoint-io)",
                ));
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, &json_path)?;
        {
            let mut marker = File::create(&done_path)?;
            marker.write_all(format!("{:016x}\n", fnv1a64(body.as_bytes())).as_bytes())?;
            marker.sync_all()?;
        }
        // Make the rename and the marker's directory entry durable too
        // (best-effort: not all filesystems support fsync on directories).
        if let Ok(d) = File::open(&self.dir) {
            d.sync_all().ok();
        }
        if fault == Some(ChaosKind::TornCheckpoint) {
            crate::chaos::tear_file(&json_path);
        }
        Ok(())
    }

    /// Commits an arbitrary record under `stem` with the full crash-safe
    /// protocol. The daemon journals job submissions through this, so a
    /// kill -9 at any instant leaves either a committed, digest-verified
    /// record or an ignorable partial.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn store_raw(&self, stem: &str, body: &str) -> std::io::Result<()> {
        self.commit_raw(stem, body, None)
    }

    /// Loads the committed record under `stem`, or `None` when it is
    /// absent, uncommitted, or its bytes no longer hash to the digest the
    /// `.done` marker recorded at commit time.
    pub fn load_raw(&self, stem: &str) -> Option<String> {
        let (json_path, done_path) = self.raw_paths(stem);
        let committed_digest = fs::read_to_string(&done_path).ok()?;
        let body = fs::read_to_string(&json_path).ok()?;
        if committed_digest.trim() != format!("{:016x}", fnv1a64(body.as_bytes())) {
            return None; // torn or truncated after commit
        }
        Some(body)
    }

    /// Stems of every committed record in the store, sorted. Partials
    /// without a `.done` marker are invisible; torn records still list
    /// (their marker exists) but fail [`CellStore::load_raw`].
    pub fn list_raw(&self) -> Vec<String> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut stems: Vec<String> = entries
            .filter_map(|e| {
                let name = e.ok()?.file_name().into_string().ok()?;
                Some(name.strip_suffix(".done")?.to_string())
            })
            .collect();
        stems.sort();
        stems
    }

    /// Durably sets an auxiliary flag `<stem>.<flag>` next to the record
    /// (e.g. the daemon's `cancelled` tombstones). Idempotent.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn set_flag(&self, stem: &str, flag: &str) -> std::io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let f = File::create(self.dir.join(format!("{stem}.{flag}")))?;
        f.sync_all()?;
        if let Ok(d) = File::open(&self.dir) {
            d.sync_all().ok();
        }
        Ok(())
    }

    /// Whether [`CellStore::set_flag`] was durably recorded for `stem`.
    pub fn has_flag(&self, stem: &str, flag: &str) -> bool {
        self.dir.join(format!("{stem}.{flag}")).exists()
    }

    /// Path of this cell's committed data file, or `None` when the cell
    /// has no `.done` marker on disk (quarantine manifests record this so
    /// a failure's repro pointer says whether cached work exists).
    pub fn committed_path(&self, cfg: &SystemConfig, workload: &Workload) -> Option<PathBuf> {
        let (json_path, done_path) = self.paths(cfg, workload);
        done_path.exists().then_some(json_path)
    }
}

/// The campaign-wide active store, consulted by `try_run_one`. `None`
/// (the default) disables checkpointing entirely.
static ACTIVE: Mutex<Option<CellStore>> = Mutex::new(None);

/// Activates (or, with `None`, deactivates) checkpointing for subsequent
/// cells. The campaign driver calls this once per experiment step.
pub fn set_active(store: Option<CellStore>) {
    *ACTIVE.lock().expect("checkpoint store poisoned") = store;
}

/// Looks a cell up in the active store, if any.
pub(crate) fn load_active(cfg: &SystemConfig, workload: &Workload) -> Option<RunStats> {
    ACTIVE
        .lock()
        .expect("checkpoint store poisoned")
        .as_ref()?
        .load(cfg, workload)
}

/// Persists a cell to the active store, if any. Write errors degrade to
/// a warning — a full disk must not fail a finished simulation. When a
/// [`crate::chaos`] plan is armed, the plan's checkpoint fault for this
/// cell (torn file, failed fsync) is applied here and recorded as an
/// *absorbed* supervision event: the in-memory result survives either
/// way, so the fault costs a re-run after a crash, never a result.
pub(crate) fn store_active(cfg: &SystemConfig, workload: &Workload, stats: &RunStats) {
    if let Some(store) = ACTIVE.lock().expect("checkpoint store poisoned").as_ref() {
        let fault = crate::chaos::checkpoint_fault_for(cfg, workload);
        match store.store_with_fault(cfg, workload, stats, fault) {
            Ok(()) => {
                if let Some(kind) = fault {
                    crate::chaos::record_absorbed_checkpoint(
                        cfg,
                        workload,
                        kind,
                        "data file truncated after commit; resume re-runs the cell",
                    );
                }
            }
            Err(e) => {
                if let Some(kind) = fault {
                    crate::chaos::record_absorbed_checkpoint(
                        cfg,
                        workload,
                        kind,
                        "cell left unpersisted; resume re-runs the cell",
                    );
                }
                eprintln!(
                    "[warning: failed to checkpoint {} × {}: {e}]",
                    cfg.design.label(),
                    workload.name
                );
            }
        }
    }
}

/// Path of the cell's committed data file in the active store, as a
/// string for the failure manifest; `None` without an active store or a
/// committed cell.
pub(crate) fn active_committed_path(cfg: &SystemConfig, workload: &Workload) -> Option<String> {
    ACTIVE
        .lock()
        .expect("checkpoint store poisoned")
        .as_ref()?
        .committed_path(cfg, workload)
        .map(|p| p.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bear_core::config::DesignKind;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bear_checkpoint_{tag}_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn sample() -> (SystemConfig, Workload, RunStats) {
        let cfg = SystemConfig::paper_baseline(DesignKind::Alloy);
        let workload = bear_workloads::rate_workloads().remove(0);
        let mut stats = RunStats {
            workload: workload.name.clone(),
            design: cfg.design.label().to_string(),
            cycles: 12_345,
            insts_per_core: vec![10, 20, 30],
            ipc_per_core: vec![0.5, 1.0 / 3.0, 0.25],
            l3_hit_rate: 0.125,
            cache_read_queue_latency: 9.75,
            mem_bytes: 1 << 30,
            ..Default::default()
        };
        stats.l4.read_lookups = 99;
        stats.l4.hit_rate = 2.0 / 3.0;
        stats.bloat.bytes[0] = 640;
        stats.bloat.useful_lines = 8;
        (cfg, workload, stats)
    }

    #[test]
    fn store_then_load_roundtrips_exactly() {
        let dir = tmp_dir("roundtrip");
        let (cfg, workload, stats) = sample();
        let store = CellStore::new(&dir, "figXX");
        assert!(store.load(&cfg, &workload).is_none(), "empty store misses");
        store.store(&cfg, &workload, &stats).expect("store cell");
        assert_eq!(store.load(&cfg, &workload), Some(stats));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncommitted_or_corrupt_cells_are_ignored() {
        let dir = tmp_dir("corrupt");
        let (cfg, workload, stats) = sample();
        let store = CellStore::new(&dir, "figXX");
        store.store(&cfg, &workload, &stats).expect("store cell");
        let (json_path, done_path) = store.paths(&cfg, &workload);

        // Truncated (crash mid-write would have hit the tmp file, but
        // defend against external corruption too).
        fs::write(&json_path, "{\"cell_hash\": \"trunc").expect("corrupt");
        assert!(store.load(&cfg, &workload).is_none());

        // Restore, then drop the commit marker.
        store.store(&cfg, &workload, &stats).expect("re-store");
        fs::remove_file(&done_path).expect("remove marker");
        assert!(store.load(&cfg, &workload).is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn changed_config_changes_the_cell_identity() {
        let dir = tmp_dir("stale");
        let (cfg, workload, stats) = sample();
        let store = CellStore::new(&dir, "figXX");
        store.store(&cfg, &workload, &stats).expect("store cell");
        let mut changed = cfg.clone();
        changed.measure_cycles += 1;
        assert!(
            store.load(&changed, &workload).is_none(),
            "any config change must miss the checkpoint"
        );
        assert_ne!(cell_hash(&cfg, &workload), cell_hash(&changed, &workload));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_truncation_of_a_committed_cell_is_rejected() {
        // A kill -9 (or chaos tear) can leave a committed-looking cell
        // whose data file holds any prefix of the real bytes. No prefix —
        // even one that still parses as JSON — may survive load: the
        // digest in the `.done` marker covers the exact committed bytes.
        let dir = tmp_dir("torn");
        let (cfg, workload, stats) = sample();
        let store = CellStore::new(&dir, "figXX");
        store.store(&cfg, &workload, &stats).expect("store cell");
        let (json_path, _) = store.paths(&cfg, &workload);
        let full = fs::read(&json_path).expect("read committed bytes");
        for keep in (0..full.len()).step_by(7).chain([full.len() - 1]) {
            fs::write(&json_path, &full[..keep]).expect("tear");
            assert!(
                store.load(&cfg, &workload).is_none(),
                "torn cell ({keep}/{} bytes) must be rejected",
                full.len()
            );
        }
        // And the pristine bytes still load, so the digest is not
        // rejecting everything.
        fs::write(&json_path, &full).expect("restore");
        assert_eq!(store.load(&cfg, &workload), Some(stats));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bitflip_in_a_committed_cell_is_rejected() {
        let dir = tmp_dir("bitflip");
        let (cfg, workload, stats) = sample();
        let store = CellStore::new(&dir, "figXX");
        store.store(&cfg, &workload, &stats).expect("store cell");
        let (json_path, _) = store.paths(&cfg, &workload);
        let mut bytes = fs::read(&json_path).expect("read committed bytes");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        fs::write(&json_path, &bytes).expect("corrupt");
        assert!(
            store.load(&cfg, &workload).is_none(),
            "a flipped byte must fail the digest check"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_store_faults_behave_like_their_real_counterparts() {
        use bear_sim::faultinject::ChaosKind;
        let dir = tmp_dir("chaosfault");
        let (cfg, workload, stats) = sample();
        let store = CellStore::new(&dir, "figXX");

        // checkpoint-io: the store fails, nothing is committed.
        let err = store
            .store_with_fault(&cfg, &workload, &stats, Some(ChaosKind::CheckpointIo))
            .expect_err("injected fsync failure must error");
        assert!(err.to_string().contains("checkpoint-io"));
        assert!(store.load(&cfg, &workload).is_none());
        assert!(store.committed_path(&cfg, &workload).is_none());

        // torn-checkpoint: committed-looking but truncated — rejected by
        // the digest, so resume re-runs the cell.
        store
            .store_with_fault(&cfg, &workload, &stats, Some(ChaosKind::TornCheckpoint))
            .expect("torn store commits before tearing");
        assert!(
            store.committed_path(&cfg, &workload).is_some(),
            "the marker exists — that is what makes the tear dangerous"
        );
        assert!(
            store.load(&cfg, &workload).is_none(),
            "the torn bytes must fail the digest check"
        );

        // A clean re-store heals the cell.
        store.store(&cfg, &workload, &stats).expect("re-store");
        assert_eq!(store.load(&cfg, &workload), Some(stats));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn raw_records_share_the_commit_protocol() {
        let dir = tmp_dir("raw");
        let store = CellStore::at(&dir.join("jobs"));
        assert!(store.load_raw("job-1").is_none(), "empty store misses");
        assert!(store.list_raw().is_empty());
        store
            .store_raw("job-1", "{\"id\": \"a\"}\n")
            .expect("store");
        store
            .store_raw("job-2", "{\"id\": \"b\"}\n")
            .expect("store");
        assert_eq!(
            store.load_raw("job-1").as_deref(),
            Some("{\"id\": \"a\"}\n")
        );
        assert_eq!(store.list_raw(), vec!["job-1", "job-2"]);

        // Torn after commit: listed (the marker exists) but rejected.
        let (json_path, _) = store.raw_paths("job-1");
        fs::write(&json_path, "{\"id\"").expect("tear");
        assert!(store.load_raw("job-1").is_none());
        assert_eq!(store.list_raw().len(), 2);

        // Flags are durable and namespaced per stem.
        assert!(!store.has_flag("job-2", "cancelled"));
        store.set_flag("job-2", "cancelled").expect("flag");
        assert!(store.has_flag("job-2", "cancelled"));
        assert!(!store.has_flag("job-1", "cancelled"));
        assert!(
            store.load_raw("job-2").is_some(),
            "flags do not disturb the record"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cell_files_are_filesystem_safe() {
        let (cfg, workload, _) = sample();
        let stem = cell_stem(&cfg, &workload);
        assert!(
            stem.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'),
            "stem {stem:?} has unsafe characters"
        );
        assert!(stem.contains("Alloy"), "stem is human-skimmable: {stem}");
    }
}
