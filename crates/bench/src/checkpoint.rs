//! Campaign checkpoint/resume: durable per-cell result persistence.
//!
//! A full experiment campaign simulates hundreds of (configuration,
//! workload) cells over many minutes. Losing the whole campaign to a
//! mid-run crash, OOM-kill, or `kill -9` would make long campaigns
//! fragile, so every finished cell is persisted *incrementally* under the
//! report directory:
//!
//! ```text
//! DIR/cells/<experiment>/<slug>-<hash>.json   the cell's RunStats
//! DIR/cells/<experiment>/<slug>-<hash>.done   commit marker (empty)
//! ```
//!
//! The write protocol is crash-safe: stats are written to a temp file,
//! fsync'd, renamed into place, and only then marked committed by an
//! fsync'd `.done` file. An interrupt at any point leaves either a
//! complete, marked cell or an ignorable partial — never a half-written
//! cell that a resume would trust.
//!
//! `<hash>` is an FNV-1a digest of the **full Debug rendering** of the
//! cell's configuration and workload, so any parameter change — cycle
//! counts, scale, feature flags, suite contents — changes the filename
//! and stale cells are never reused. Reuse requires the `.done` marker,
//! a parseable document, and a matching recorded hash; anything less and
//! the cell silently re-runs.
//!
//! Because [`crate::report::stats_to_json`] round-trips `RunStats`
//! bit-for-bit, a resumed campaign produces a merged report **byte
//! identical** to an uninterrupted one (pinned by the `resume_identical`
//! integration test).
//!
//! The store is activated per experiment by the campaign driver
//! ([`set_active`]); `try_run_one` consults it transparently, so every
//! experiment module gains checkpointing without code changes.

use crate::report::{stats_from_json, stats_to_json, Json};
use bear_core::config::SystemConfig;
use bear_core::metrics::RunStats;
use bear_workloads::Workload;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// FNV-1a 64-bit hash (offline-first: no hasher dependencies).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Identity of a cell: digest over the full `Debug` rendering of its
/// configuration and workload.
pub fn cell_hash(cfg: &SystemConfig, workload: &Workload) -> u64 {
    fnv1a64(format!("{cfg:?}\n{workload:?}").as_bytes())
}

/// Filesystem-safe, human-skimmable cell file stem:
/// `<design>-<workload>-<hash>`. Shared with the telemetry sink so a
/// cell's checkpoint and its `telemetry/<stem>.jsonl` time series carry
/// the same name.
pub fn cell_stem(cfg: &SystemConfig, workload: &Workload) -> String {
    let slug: String = format!("{}-{}", cfg.design.label(), workload.name)
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .take(48)
        .collect();
    format!("{slug}-{:016x}", cell_hash(cfg, workload))
}

/// Durable store for one experiment's finished cells.
#[derive(Debug)]
pub struct CellStore {
    dir: PathBuf,
}

impl CellStore {
    /// Store rooted at `OUT_DIR/cells/<experiment>/`.
    pub fn new(out_dir: &Path, experiment: &str) -> CellStore {
        CellStore {
            dir: out_dir.join("cells").join(experiment),
        }
    }

    fn paths(&self, cfg: &SystemConfig, workload: &Workload) -> (PathBuf, PathBuf) {
        let stem = cell_stem(cfg, workload);
        (
            self.dir.join(format!("{stem}.json")),
            self.dir.join(format!("{stem}.done")),
        )
    }

    /// Loads a committed cell, or `None` when the cell is absent,
    /// uncommitted (no `.done` marker), unparseable, or was produced by a
    /// different configuration (hash mismatch). `None` simply means
    /// "re-run the cell" — a corrupt checkpoint can cost work, never
    /// correctness.
    pub fn load(&self, cfg: &SystemConfig, workload: &Workload) -> Option<RunStats> {
        let (json_path, done_path) = self.paths(cfg, workload);
        if !done_path.exists() {
            return None;
        }
        let doc = Json::parse(&fs::read_to_string(&json_path).ok()?).ok()?;
        if doc.get("cell_hash")?.as_str()? != format!("{:016x}", cell_hash(cfg, workload)) {
            return None;
        }
        let name = doc.get("workload")?.as_str()?;
        if name != workload.name {
            return None;
        }
        stats_from_json(name, doc.get("stats")?).ok()
    }

    /// Persists a finished cell with the crash-safe protocol described in
    /// the module docs.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error; callers treat
    /// checkpointing as best-effort and keep the in-memory result.
    pub fn store(
        &self,
        cfg: &SystemConfig,
        workload: &Workload,
        stats: &RunStats,
    ) -> std::io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let (json_path, done_path) = self.paths(cfg, workload);
        let doc = Json::Obj(vec![
            (
                "cell_hash".into(),
                Json::Str(format!("{:016x}", cell_hash(cfg, workload))),
            ),
            ("workload".into(), Json::Str(workload.name.clone())),
            ("stats".into(), stats_to_json(stats)),
        ]);
        let tmp = json_path.with_extension("json.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(doc.to_string_pretty().as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &json_path)?;
        let marker = File::create(&done_path)?;
        marker.sync_all()?;
        // Make the rename and the marker's directory entry durable too
        // (best-effort: not all filesystems support fsync on directories).
        if let Ok(d) = File::open(&self.dir) {
            d.sync_all().ok();
        }
        Ok(())
    }
}

/// The campaign-wide active store, consulted by `try_run_one`. `None`
/// (the default) disables checkpointing entirely.
static ACTIVE: Mutex<Option<CellStore>> = Mutex::new(None);

/// Activates (or, with `None`, deactivates) checkpointing for subsequent
/// cells. The campaign driver calls this once per experiment step.
pub fn set_active(store: Option<CellStore>) {
    *ACTIVE.lock().expect("checkpoint store poisoned") = store;
}

/// Looks a cell up in the active store, if any.
pub(crate) fn load_active(cfg: &SystemConfig, workload: &Workload) -> Option<RunStats> {
    ACTIVE
        .lock()
        .expect("checkpoint store poisoned")
        .as_ref()?
        .load(cfg, workload)
}

/// Persists a cell to the active store, if any. Write errors degrade to
/// a warning — a full disk must not fail a finished simulation.
pub(crate) fn store_active(cfg: &SystemConfig, workload: &Workload, stats: &RunStats) {
    if let Some(store) = ACTIVE.lock().expect("checkpoint store poisoned").as_ref() {
        if let Err(e) = store.store(cfg, workload, stats) {
            eprintln!(
                "[warning: failed to checkpoint {} × {}: {e}]",
                cfg.design.label(),
                workload.name
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bear_core::config::DesignKind;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bear_checkpoint_{tag}_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn sample() -> (SystemConfig, Workload, RunStats) {
        let cfg = SystemConfig::paper_baseline(DesignKind::Alloy);
        let workload = bear_workloads::rate_workloads().remove(0);
        let mut stats = RunStats {
            workload: workload.name.clone(),
            design: cfg.design.label().to_string(),
            cycles: 12_345,
            insts_per_core: vec![10, 20, 30],
            ipc_per_core: vec![0.5, 1.0 / 3.0, 0.25],
            l3_hit_rate: 0.125,
            cache_read_queue_latency: 9.75,
            mem_bytes: 1 << 30,
            ..Default::default()
        };
        stats.l4.read_lookups = 99;
        stats.l4.hit_rate = 2.0 / 3.0;
        stats.bloat.bytes[0] = 640;
        stats.bloat.useful_lines = 8;
        (cfg, workload, stats)
    }

    #[test]
    fn store_then_load_roundtrips_exactly() {
        let dir = tmp_dir("roundtrip");
        let (cfg, workload, stats) = sample();
        let store = CellStore::new(&dir, "figXX");
        assert!(store.load(&cfg, &workload).is_none(), "empty store misses");
        store.store(&cfg, &workload, &stats).expect("store cell");
        assert_eq!(store.load(&cfg, &workload), Some(stats));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncommitted_or_corrupt_cells_are_ignored() {
        let dir = tmp_dir("corrupt");
        let (cfg, workload, stats) = sample();
        let store = CellStore::new(&dir, "figXX");
        store.store(&cfg, &workload, &stats).expect("store cell");
        let (json_path, done_path) = store.paths(&cfg, &workload);

        // Truncated (crash mid-write would have hit the tmp file, but
        // defend against external corruption too).
        fs::write(&json_path, "{\"cell_hash\": \"trunc").expect("corrupt");
        assert!(store.load(&cfg, &workload).is_none());

        // Restore, then drop the commit marker.
        store.store(&cfg, &workload, &stats).expect("re-store");
        fs::remove_file(&done_path).expect("remove marker");
        assert!(store.load(&cfg, &workload).is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn changed_config_changes_the_cell_identity() {
        let dir = tmp_dir("stale");
        let (cfg, workload, stats) = sample();
        let store = CellStore::new(&dir, "figXX");
        store.store(&cfg, &workload, &stats).expect("store cell");
        let mut changed = cfg.clone();
        changed.measure_cycles += 1;
        assert!(
            store.load(&changed, &workload).is_none(),
            "any config change must miss the checkpoint"
        );
        assert_ne!(cell_hash(&cfg, &workload), cell_hash(&changed, &workload));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cell_files_are_filesystem_safe() {
        let (cfg, workload, _) = sample();
        let stem = cell_stem(&cfg, &workload);
        assert!(
            stem.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'),
            "stem {stem:?} has unsafe characters"
        );
        assert!(stem.contains("Alloy"), "stem is human-skimmable: {stem}");
    }
}
