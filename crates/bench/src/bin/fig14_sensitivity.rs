//! Regenerates the paper's fig14 result. See DESIGN.md §4.
//! Pass `--out DIR` to also write a JSON report.

fn main() {
    bear_bench::cli::run_single("fig14", bear_bench::experiments::fig14_sensitivity::run);
}
