//! Regenerates the paper's fig14 result. See DESIGN.md §4.

fn main() {
    bear_bench::experiments::fig14_sensitivity::run(&bear_bench::RunPlan::from_env());
}
