//! Regenerates the paper's fig09 result. See DESIGN.md §4.

fn main() {
    bear_bench::experiments::fig09_dcp::run(&bear_bench::RunPlan::from_env());
}
