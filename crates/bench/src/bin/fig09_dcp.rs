//! Regenerates the paper's fig09 result. See DESIGN.md §4.
//! Pass `--out DIR` to also write a JSON report.

fn main() {
    bear_bench::cli::run_single("fig09", bear_bench::experiments::fig09_dcp::run);
}
