//! Regenerates the paper's fig03 result. See DESIGN.md §4.

fn main() {
    bear_bench::experiments::fig03_designs::run(&bear_bench::RunPlan::from_env());
}
