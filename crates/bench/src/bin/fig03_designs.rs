//! Regenerates the paper's fig03 result. See DESIGN.md §4.
//! Pass `--out DIR` to also write a JSON report.

fn main() {
    bear_bench::cli::run_single("fig03", bear_bench::experiments::fig03_designs::run);
}
