//! Regenerates the paper's fig13 result. See DESIGN.md §4.
//! Pass `--out DIR` to also write a JSON report.

fn main() {
    bear_bench::cli::run_single("fig13", bear_bench::experiments::fig13_bloat::run);
}
