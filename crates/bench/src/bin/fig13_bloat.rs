//! Regenerates the paper's fig13 result. See DESIGN.md §4.

fn main() {
    bear_bench::experiments::fig13_bloat::run(&bear_bench::RunPlan::from_env());
}
