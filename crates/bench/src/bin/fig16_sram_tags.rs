//! Regenerates the paper's fig16 result. See DESIGN.md §4.

fn main() {
    bear_bench::experiments::fig16_sram_tags::run(&bear_bench::RunPlan::from_env());
}
