//! Regenerates the paper's fig16 result. See DESIGN.md §4.
//! Pass `--out DIR` to also write a JSON report.

fn main() {
    bear_bench::cli::run_single("fig16", bear_bench::experiments::fig16_sram_tags::run);
}
