//! Runs the complete experiment campaign: every table and figure of the
//! paper's evaluation, in order. Honors BEAR_QUICK / BEAR_CYCLES /
//! BEAR_WARMUP / BEAR_SCALE / BEAR_WORKERS, and:
//!
//! - `--out DIR` — write one JSON report per experiment into `DIR`, and
//!   checkpoint every finished (config, workload) cell under
//!   `DIR/cells/<experiment>/`. An interrupted campaign (crash, OOM-kill,
//!   `kill -9`) rerun with the same `--out DIR` resumes from the
//!   committed cells and produces byte-identical reports.
//! - `--only LIST` — run a comma-separated subset of the experiment ids
//!   (e.g. `--only fig07,table5`).
//! - `--telemetry [--sample-window N]` — write one windowed time-series
//!   JSONL file per cell under `DIR/telemetry/` (requires `--out`).
//! - `--metrics-out PATH` — collect every cell's attributed byte
//!   decomposition in a metrics registry and dump its stable JSON to
//!   `PATH` at campaign end (observability-only; reports unchanged).
//!
//! While running, a stderr heartbeat reports each completed cell
//! (`[cell i/N (...) elapsed ..s, ETA ..s]`) so long campaigns are
//! observable without waiting for a step to finish.
//!
//! Every cell runs under the [`bear_bench::supervisor`]: transient
//! failures retry with deterministic backoff (`BEAR_MAX_RETRIES`,
//! `BEAR_RETRY_BASE_MS`), attempts can carry a wall-clock deadline
//! (`BEAR_CELL_DEADLINE_MS`), and cells that exhaust their retries are
//! quarantined into `DIR/failures.json` while the campaign — and its
//! reports — complete around them. Setting `BEAR_CHAOS_SEED` (requires
//! `--out`) arms the deterministic chaos plan that the `chaos` binary
//! and test suite use to prove all of that recovery machinery correct.

use bear_bench::checkpoint::{self, CellStore};
use bear_bench::experiments as ex;
use bear_bench::report::Report;
use bear_bench::{chaos, cli, metrics, runner, supervisor, telemetry, RunPlan};
use std::time::Instant;

/// One experiment step: report id plus its entry point.
type Step = (&'static str, fn(&RunPlan, &mut Report));

fn main() {
    let args = cli::parse_campaign_args(std::env::args().skip(1));
    let plan = RunPlan::from_env();
    let t0 = Instant::now();
    let steps: [Step; 15] = [
        ("fig03", ex::fig03_designs::run),
        ("fig04", ex::fig04_breakdown::run),
        ("fig05", ex::fig05_prob_bypass::run),
        ("fig07", ex::fig07_bab::run),
        ("fig09", ex::fig09_dcp::run),
        ("fig11", ex::fig11_ntc::run),
        ("fig12", ex::fig12_bear::run),
        ("table4", ex::table4_latency::run),
        ("fig13", ex::fig13_bloat::run),
        ("bloat_ledger", ex::bloat_ledger::run),
        ("fig14", ex::fig14_sensitivity::run),
        ("fig15", ex::fig15_banks::run),
        ("fig16", ex::fig16_sram_tags::run),
        ("fig17", ex::fig17_alternatives::run),
        ("table5", ex::table5_overhead::run),
    ];
    if let Some(only) = &args.only {
        for name in only {
            assert!(
                steps.iter().any(|(id, _)| id == name),
                "unknown experiment `{name}` in --only (known: {})",
                steps.map(|(id, _)| id).join(", ")
            );
        }
    }
    chaos::arm_from_env(args.out.as_deref());
    supervisor::set_manifest_dir(args.out.as_deref());
    telemetry::set_active(args.telemetry_sink());
    if args.metrics_out.is_some() {
        metrics::set_active(Some(bear_telemetry::Registry::new()));
    }
    runner::set_heartbeat(true);
    for (name, f) in steps {
        if !args.selected(name) {
            continue;
        }
        let t = Instant::now();
        supervisor::set_experiment(name);
        checkpoint::set_active(args.out.as_deref().map(|d| CellStore::new(d, name)));
        let mut report = Report::new(name);
        f(&plan, &mut report);
        cli::write_report(&mut report, args.out.as_deref(), &plan);
        println!(
            "[{name} done in {:.1}s, total {:.1}s]\n",
            t.elapsed().as_secs_f64(),
            t0.elapsed().as_secs_f64()
        );
    }
    // With chaos armed the manifest must exist even when every fault was
    // dodged (the chaos driver reads it unconditionally); an unarmed
    // campaign only writes it when something actually happened, so a
    // clean campaign's output stays byte-for-byte what it always was.
    if let Some(out) = args.out.as_deref() {
        if chaos::armed_seed().is_some() {
            supervisor::write_manifest(out).expect("writing failures.json");
        }
    }
    if let Some(report) = supervisor::profile_report() {
        eprintln!("[{report}]");
    }
    if let Some(path) = args.metrics_out.as_deref() {
        match metrics::write_active(path) {
            Ok(p) => eprintln!("[metrics: {}]", p.display()),
            Err(e) => eprintln!(
                "[warning: failed to write metrics to {}: {e}]",
                path.display()
            ),
        }
        metrics::set_active(None);
    }
    runner::set_heartbeat(false);
    telemetry::set_active(None);
    checkpoint::set_active(None);
    supervisor::set_manifest_dir(None);
}
