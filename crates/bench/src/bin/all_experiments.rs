//! Runs the complete experiment campaign: every table and figure of the
//! paper's evaluation, in order. Honors BEAR_QUICK / BEAR_CYCLES /
//! BEAR_WARMUP / BEAR_SCALE / BEAR_WORKERS, and `--out DIR` to write one
//! JSON report per experiment into `DIR`.

use bear_bench::cli;
use bear_bench::experiments as ex;
use bear_bench::report::Report;
use bear_bench::RunPlan;
use std::time::Instant;

/// One experiment step: report id plus its entry point.
type Step = (&'static str, fn(&RunPlan, &mut Report));

fn main() {
    let out = cli::parse_out_dir(std::env::args().skip(1));
    let plan = RunPlan::from_env();
    let t0 = Instant::now();
    let steps: [Step; 14] = [
        ("fig03", ex::fig03_designs::run),
        ("fig04", ex::fig04_breakdown::run),
        ("fig05", ex::fig05_prob_bypass::run),
        ("fig07", ex::fig07_bab::run),
        ("fig09", ex::fig09_dcp::run),
        ("fig11", ex::fig11_ntc::run),
        ("fig12", ex::fig12_bear::run),
        ("table4", ex::table4_latency::run),
        ("fig13", ex::fig13_bloat::run),
        ("fig14", ex::fig14_sensitivity::run),
        ("fig15", ex::fig15_banks::run),
        ("fig16", ex::fig16_sram_tags::run),
        ("fig17", ex::fig17_alternatives::run),
        ("table5", ex::table5_overhead::run),
    ];
    for (name, f) in steps {
        let t = Instant::now();
        let mut report = Report::new(name);
        f(&plan, &mut report);
        cli::write_report(&report, out.as_deref(), &plan);
        println!(
            "[{name} done in {:.1}s, total {:.1}s]\n",
            t.elapsed().as_secs_f64(),
            t0.elapsed().as_secs_f64()
        );
    }
}
