//! First tractable full-scale demo cell: one BEAR × mcf run at
//! `--scale 1` (a 1 GB L4, the paper's actual system), timed end to end.
//!
//! The gigascale run loop (DESIGN.md §14) is what makes this cell
//! finish in seconds instead of minutes: whole-cycle skips, channel
//! gating, and completion-horizon span advances elide the overwhelmingly
//! idle cycles a 1 GB cache's long miss latencies produce. The binary
//! accepts the standard flags (`--out`, `--scale` — default `1` here,
//! unlike the other binaries — and `BEAR_SIM_THREADS` applies as
//! everywhere); scalars record wall clock, span/skip coverage, and the
//! cell's headline stats so runs are comparable across machines.

use bear_bench::report::Report;
use bear_bench::{config_for, RunPlan};
use bear_core::config::{BearFeatures, DesignKind, ScalePreset};
use bear_core::system::System;
use bear_workloads::{BenchmarkProfile, Workload};
use std::time::Instant;

fn run(plan: &RunPlan, report: &mut Report) {
    report.banner("scale_demo", "Full-scale (1 GB L4) demo cell", plan);
    let cfg = config_for(DesignKind::Alloy, BearFeatures::full(), plan);
    let profile = BenchmarkProfile::by_name("mcf").expect("mcf profile");
    let workload = Workload::rate(profile);
    let mut sys = System::build(&cfg, &workload);
    sys.set_event_driven(true);
    let t0 = Instant::now();
    let stats = sys.run(cfg.warmup_cycles, cfg.measure_cycles);
    let wall = t0.elapsed();
    let (skipped, live) = sys.loop_counters();
    let total = (skipped + live).max(1);
    println!(
        "BEAR x mcf @ L4 {} MB: {} cycles in {:.2}s \
         ({:.0}% cycles skipped, {} of them inside spans, {} sim threads)",
        cfg.l4_capacity() >> 20,
        cfg.warmup_cycles + cfg.measure_cycles,
        wall.as_secs_f64(),
        skipped as f64 / total as f64 * 100.0,
        sys.span_cycles(),
        sys.sim_threads(),
    );
    // At this budget a 1 GB cache is still warming (the paper's runs are
    // billions of cycles), so hit-dependent ratios like the bloat factor
    // are not yet meaningful; report the raw warming progress instead.
    println!(
        "ipc {:.3}  demand lookups {}  hits {} (rate {:.3})  lines filled {}",
        stats.ipc_per_core.first().copied().unwrap_or(0.0),
        stats.l4.read_lookups,
        stats.l4.read_hits,
        stats.l4.hit_rate,
        stats.l4.fills,
    );
    report.add_run("BEAR", &stats, None);
    report.add_scalar("wall_ns", wall.as_nanos() as f64);
    report.add_scalar("skip_frac", skipped as f64 / total as f64);
    report.add_scalar("span_cycles", sys.span_cycles() as f64);
    report.add_scalar("sim_threads", sys.sim_threads() as f64);
    report.add_scalar("l4_capacity_bytes", cfg.l4_capacity() as f64);
}

fn main() {
    let mut args = bear_bench::cli::parse_single_args(std::env::args().skip(1));
    // This binary exists to demonstrate full scale: default to `--scale 1`
    // rather than the development default, unless the user picked one.
    if args.scale.is_none() {
        args.scale = Some(ScalePreset::Full);
    }
    bear_bench::cli::run_single_with("scale_demo", args, run);
}
