//! Chaos-recovery proof driver: runs the quick `fig07` campaign twice —
//! once fault-free, once under a seeded chaos plan (worker panics,
//! stalls, torn checkpoints, failed fsyncs, whole-process kills) — and
//! verifies the recovered reports cell-by-cell against the reference
//! (see [`bear_bench::chaos::drive`] for the exact properties).
//!
//! Flags:
//!
//! - `--seed N` — chaos seed (default: the pinned
//!   [`bear_bench::chaos::SMOKE_SEED`], chosen to draw every fault
//!   class on the smoke grid).
//! - `--work-dir DIR` — scratch directory (default: a temp dir; wiped).
//! - `--bench-json PATH` — additionally write the machine-readable
//!   recovery-overhead record (`scripts/verify.sh` points this at
//!   `BENCH_chaos.json` in the repo root to grow the perf trajectory).
//!
//! Exit status is non-zero when any recovery property is violated, so
//! the binary doubles as a CI gate.

use bear_bench::chaos::{drive, DriveConfig, SMOKE_SEED};
use std::io::Write as _;
use std::path::PathBuf;

fn main() {
    let mut seed = SMOKE_SEED;
    let mut work_dir: Option<PathBuf> = None;
    let mut bench_json: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--seed" => {
                seed = value("--seed")
                    .parse()
                    .expect("--seed must be an unsigned integer")
            }
            "--work-dir" => work_dir = Some(PathBuf::from(value("--work-dir"))),
            "--bench-json" => bench_json = Some(PathBuf::from(value("--bench-json"))),
            other => panic!(
                "unrecognized argument `{other}` \
                 (supported: --seed N, --work-dir DIR, --bench-json PATH)"
            ),
        }
    }

    // The campaign binary is built alongside this one.
    let campaign_bin = std::env::current_exe()
        .expect("current_exe")
        .with_file_name("all_experiments");
    assert!(
        campaign_bin.exists(),
        "campaign binary not found at {} (build the all_experiments bin first)",
        campaign_bin.display()
    );
    let work_dir = work_dir
        .unwrap_or_else(|| std::env::temp_dir().join(format!("bear_chaos_{}", std::process::id())));

    let cfg = DriveConfig::smoke(seed, campaign_bin, work_dir.clone());
    println!(
        "=== chaos: seeded recovery proof (seed {seed}, grid {}) ===",
        cfg.only
    );
    let outcome = match drive(&cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("CHAOS FAIL: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "recovered: {} identical rows, {} quarantined, {} healed, \
         {} absorbed, {} restarts",
        outcome.rows_identical,
        outcome.rows_quarantined,
        outcome.healed,
        outcome.absorbed,
        outcome.restarts
    );
    println!("covered fault kinds: {}", outcome.covered.join(", "));
    println!(
        "wall clock: fault-free {:.2}s, chaos {:.2}s ({:.2}x recovery overhead)",
        outcome.fault_free_secs,
        outcome.chaos_secs,
        outcome.chaos_secs / outcome.fault_free_secs.max(1e-9)
    );
    if let Some(path) = bench_json {
        let doc = outcome.bench_json(seed, &cfg.only);
        let mut f = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("creating {}: {e}", path.display()));
        f.write_all(doc.to_string_pretty().as_bytes())
            .and_then(|()| f.write_all(b"\n"))
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("[bench record: {}]", path.display());
    }
    std::fs::remove_dir_all(&work_dir).ok();
    println!("chaos recovery proof PASSED");
}
