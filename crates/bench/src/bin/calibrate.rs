//! Calibration probe: runs a handful of workloads on the key designs and
//! prints the headline shape metrics (bloat factor, hit rate, latencies,
//! speedup vs Alloy) plus wall-clock throughput of the simulator itself.

use bear_bench::{config_for, f3, run_one, speedup, RunPlan};
use bear_core::config::{BearFeatures, DesignKind};
use bear_workloads::{rate_workloads, Workload};
use std::time::Instant;

fn main() {
    let plan = RunPlan::from_env();
    println!("plan: {plan:?}");
    let names = ["libquantum", "mcf", "gcc", "GemsFDTD", "zeusmp"];
    let workloads: Vec<Workload> = rate_workloads()
        .into_iter()
        .filter(|w| names.iter().any(|n| w.name == format!("rate:{n}")))
        .collect();

    for w in &workloads {
        let t0 = Instant::now();
        let alloy = run_one(
            &config_for(DesignKind::Alloy, BearFeatures::none(), &plan),
            w,
        );
        let secs = t0.elapsed().as_secs_f64();
        let bear = run_one(
            &config_for(DesignKind::Alloy, BearFeatures::full(), &plan),
            w,
        );
        let opt = run_one(
            &config_for(DesignKind::BwOpt, BearFeatures::none(), &plan),
            w,
        );
        let lh = run_one(
            &config_for(DesignKind::LohHill, BearFeatures::none(), &plan),
            w,
        );
        println!(
            "\n== {} (alloy run {:.1}s, {:.0} kcyc/s) ==",
            w.name,
            secs,
            (plan.warmup + plan.measure) as f64 / secs / 1e3
        );
        for (name, s) in [
            ("Alloy", &alloy),
            ("BEAR", &bear),
            ("BW-Opt", &opt),
            ("LH", &lh),
        ] {
            println!(
                "{name:<8} bloat {:>7} hit% {:>6} hitlat {:>7} misslat {:>7} ipc {:>6} spd {:>6} l3hit% {:>5}",
                f3(s.bloat.factor()),
                f3(s.l4.hit_rate * 100.0),
                f3(s.l4.hit_latency),
                f3(s.l4.miss_latency),
                f3(s.total_ipc()),
                f3(speedup(w, s, &alloy)),
                f3(s.l3_hit_rate * 100.0),
            );
            println!(
                "         lookups {} hits {} fills {} byps {} wbhit% {:.1} mpa {} wpa {} sq {}",
                s.l4.read_lookups,
                s.l4.read_hits,
                s.l4.fills,
                s.l4.bypasses,
                s.l4.wb_hit_rate * 100.0,
                s.l4.miss_probes_avoided,
                s.l4.wb_probes_avoided,
                s.l4.parallel_squashed,
            );
        }
    }
}
