//! Regenerates the paper's fig11 result. See DESIGN.md §4.
//! Pass `--out DIR` to also write a JSON report.

fn main() {
    bear_bench::cli::run_single("fig11", bear_bench::experiments::fig11_ntc::run);
}
