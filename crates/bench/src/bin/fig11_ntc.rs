//! Regenerates the paper's fig11 result. See DESIGN.md §4.

fn main() {
    bear_bench::experiments::fig11_ntc::run(&bear_bench::RunPlan::from_env());
}
