//! Adversarial differential-fuzz campaign driver.
//!
//! Sweeps the design × BEAR-feature × pattern matrix under the shadow
//! oracle (`bear-oracle`), shrinks any divergence to a near-minimal
//! trace, and writes repro files. Exits non-zero iff a divergence was
//! found, so CI can gate on it.
//!
//! Flags:
//!
//! - `--out DIR` — write shrunk repros to `DIR/repros/`;
//! - `--seeds LIST` — comma-separated seeds (default `190,61453`);
//! - `--cycles N` — per-case cycle budget (default 25000);
//! - `--fault KIND@CYCLE` — inject a fault into every case (self-test:
//!   the campaign should then *fail* everywhere the fault is visible).

use bear_oracle::fuzz::{campaign_cases, run_campaign};
use bear_sim::faultinject::FaultKind;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    out: Option<PathBuf>,
    seeds: Vec<u64>,
    cycles: u64,
    fault: Option<(FaultKind, u64)>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Args {
    let usage = "supported: --out DIR, --seeds LIST, --cycles N, --fault KIND@CYCLE";
    let mut parsed = Args {
        out: None,
        seeds: vec![190, 61453],
        cycles: 25_000,
        fault: None,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let flag = flag.to_string();
        let mut val = || {
            inline
                .clone()
                .or_else(|| args.next())
                .unwrap_or_else(|| panic!("{flag} requires a value ({usage})"))
        };
        match flag.as_str() {
            "--out" => parsed.out = Some(PathBuf::from(val())),
            "--seeds" => {
                parsed.seeds = val()
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse().unwrap_or_else(|e| panic!("bad seed {s:?}: {e}")))
                    .collect();
            }
            "--cycles" => {
                let v = val();
                parsed.cycles = v
                    .parse()
                    .unwrap_or_else(|e| panic!("bad cycles {v:?}: {e}"));
            }
            "--fault" => {
                let spec = val();
                let (kind, at) = spec
                    .split_once('@')
                    .unwrap_or_else(|| panic!("--fault wants KIND@CYCLE, got {spec:?}"));
                let kind = FaultKind::from_label(kind)
                    .unwrap_or_else(|| panic!("unknown fault kind {kind:?}"));
                let at = at
                    .parse()
                    .unwrap_or_else(|e| panic!("bad fault cycle {at:?}: {e}"));
                parsed.fault = Some((kind, at));
            }
            other => panic!("unrecognized argument `{other}` ({usage})"),
        }
    }
    parsed
}

fn main() -> ExitCode {
    let args = parse_args(std::env::args().skip(1));
    let mut cases = campaign_cases(&args.seeds);
    for case in &mut cases {
        case.cycles = args.cycles;
        case.fault = args.fault;
    }
    println!(
        "fuzz: {} cases ({} seeds x design/feature/pattern matrix), {} cycles each",
        cases.len(),
        args.seeds.len(),
        args.cycles
    );
    let report = run_campaign(&cases, args.out.as_deref());
    println!(
        "fuzz: {} cases run, {} events checked, {} divergences",
        report.cases_run,
        report.events_checked,
        report.divergences.len()
    );
    for d in &report.divergences {
        println!(
            "  DIVERGENCE {}/{}/{} seed {}: {} (shrunk to {} accesses{})",
            d.case.design.label(),
            d.case.features.label(),
            d.case.pattern.label(),
            d.case.seed,
            d.error,
            d.shrunk_len,
            d.repro_path
                .as_ref()
                .map(|p| format!(", repro {}", p.display()))
                .unwrap_or_default()
        );
    }
    if report.divergences.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
