//! Regenerates the paper's fig15 result. See DESIGN.md §4.

fn main() {
    bear_bench::experiments::fig15_banks::run(&bear_bench::RunPlan::from_env());
}
