//! Regenerates the paper's fig15 result. See DESIGN.md §4.
//! Pass `--out DIR` to also write a JSON report.

fn main() {
    bear_bench::cli::run_single("fig15", bear_bench::experiments::fig15_banks::run);
}
