//! Regenerates the paper's fig12 result. See DESIGN.md §4.
//! Pass `--out DIR` to also write a JSON report.

fn main() {
    bear_bench::cli::run_single("fig12", bear_bench::experiments::fig12_bear::run);
}
