//! Regenerates the paper's fig12 result. See DESIGN.md §4.

fn main() {
    bear_bench::experiments::fig12_bear::run(&bear_bench::RunPlan::from_env());
}
