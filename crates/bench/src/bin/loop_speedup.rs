//! Measures the wall-clock speedup of the event-driven run loop over
//! per-cycle polling on the campaign smoke grid, asserting bit-identical
//! results between the modes. Pass `--out DIR` to also write a JSON report.
//!
//! `--bench-json PATH` additionally writes a compact machine-readable
//! benchmark summary (the repo-root `BENCH_core.json` emitted by
//! `scripts/verify.sh`): the headline gmean speedup plus per-cell
//! wall-clock times in both modes, derived from the report's scalars.
//!
//! `--threads LIST` (e.g. `--threads 2,4`) additionally reruns the
//! event-driven grid at each listed `BEAR_SIM_THREADS` count, asserting
//! bit-identical simulated results and recording per-thread-count gmean
//! speedups (`speedup_gmean_t<N>` scalars; a `threaded` array in the
//! benchmark summary). The headline `speedup_gmean` stays the serial
//! ratio so the committed perf floor keeps one meaning.

use bear_bench::report::{Json, Report};
use std::path::PathBuf;

/// Splits `--bench-json PATH` and `--threads LIST` (space or `=` forms)
/// out of the argument list, leaving the rest for the standard
/// single-binary parser.
fn split_local_flags(args: Vec<String>) -> (Option<PathBuf>, Vec<usize>, Vec<String>) {
    fn parse_threads(list: &str) -> Vec<usize> {
        list.split(',')
            .filter(|s| !s.is_empty())
            .map(|s| {
                bear_dram::shard::parse_sim_threads(s).unwrap_or_else(|e| panic!("--threads: {e}"))
            })
            .collect()
    }
    let mut path = None;
    let mut threads = Vec::new();
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--bench-json" {
            let v = it
                .next()
                .unwrap_or_else(|| panic!("--bench-json requires a file path"));
            path = Some(PathBuf::from(v));
        } else if let Some(v) = a.strip_prefix("--bench-json=") {
            path = Some(PathBuf::from(v));
        } else if a == "--threads" {
            let v = it
                .next()
                .unwrap_or_else(|| panic!("--threads requires a comma-separated count list"));
            threads = parse_threads(&v);
        } else if let Some(v) = a.strip_prefix("--threads=") {
            threads = parse_threads(v);
        } else {
            rest.push(a);
        }
    }
    (path, threads, rest)
}

/// Builds the benchmark summary document from the finished report:
/// `speedup_gmean` plus one entry per cell with its raw poll/event wall
/// times (ns) and the resulting speedup.
fn bench_json(report: &Report) -> Json {
    let scalar = |key: &str| {
        report
            .scalars
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
    };
    let mut cells = Vec::new();
    for (key, poll_ns) in &report.scalars {
        let Some(cell) = key.strip_prefix("poll_ns:") else {
            continue;
        };
        let event_ns = scalar(&format!("event_ns:{cell}")).unwrap_or(0.0);
        cells.push(Json::Obj(vec![
            ("cell".into(), Json::Str(cell.to_string())),
            ("poll_ns".into(), Json::Num(*poll_ns)),
            ("event_ns".into(), Json::Num(event_ns)),
            (
                "speedup".into(),
                Json::Num(if event_ns > 0.0 {
                    poll_ns / event_ns
                } else {
                    0.0
                }),
            ),
        ]));
    }
    // Threaded sweep results, when `--threads` ran one: one entry per
    // swept `BEAR_SIM_THREADS` count.
    let mut threaded = Vec::new();
    for (key, g) in &report.scalars {
        let Some(t) = key.strip_prefix("speedup_gmean_t") else {
            continue;
        };
        threaded.push(Json::Obj(vec![
            ("threads".into(), Json::Num(t.parse().unwrap_or(0.0))),
            ("speedup_gmean".into(), Json::Num(*g)),
        ]));
    }
    Json::Obj(vec![
        ("bench".into(), Json::Str("loop_speedup".into())),
        (
            "speedup_gmean".into(),
            Json::Num(scalar("speedup_gmean").unwrap_or(0.0)),
        ),
        ("threaded".into(), Json::Arr(threaded)),
        ("cells".into(), Json::Arr(cells)),
    ])
}

fn main() {
    let (bench_path, threads, rest) = split_local_flags(std::env::args().skip(1).collect());
    bear_bench::experiments::loop_speedup::set_thread_sweep(threads);
    let args = bear_bench::cli::parse_single_args(rest.into_iter());
    let report = bear_bench::cli::run_single_with(
        "loop_speedup",
        args,
        bear_bench::experiments::loop_speedup::run,
    );
    if let Some(path) = bench_path {
        let doc = bench_json(&report);
        let text = format!("{}\n", doc.to_string_pretty());
        Json::parse(&text).expect("benchmark summary must re-parse");
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("[bench summary: {}]", path.display());
    }
}
