//! Measures the wall-clock speedup of the event-driven run loop over
//! per-cycle polling on the campaign smoke grid, asserting bit-identical
//! results between the modes. Pass `--out DIR` to also write a JSON report.

fn main() {
    bear_bench::cli::run_single("loop_speedup", bear_bench::experiments::loop_speedup::run);
}
