//! Regenerates the paper's fig04 result. See DESIGN.md §4.

fn main() {
    bear_bench::experiments::fig04_breakdown::run(&bear_bench::RunPlan::from_env());
}
