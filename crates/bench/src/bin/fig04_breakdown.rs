//! Regenerates the paper's fig04 result. See DESIGN.md §4.
//! Pass `--out DIR` to also write a JSON report.

fn main() {
    bear_bench::cli::run_single("fig04", bear_bench::experiments::fig04_breakdown::run);
}
