//! Regenerates the paper's table5 result. See DESIGN.md §4.
//! Pass `--out DIR` to also write a JSON report.

fn main() {
    bear_bench::cli::run_single("table5", bear_bench::experiments::table5_overhead::run);
}
