//! Regenerates the paper's table5 result. See DESIGN.md §4.

fn main() {
    bear_bench::experiments::table5_overhead::run(&bear_bench::RunPlan::from_env());
}
