//! Ledger-backed bloat decomposition for the B/BD/BDN/BEAR ladder
//! (see `bear_bench::experiments::bloat_ledger`).

fn main() {
    bear_bench::cli::run_single("bloat_ledger", bear_bench::experiments::bloat_ledger::run);
}
