//! Ablation studies of BEAR's design choices (see DESIGN.md §4).
//! Pass `--out DIR` to also write a JSON report.

fn main() {
    bear_bench::cli::run_single("ablations", bear_bench::experiments::ablations::run);
}
