//! Ablation studies of BEAR's design choices (see DESIGN.md §4).

fn main() {
    bear_bench::experiments::ablations::run(&bear_bench::RunPlan::from_env());
}
