//! `beard` — the resident BEAR campaign daemon.
//!
//! Serve mode (the daemon proper):
//!
//! ```text
//! beard --listen 127.0.0.1:0 --out DIR [--workers N] [--queue N] [--client-quota N]
//! ```
//!
//! Binds the socket (`unix:PATH` or a TCP address; port 0 picks an
//! ephemeral port), writes the dialable address to `DIR/daemon.addr`,
//! and serves newline-delimited JSON job submissions until a client
//! sends `{"op":"drain"}` — then finishes (or, in `fast` mode,
//! checkpoints) in-flight work, flushes `DIR/failures.json` and
//! `DIR/daemon_report.json`, and exits 0. Setting `BEAR_CHAOS_SEED`
//! arms the daemon-level chaos plan (connection drops, worker kills,
//! and whole-process kill -9 between journal and ack) that
//! `tests/daemon.rs` uses to prove crash-safe recovery.
//!
//! Smoke mode (the service-level benchmark `scripts/verify.sh` runs):
//!
//! ```text
//! beard --smoke --out DIR [--bench-json PATH]
//! ```
//!
//! Starts an in-process daemon, drives the standard smoke grid from two
//! concurrent clients (one cancels a job mid-run), then provokes an
//! overload burst against a second, deliberately tiny-queued instance,
//! and writes service-level metrics (jobs/sec, p50/p99
//! submit-to-complete latency, shed count) to `PATH` (default
//! `DIR/BENCH_daemon.json`).

use bear_bench::daemon::{smoke_jobs, Client, Daemon, DaemonConfig, JobSpec};
use bear_bench::report::Json;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: beard --listen ADDR --out DIR [--workers N] [--queue N] [--client-quota N]\n\
         \u{20}      beard --smoke --out DIR [--bench-json PATH]"
    );
    std::process::exit(2);
}

struct Args {
    listen: Option<String>,
    out: Option<PathBuf>,
    workers: Option<usize>,
    queue: Option<usize>,
    client_quota: Option<usize>,
    smoke: bool,
    bench_json: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: None,
        out: None,
        workers: None,
        queue: None,
        client_quota: None,
        smoke: false,
        bench_json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--listen" => args.listen = Some(value("--listen")),
            "--out" => args.out = Some(PathBuf::from(value("--out"))),
            "--workers" => args.workers = value("--workers").parse().ok(),
            "--queue" => args.queue = value("--queue").parse().ok(),
            "--client-quota" => args.client_quota = value("--client-quota").parse().ok(),
            "--smoke" => args.smoke = true,
            "--bench-json" => args.bench_json = Some(PathBuf::from(value("--bench-json"))),
            _ => {
                eprintln!("unknown flag {flag}");
                usage()
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let Some(out) = args.out.clone() else { usage() };
    if args.smoke {
        smoke(&args, &out);
        return;
    }
    let Some(listen) = args.listen.clone() else {
        usage()
    };
    let mut cfg = DaemonConfig::new(&out).chaos_from_env();
    if let Some(w) = args.workers {
        cfg.workers = w;
    }
    if let Some(q) = args.queue {
        cfg.queue_capacity = q;
    }
    if let Some(q) = args.client_quota {
        cfg.client_quota = q;
    }
    let daemon = match Daemon::start(cfg, &listen) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("beard: cannot start: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("[beard: serving on {} -> {}]", daemon.addr(), out.display());
    let summary = daemon.wait();
    eprintln!(
        "[beard: drained; accepted {} completed {} failed {} cancelled {} pending {}]",
        summary.counters.accepted,
        summary.counters.completed,
        summary.counters.failed,
        summary.counters.cancelled,
        summary.pending
    );
}

/// One client's view of the smoke run: per-job submit→settle latencies.
struct ClientReport {
    latencies_ms: Vec<f64>,
    completed: usize,
    cancelled: usize,
    failed: usize,
}

/// Drives one client's jobs over a single connection: submit everything
/// up front, optionally cancel `cancel_id` mid-run, then read
/// notifications until every job settles.
fn drive_client(
    addr: &str,
    jobs: Vec<JobSpec>,
    cancel_id: Option<String>,
) -> std::io::Result<ClientReport> {
    let mut c = Client::connect(addr)?;
    c.set_timeout(Some(Duration::from_secs(300)))?;
    let mut submitted = std::collections::BTreeMap::new();
    for job in &jobs {
        c.send(&job.canonical_line())?;
        submitted.insert(job.id.clone(), Instant::now());
    }
    if let Some(id) = &cancel_id {
        c.send(&format!("{{\"op\":\"cancel\",\"id\":\"{id}\"}}"))?;
    }
    let mut report = ClientReport {
        latencies_ms: Vec::new(),
        completed: 0,
        cancelled: 0,
        failed: 0,
    };
    let mut settled = 0;
    while settled < jobs.len() {
        let Some(line) = c.recv()? else {
            return Err(std::io::Error::other("daemon closed mid-smoke"));
        };
        let ty = line.get("type").and_then(Json::as_str).unwrap_or("");
        let id = line.get("id").and_then(Json::as_str).unwrap_or("");
        match ty {
            "completed" | "failed" | "cancelled" => {
                settled += 1;
                if let Some(t0) = submitted.get(id) {
                    report.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                }
                match ty {
                    "completed" => report.completed += 1,
                    "cancelled" => report.cancelled += 1,
                    _ => report.failed += 1,
                }
            }
            "accepted" | "cancelling" | "telemetry" => {}
            "error" => {
                // Cancelling a job that already settled is a benign race
                // in the smoke; anything else is not.
                let kind = line.get("kind").and_then(Json::as_str).unwrap_or("");
                if kind != "already-settled" {
                    return Err(std::io::Error::other(format!("smoke error: {line}")));
                }
            }
            other => return Err(std::io::Error::other(format!("unexpected {other}: {line}"))),
        }
    }
    Ok(report)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn smoke(args: &Args, out: &std::path::Path) {
    let t0 = Instant::now();

    // Phase 1: the smoke grid from two concurrent clients over one
    // daemon; bob cancels his last job mid-run.
    let cfg = DaemonConfig::new(out);
    let daemon = Daemon::start(cfg, "127.0.0.1:0").expect("beard smoke: daemon start");
    let addr = daemon.addr().to_string();
    let jobs = smoke_jobs();
    let alice: Vec<JobSpec> = jobs
        .iter()
        .filter(|j| j.client == "alice")
        .cloned()
        .collect();
    let bob: Vec<JobSpec> = jobs.iter().filter(|j| j.client == "bob").cloned().collect();
    let cancel_id = bob.last().expect("bob has jobs").id.clone();
    let total_jobs = alice.len() + bob.len();
    let a_handle = {
        let addr = addr.clone();
        std::thread::spawn(move || drive_client(&addr, alice, None))
    };
    let b_handle = {
        let addr = addr.clone();
        std::thread::spawn(move || drive_client(&addr, bob, Some(cancel_id)))
    };
    let a = a_handle
        .join()
        .expect("alice thread")
        .expect("alice client");
    let b = b_handle.join().expect("bob thread").expect("bob client");
    let mut c = Client::connect(&addr).expect("drain connect");
    c.set_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    c.request("{\"op\":\"drain\"}").expect("drain");
    let summary = daemon.wait();
    let elapsed = t0.elapsed();
    assert_eq!(summary.pending, 0, "smoke drain left work pending");
    assert_eq!(summary.counters.failed, 0, "smoke jobs must not fail");

    let mut latencies: Vec<f64> = a
        .latencies_ms
        .iter()
        .chain(b.latencies_ms.iter())
        .copied()
        .collect();
    latencies.sort_by(|x, y| x.total_cmp(y));
    let settled = (a.completed + b.completed + a.cancelled + b.cancelled) as f64;
    let jobs_per_sec = settled / elapsed.as_secs_f64();

    // Phase 2: deliberate overload burst against a second instance with
    // a tiny queue and no workers — every admission decision is
    // deterministic, the shed count is exact.
    let burst_dir = out.join("overload-burst");
    std::fs::remove_dir_all(&burst_dir).ok();
    let mut burst_cfg = DaemonConfig::new(&burst_dir);
    burst_cfg.workers = 0;
    burst_cfg.queue_capacity = 4;
    let burst_daemon = Daemon::start(burst_cfg, "127.0.0.1:0").expect("burst daemon");
    let mut bc = Client::connect(burst_daemon.addr()).expect("burst connect");
    bc.set_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let mut burst_shed = 0u64;
    let mut burst_accepted = 0u64;
    let mut max_hint = 0u64;
    for i in 0..12 {
        let mut job = smoke_jobs()[i % 8].clone();
        job.id = format!("burst-{i}");
        job.client = "burst".into();
        let resp = bc.request(&job.canonical_line()).expect("burst submit");
        match resp.get("type").and_then(Json::as_str) {
            Some("accepted") => burst_accepted += 1,
            Some("overloaded") => {
                burst_shed += 1;
                let hint = resp
                    .get("retry_after_ms")
                    .and_then(Json::as_u64)
                    .expect("overloaded carries retry_after_ms");
                max_hint = max_hint.max(hint);
            }
            other => panic!("burst: unexpected response {other:?}"),
        }
    }
    bc.request("{\"op\":\"drain\",\"mode\":\"fast\"}")
        .expect("burst drain");
    let burst_summary = burst_daemon.wait();
    assert_eq!(burst_summary.counters.shed, burst_shed);
    assert_eq!(
        burst_accepted, 4,
        "burst admissions must match the queue bound"
    );
    assert!(burst_shed >= 1, "burst must shed");
    std::fs::remove_dir_all(&burst_dir).ok();

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("daemon-smoke".into())),
        ("jobs".into(), Json::uint(total_jobs as u64)),
        (
            "completed".into(),
            Json::uint((a.completed + b.completed) as u64),
        ),
        (
            "cancelled".into(),
            Json::uint((a.cancelled + b.cancelled) as u64),
        ),
        ("elapsed_ms".into(), Json::Num(elapsed.as_secs_f64() * 1e3)),
        ("jobs_per_sec".into(), Json::Num(jobs_per_sec)),
        (
            "submit_to_complete_ms".into(),
            Json::Obj(vec![
                ("p50".into(), Json::Num(percentile(&latencies, 0.50))),
                ("p99".into(), Json::Num(percentile(&latencies, 0.99))),
                ("max".into(), Json::Num(percentile(&latencies, 1.0))),
            ]),
        ),
        (
            "overload_burst".into(),
            Json::Obj(vec![
                ("submitted".into(), Json::uint(12)),
                ("accepted".into(), Json::uint(burst_accepted)),
                ("shed".into(), Json::uint(burst_shed)),
                ("max_retry_after_ms".into(), Json::uint(max_hint)),
            ]),
        ),
    ]);
    let path = args
        .bench_json
        .clone()
        .unwrap_or_else(|| out.join("BENCH_daemon.json"));
    std::fs::write(&path, format!("{}\n", doc.to_string_pretty())).expect("write bench json");
    eprintln!(
        "[beard smoke: {} jobs in {:.1}s ({:.1} jobs/s), p50 {:.0}ms p99 {:.0}ms, burst shed {} -> {}]",
        total_jobs,
        elapsed.as_secs_f64(),
        jobs_per_sec,
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        burst_shed,
        path.display()
    );
}
