//! Regenerates the paper's fig17 result. See DESIGN.md §4.
//! Pass `--out DIR` to also write a JSON report.

fn main() {
    bear_bench::cli::run_single("fig17", bear_bench::experiments::fig17_alternatives::run);
}
