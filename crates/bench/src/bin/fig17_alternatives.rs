//! Regenerates the paper's fig17 result. See DESIGN.md §4.

fn main() {
    bear_bench::experiments::fig17_alternatives::run(&bear_bench::RunPlan::from_env());
}
