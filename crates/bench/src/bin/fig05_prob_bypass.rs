//! Regenerates the paper's fig05 result. See DESIGN.md §4.
//! Pass `--out DIR` to also write a JSON report.

fn main() {
    bear_bench::cli::run_single("fig05", bear_bench::experiments::fig05_prob_bypass::run);
}
