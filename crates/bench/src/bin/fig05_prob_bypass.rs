//! Regenerates the paper's fig05 result. See DESIGN.md §4.

fn main() {
    bear_bench::experiments::fig05_prob_bypass::run(&bear_bench::RunPlan::from_env());
}
