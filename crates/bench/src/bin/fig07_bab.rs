//! Regenerates the paper's fig07 result. See DESIGN.md §4.
//! Pass `--out DIR` to also write a JSON report.

fn main() {
    bear_bench::cli::run_single("fig07", bear_bench::experiments::fig07_bab::run);
}
