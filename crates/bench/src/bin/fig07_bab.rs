//! Regenerates the paper's fig07 result. See DESIGN.md §4.

fn main() {
    bear_bench::experiments::fig07_bab::run(&bear_bench::RunPlan::from_env());
}
