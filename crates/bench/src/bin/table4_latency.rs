//! Regenerates the paper's table4 result. See DESIGN.md §4.

fn main() {
    bear_bench::experiments::table4_latency::run(&bear_bench::RunPlan::from_env());
}
