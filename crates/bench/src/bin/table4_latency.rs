//! Regenerates the paper's table4 result. See DESIGN.md §4.
//! Pass `--out DIR` to also write a JSON report.

fn main() {
    bear_bench::cli::run_single("table4", bear_bench::experiments::table4_latency::run);
}
