//! Demonstrates the full observability stack on one cell: windowed
//! time-series sampling (JSONL), Chrome trace export of the `ObsEvent`
//! ring and DRAM transfer log, and the host self-profiler — then
//! measures that telemetry costs nothing when off.
//!
//! ```text
//! cargo run --release -p bear-bench --bin telemetry -- --out results
//! ```
//!
//! writes:
//!
//! ```text
//! results/telemetry/<cell>.jsonl   one JSON object per sample window
//! results/trace.json               load in chrome://tracing or Perfetto
//! results/self_profile.txt         per-cell + campaign-wide host profile
//! ```
//!
//! Flags: `--out DIR` (default: a temp directory), `--sample-window N`.
//! Honors `BEAR_WARMUP` / `BEAR_CYCLES` / `BEAR_SCALE` (with much smaller
//! demo defaults than the campaign binaries) and `BEAR_BENCH_QUICK` for
//! the overhead check.
//!
//! The binary validates its own outputs — every JSONL line and the trace
//! document must re-parse, and window sums must equal the run's
//! end-of-run aggregates — so it doubles as a smoke test for
//! `scripts/verify.sh`.

use bear_bench::cli;
use bear_bench::report::Json;
use bear_bench::telemetry::TelemetrySink;
use bear_bench::RunPlan;
use bear_core::config::{BearFeatures, DesignKind, SystemConfig};
use bear_core::system::System;
use bear_core::telemetry::TelemetryReport;
use bear_core::traffic::BloatCategory;
use bear_dram::request::TrafficClass;
use bear_telemetry::{ChromeTrace, TelemetryConfig, TelemetryOptions};
use bear_workloads::Workload;
use std::path::Path;
use std::time::Instant;

fn demo_plan() -> RunPlan {
    let mut plan = RunPlan::from_env();
    // The campaign defaults simulate millions of cycles; a telemetry demo
    // only needs enough windows to be interesting.
    if std::env::var("BEAR_WARMUP").is_err() {
        plan.warmup = 60_000;
    }
    if std::env::var("BEAR_CYCLES").is_err() {
        plan.measure = 150_000;
    }
    plan
}

fn build_config(plan: &RunPlan) -> SystemConfig {
    bear_bench::config_for(DesignKind::Alloy, BearFeatures::full(), plan)
}

/// Human name for a DRAM-cache traffic class (the bloat category label
/// when it maps back to one).
fn class_name(class: TrafficClass) -> String {
    BloatCategory::ALL
        .iter()
        .find(|c| c.class() == class)
        .map(|c| c.label().to_string())
        .unwrap_or_else(|| format!("class{}", class.0))
}

/// Runs one fully armed cell and returns its stats plus telemetry.
fn run_armed(
    cfg: &SystemConfig,
    workload: &Workload,
    opts: TelemetryOptions,
) -> (bear_core::metrics::RunStats, TelemetryReport) {
    let mut sys = System::try_build(cfg, workload)
        .unwrap_or_else(|e| panic!("building {}: {e}", workload.name));
    sys.set_telemetry(TelemetryConfig::On(opts));
    let stats = sys
        .run_monitored(cfg.warmup_cycles, cfg.measure_cycles)
        .unwrap_or_else(|e| panic!("running {}: {e}", workload.name));
    let report = sys.take_telemetry().expect("armed run yields telemetry");
    (stats, report)
}

/// Exports the ring buffer + transfer log as a Chrome trace document,
/// tagged with the cell's correlation id so the trace joins against
/// telemetry JSONL and metrics for the same cell.
fn export_trace(report: &TelemetryReport, trace_id: &str) -> ChromeTrace {
    const PID_EVENTS: u64 = 1;
    const PID_BANKS: u64 = 2;
    let mut trace = ChromeTrace::new();
    trace.name_process(PID_EVENTS, "simulator");
    trace.set_trace_id(PID_EVENTS, trace_id);
    trace.name_thread(PID_EVENTS, 0, "ObsEvent ring");
    trace.name_process(PID_BANKS, "DRAM cache");
    // One track per (channel, bank) that actually transferred data.
    let mut banks: Vec<(u32, u32)> = report
        .transfers
        .iter()
        .map(|t| (t.channel, t.bank))
        .collect();
    banks.sort_unstable();
    banks.dedup();
    for &(ch, bank) in &banks {
        let tid = u64::from(ch) << 8 | u64::from(bank);
        trace.name_thread(PID_BANKS, tid, &format!("ch{ch} bank{bank}"));
    }
    for (cycle, ev) in &report.events {
        trace.instant(PID_EVENTS, 0, ev.name(), *cycle, &[("line", ev.line())]);
    }
    for t in &report.transfers {
        let tid = u64::from(t.channel) << 8 | u64::from(t.bank);
        trace.complete(
            PID_BANKS,
            tid,
            &class_name(t.class),
            t.start.0,
            (t.finish.0 - t.start.0).max(1),
            &[("write", u64::from(t.is_write))],
        );
    }
    // Windowed counters render as charts above the tracks.
    for s in &report.samples {
        trace.counter(
            PID_EVENTS,
            "read_hit_rate",
            s.end_cycle,
            &[("hit_rate", s.read_hit_rate())],
        );
        trace.counter(
            PID_EVENTS,
            "bloat_factor",
            s.end_cycle,
            &[("factor", s.bloat_factor)],
        );
        trace.counter(
            PID_EVENTS,
            "l4_occupancy",
            s.end_cycle,
            &[("occupied", s.occupancy()), ("dirty", s.dirty_fraction())],
        );
    }
    trace
}

/// Asserts that window sums reproduce the end-of-run aggregates — the
/// invariant that makes the JSONL trustworthy.
fn check_window_sums(stats: &bear_core::metrics::RunStats, report: &TelemetryReport) {
    assert!(!report.samples.is_empty(), "sampling produced no windows");
    let lookups: u64 = report.samples.iter().map(|s| s.read_lookups).sum();
    assert_eq!(
        lookups, stats.l4.read_lookups,
        "window read_lookups must sum to the run total"
    );
    let mem: u64 = report.samples.iter().map(|s| s.mem_bytes).sum();
    assert_eq!(
        mem, stats.mem_bytes,
        "window mem_bytes must sum to the run total"
    );
}

/// Measures that a disarmed system (explicit `TelemetryConfig::Off`) runs
/// within `limit` of one that never touched telemetry, interleaving the
/// two arms and comparing fastest-of-N to reject scheduler noise. One
/// clean round proves the disarmed path carries no intrinsic cost, so a
/// failed round is re-measured (up to three rounds) before it counts —
/// a transient load spike on a small host must not fail the gauntlet.
fn check_off_overhead(cfg: &SystemConfig, workload: &Workload, limit: f64) {
    const ROUNDS: usize = 3;
    for round in 1..=ROUNDS {
        let ratio = measure_off_overhead(cfg, workload);
        println!("overhead when off: {ratio:.4}x (round {round}/{ROUNDS})");
        if ratio < limit {
            return;
        }
    }
    panic!(
        "disarmed telemetry must cost <{:.0}% in at least one of {ROUNDS} rounds",
        (limit - 1.0) * 100.0,
    );
}

/// One fastest-of-N interleaved measurement of the disarmed/untouched
/// wall-clock ratio (see [`check_off_overhead`]).
fn measure_off_overhead(cfg: &SystemConfig, workload: &Workload) -> f64 {
    let mut small = cfg.clone();
    small.warmup_cycles = 20_000;
    // Long enough that a 1% delta clears the host's timer/scheduler noise
    // floor — the event-driven loop made short cells too fast to resolve.
    small.measure_cycles = 400_000;
    let quick = std::env::var("BEAR_BENCH_QUICK").is_ok_and(|v| v != "0");
    let samples = if quick { 5 } else { 9 };
    let run = |disarm: bool| {
        let mut sys = System::try_build(&small, workload).expect("build overhead cell");
        if disarm {
            sys.set_telemetry(TelemetryConfig::Off);
        }
        let t0 = Instant::now();
        sys.run_monitored(small.warmup_cycles, small.measure_cycles)
            .expect("run overhead cell");
        t0.elapsed().as_secs_f64()
    };
    run(false); // warm caches before timing
    let (mut base, mut off) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..samples {
        base = base.min(run(false));
        off = off.min(run(true));
    }
    let ratio = off / base;
    println!("  untouched {base:.4}s, disarmed {off:.4}s");
    ratio
}

fn write(path: &Path, content: &str) {
    std::fs::write(path, content).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

fn main() {
    let args = cli::parse_single_args(std::env::args().skip(1));
    let out = args.out.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("bear_telemetry_demo_{}", std::process::id()))
    });
    std::fs::create_dir_all(&out).unwrap_or_else(|e| panic!("creating {}: {e}", out.display()));
    let plan = demo_plan();
    let cfg = build_config(&plan);
    let window = args.sample_window.unwrap_or(10_000);
    let workloads = bear_workloads::rate_workloads();

    // 1. One fully armed cell: sampling + tracing + profiling.
    let opts = TelemetryOptions {
        sample_window: window,
        ring_capacity: 4096,
        trace: true,
        profile: true,
    };
    let (stats, report) = run_armed(&cfg, &workloads[0], opts);
    check_window_sums(&stats, &report);
    println!(
        "{} × {}: {} windows, {} ring events, {} transfers",
        cfg.design.label(),
        workloads[0].name,
        report.samples.len(),
        report.events.len(),
        report.transfers.len()
    );

    // Time series: the same JSONL the campaign's --telemetry flag writes.
    let sink = TelemetrySink::new(&out, Some(window));
    let jsonl_path = sink
        .write(&cfg, &workloads[0], &report.samples)
        .expect("write sample JSONL");
    let jsonl = std::fs::read_to_string(&jsonl_path).expect("read back JSONL");
    for (i, line) in jsonl.lines().enumerate() {
        Json::parse(line).unwrap_or_else(|e| panic!("JSONL line {} must re-parse: {e}", i + 1));
    }
    println!(
        "wrote {} ({} lines, all re-parsed)",
        jsonl_path.display(),
        jsonl.lines().count()
    );

    // Chrome trace: validated by re-parsing the document. The cell's
    // trace id is the FNV digest of its (design, workload) name — the
    // same stable-id scheme the daemon threads through job telemetry.
    let trace_id = bear_telemetry::TraceId::from_name(&format!(
        "{}/{}",
        cfg.design.label(),
        workloads[0].name
    ))
    .to_string();
    let trace = export_trace(&report, &trace_id);
    let trace_json = trace.to_json();
    Json::parse(&trace_json).unwrap_or_else(|e| panic!("trace.json must re-parse: {e}"));
    assert!(
        trace_json.contains(&trace_id),
        "trace.json must carry the cell's trace id"
    );
    write(&out.join("trace.json"), &trace_json);

    // 2. A second cell with profiling only, to demonstrate campaign-wide
    // profile aggregation across cells.
    let (_, report2) = run_armed(
        &cfg,
        &workloads[1],
        TelemetryOptions {
            sample_window: window,
            profile: true,
            ..TelemetryOptions::default()
        },
    );
    let mut campaign = report.profile.clone();
    campaign.merge(&report2.profile);
    let mut profile_text = String::new();
    profile_text.push_str(
        &report
            .profile
            .report(&format!("cell {}", workloads[0].name), 8),
    );
    profile_text.push('\n');
    profile_text.push_str(
        &report2
            .profile
            .report(&format!("cell {}", workloads[1].name), 8),
    );
    profile_text.push('\n');
    profile_text.push_str(&campaign.report("campaign (all cells)", 8));
    write(&out.join("self_profile.txt"), &profile_text);

    // 3. Telemetry must be free when off.
    check_off_overhead(&cfg, &workloads[0], 1.01);
    println!("telemetry demo OK");
}
