//! Host self-profiler: where did the wall-clock time of a campaign go?
//!
//! Phases are identified by `&'static str` labels; recording is a linear
//! scan over a handful of entries (the phase count is small and labels
//! usually compare pointer-equal), cheap enough to call once per tick
//! phase when armed and trivially absent when not.

use std::time::Instant;

/// Accumulated wall-clock time per named phase.
#[derive(Debug, Clone, Default)]
pub struct SelfProfiler {
    entries: Vec<PhaseTotal>,
}

#[derive(Debug, Clone)]
struct PhaseTotal {
    name: &'static str,
    total_ns: u64,
    count: u64,
}

impl SelfProfiler {
    /// An empty profiler (`const`, so it can seed a `static` — the
    /// campaign supervisor keeps its recovery counters in one).
    pub const fn new() -> Self {
        SelfProfiler {
            entries: Vec::new(),
        }
    }

    /// Adds `ns` nanoseconds to `name`'s running total.
    pub fn record(&mut self, name: &'static str, ns: u64) {
        for e in &mut self.entries {
            // Labels are literals, so try pointer equality before the
            // string compare.
            if std::ptr::eq(e.name, name) || e.name == name {
                e.total_ns += ns;
                e.count += 1;
                return;
            }
        }
        self.entries.push(PhaseTotal {
            name,
            total_ns: ns,
            count: 1,
        });
    }

    /// Records an instantaneous occurrence of `name`: a pure event-count
    /// bump that adds zero time. The campaign supervisor uses this for
    /// discrete recovery events (retries, healed cells, quarantines)
    /// where the *count* is the signal and duration is meaningless.
    pub fn bump(&mut self, name: &'static str) {
        self.record(name, 0);
    }

    /// Times `f` under `name`.
    pub fn time<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.record(name, t0.elapsed().as_nanos() as u64);
        r
    }

    /// Folds another profiler's totals into this one (for campaign-wide
    /// aggregation across cells).
    pub fn merge(&mut self, other: &SelfProfiler) {
        for e in &other.entries {
            match self.entries.iter_mut().find(|m| m.name == e.name) {
                Some(mine) => {
                    mine.total_ns += e.total_ns;
                    mine.count += e.count;
                }
                None => self.entries.push(e.clone()),
            }
        }
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total recorded nanoseconds across all phases.
    pub fn total_ns(&self) -> u64 {
        self.entries.iter().map(|e| e.total_ns).sum()
    }

    /// `(name, total_ns, count)` rows, unordered.
    pub fn rows(&self) -> impl Iterator<Item = (&'static str, u64, u64)> + '_ {
        self.entries.iter().map(|e| (e.name, e.total_ns, e.count))
    }

    /// A top-`n` text report: one line per phase, sorted by total time,
    /// with share of the recorded total, call count, and mean cost.
    pub fn report(&self, title: &str, n: usize) -> String {
        let mut rows: Vec<&PhaseTotal> = self.entries.iter().collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));
        let total = self.total_ns().max(1);
        let mut out = format!("self-profile: {title}\n");
        out.push_str(&format!(
            "{:<22} {:>12} {:>7} {:>12} {:>12}\n",
            "phase", "total", "share", "calls", "mean"
        ));
        for e in rows.iter().take(n) {
            out.push_str(&format!(
                "{:<22} {:>12} {:>6.1}% {:>12} {:>12}\n",
                e.name,
                fmt_ns(e.total_ns),
                100.0 * e.total_ns as f64 / total as f64,
                e.count,
                fmt_ns(e.total_ns / e.count.max(1)),
            ));
        }
        if rows.len() > n {
            let rest: u64 = rows[n..].iter().map(|e| e.total_ns).sum();
            out.push_str(&format!(
                "{:<22} {:>12} {:>6.1}%\n",
                format!("(+{} more)", rows.len() - n),
                fmt_ns(rest),
                100.0 * rest as f64 / total as f64
            ));
        }
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports_sorted() {
        let mut p = SelfProfiler::new();
        p.record("dram", 3_000);
        p.record("l3", 1_000);
        p.record("dram", 2_000);
        assert_eq!(p.total_ns(), 6_000);
        let report = p.report("cell", 10);
        let dram_at = report.find("dram").unwrap();
        let l3_at = report.find("l3").unwrap();
        assert!(dram_at < l3_at, "expected dram first in:\n{report}");
        assert!(report.contains("5.00us"));
    }

    #[test]
    fn time_measures_closures() {
        let mut p = SelfProfiler::new();
        let v = p.time("work", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(p.rows().count(), 1);
        let (name, _ns, count) = p.rows().next().unwrap();
        assert_eq!((name, count), ("work", 1));
    }

    #[test]
    fn bump_counts_events_without_time() {
        let mut p = SelfProfiler::new();
        p.bump("supervisor.retry");
        p.bump("supervisor.retry");
        assert_eq!(p.total_ns(), 0, "bumps add no time");
        let rows: Vec<_> = p.rows().collect();
        assert_eq!(rows, vec![("supervisor.retry", 0, 2)]);
    }

    #[test]
    fn merge_accumulates_across_cells() {
        let mut a = SelfProfiler::new();
        a.record("l4", 10);
        let mut b = SelfProfiler::new();
        b.record("l4", 30);
        b.record("oracle", 5);
        a.merge(&b);
        let mut rows: Vec<_> = a.rows().collect();
        rows.sort();
        assert_eq!(rows, vec![("l4", 40, 2), ("oracle", 5, 1)]);
    }

    #[test]
    fn report_truncates_to_top_n() {
        let mut p = SelfProfiler::new();
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            p.record(name, (i as u64 + 1) * 100);
        }
        let report = p.report("x", 2);
        assert!(report.contains("(+2 more)"));
        assert!(!report.contains("\na "));
    }
}
