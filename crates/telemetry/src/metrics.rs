//! Dependency-free metrics registry: labelled atomic counters, gauges,
//! and fixed-bucket histograms, plus lightweight spans carrying a
//! correlation/trace ID.
//!
//! The registry is the live side of the observability stack: handles are
//! cheap `Arc`'d atomics that hot paths update lock-free, while the
//! registry itself (a `BTreeMap` behind a mutex) is only locked on
//! metric *creation* and on snapshot. Two encoders read it:
//!
//! - [`Registry::to_json`] — a stable (sorted by name, then labels) JSON
//!   document, the machine-readable dump written by `--metrics-out` and
//!   served by the daemon's `{"op":"metrics"}` request;
//! - [`Registry::exposition`] — Prometheus-style text exposition
//!   (`# HELP` / `# TYPE` comments, `name{label="v"} value` samples,
//!   cumulative `_bucket`/`_sum`/`_count` histogram series).
//!
//! Everything here is observability-only: nothing in the simulator's
//! deterministic outputs may depend on registry contents.

use crate::{escape_json, json_num};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (stored as `f64` bits).
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Finite upper bounds, ascending. An implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// One cell per bound plus the `+Inf` overflow cell.
    buckets: Vec<AtomicU64>,
    /// Sum of observed values, as `f64` bits (CAS-updated).
    sum_bits: AtomicU64,
}

/// A histogram with fixed upper-bound buckets chosen at creation.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .core
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.core.bounds.len());
        self.core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.core.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

/// Registry key: metric name plus its label set, sorted by label key so
/// equal label sets written in different orders land on one series.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    slots: BTreeMap<MetricKey, Slot>,
    help: BTreeMap<String, String>,
}

/// A shared, thread-safe registry of named metrics.
///
/// Cloning is cheap (an `Arc`); all clones see the same metrics.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned registry only ever holds observability data; keep
        // serving it rather than cascading the panic.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns (creating on first use) the counter `name{labels}`.
    ///
    /// # Panics
    ///
    /// If the same (name, labels) series was already registered as a
    /// different metric kind — a programming error.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let mut inner = self.lock();
        let slot = inner.slots.entry(key).or_insert_with(|| {
            Slot::Counter(Counter {
                cell: Arc::new(AtomicU64::new(0)),
            })
        });
        match slot {
            Slot::Counter(c) => c.clone(),
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Returns (creating on first use, initially `0.0`) the gauge
    /// `name{labels}`.
    ///
    /// # Panics
    ///
    /// If the series exists with a different kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let mut inner = self.lock();
        let slot = inner.slots.entry(key).or_insert_with(|| {
            Slot::Gauge(Gauge {
                bits: Arc::new(AtomicU64::new(0f64.to_bits())),
            })
        });
        match slot {
            Slot::Gauge(g) => g.clone(),
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Returns (creating on first use) the histogram `name{labels}` with
    /// the given finite upper `bounds` (ascending; an `+Inf` overflow
    /// bucket is implicit). Bounds are fixed at creation; later calls
    /// return the existing series and ignore `bounds`.
    ///
    /// # Panics
    ///
    /// If `bounds` is empty or not strictly ascending, or the series
    /// exists with a different kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram {name} needs >= 1 bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name} bounds must be strictly ascending"
        );
        let key = MetricKey::new(name, labels);
        let mut inner = self.lock();
        let slot = inner.slots.entry(key).or_insert_with(|| {
            Slot::Histogram(Histogram {
                core: Arc::new(HistogramCore {
                    bounds: bounds.to_vec(),
                    buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    sum_bits: AtomicU64::new(0f64.to_bits()),
                }),
            })
        });
        match slot {
            Slot::Histogram(h) => h.clone(),
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Attaches a `# HELP` line to every series named `name`.
    pub fn set_help(&self, name: &str, help: &str) {
        self.lock().help.insert(name.to_string(), help.to_string());
    }

    /// Whether no series has been registered.
    pub fn is_empty(&self) -> bool {
        self.lock().slots.is_empty()
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.lock().slots.len()
    }

    /// Stable JSON dump: `{"metrics":[...]}` with entries sorted by name
    /// then labels. Counter values are exact integers; gauges and
    /// histogram sums use the shortest round-trip `f64` rendering;
    /// histogram buckets carry per-bucket (non-cumulative) counts with
    /// the overflow bucket's `le` serialized as the string `"+Inf"`.
    pub fn to_json(&self) -> String {
        let inner = self.lock();
        let mut out = String::from("{\"metrics\":[");
        for (i, (key, slot)) in inner.slots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{\"name\":\"");
            out.push_str(&escape_json(&key.name));
            out.push_str("\",\"kind\":\"");
            out.push_str(slot.kind());
            out.push_str("\",\"labels\":{");
            for (j, (k, v)) in key.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&escape_json(k));
                out.push_str("\":\"");
                out.push_str(&escape_json(v));
                out.push('"');
            }
            out.push('}');
            match slot {
                Slot::Counter(c) => {
                    out.push_str(",\"value\":");
                    out.push_str(&c.get().to_string());
                }
                Slot::Gauge(g) => {
                    out.push_str(",\"value\":");
                    out.push_str(&json_num(g.get()));
                }
                Slot::Histogram(h) => {
                    out.push_str(",\"count\":");
                    out.push_str(&h.count().to_string());
                    out.push_str(",\"sum\":");
                    out.push_str(&json_num(h.sum()));
                    out.push_str(",\"buckets\":[");
                    for (j, bucket) in h.core.buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str("{\"le\":");
                        match h.core.bounds.get(j) {
                            Some(b) => out.push_str(&json_num(*b)),
                            None => out.push_str("\"+Inf\""),
                        }
                        out.push_str(",\"count\":");
                        out.push_str(&bucket.load(Ordering::Relaxed).to_string());
                        out.push('}');
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// Prometheus-style text exposition. `# HELP` / `# TYPE` are emitted
    /// once per metric name; histogram buckets are cumulative and end in
    /// `le="+Inf"`, followed by `_sum` and `_count` series.
    pub fn exposition(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        let mut announced: Option<&str> = None;
        for (key, slot) in inner.slots.iter() {
            if announced != Some(key.name.as_str()) {
                if let Some(help) = inner.help.get(&key.name) {
                    out.push_str(&format!(
                        "# HELP {} {}\n",
                        key.name,
                        help.replace('\\', "\\\\").replace('\n', "\\n")
                    ));
                }
                out.push_str(&format!("# TYPE {} {}\n", key.name, slot.kind()));
                announced = Some(key.name.as_str());
            }
            match slot {
                Slot::Counter(c) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        key.name,
                        render_labels(&key.labels, None),
                        c.get()
                    ));
                }
                Slot::Gauge(g) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        key.name,
                        render_labels(&key.labels, None),
                        json_num(g.get())
                    ));
                }
                Slot::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (j, bucket) in h.core.buckets.iter().enumerate() {
                        cumulative += bucket.load(Ordering::Relaxed);
                        let le = match h.core.bounds.get(j) {
                            Some(b) => json_num(*b),
                            None => "+Inf".to_string(),
                        };
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            key.name,
                            render_labels(&key.labels, Some(&le)),
                            cumulative
                        ));
                    }
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        key.name,
                        render_labels(&key.labels, None),
                        json_num(h.sum())
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        key.name,
                        render_labels(&key.labels, None),
                        cumulative
                    ));
                }
            }
        }
        out
    }
}

/// Renders `{k="v",...}` (empty string for no labels), appending an
/// `le` label when given (histogram bucket lines).
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{}\"", escape_label(le)));
    }
    format!("{{{}}}", parts.join(","))
}

/// Prometheus label-value escaping: backslash, double quote, newline.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// A 64-bit correlation/trace ID, rendered as 16 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Derives a stable ID from a name (FNV-1a, the same hash the
    /// campaign uses for cell/job keys — a job's trace ID equals the
    /// hash of its canonical spec line, so retries and resumed runs
    /// share one trace).
    pub fn from_name(name: &str) -> TraceId {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TraceId(h)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// An open span: a named interval tied to a trace ID. Wall-clock only —
/// spans observe the *host*, never simulated time.
#[derive(Debug)]
pub struct Span {
    name: String,
    trace: TraceId,
    start: Instant,
}

impl Span {
    /// Opens a span now.
    pub fn begin(name: &str, trace: TraceId) -> Span {
        Span {
            name: name.to_string(),
            trace,
            start: Instant::now(),
        }
    }

    /// Closes the span, returning its record.
    pub fn end(self) -> SpanRecord {
        SpanRecord {
            name: self.name,
            trace: self.trace,
            dur_us: self.start.elapsed().as_micros() as u64,
        }
    }
}

/// A closed span, ready for serialization.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name.
    pub name: String,
    /// Correlation ID shared by every record of one logical operation.
    pub trace: TraceId,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
}

impl SpanRecord {
    /// One JSONL line: `{"span":...,"trace":"<16 hex>","dur_us":N}`.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"span\":\"{}\",\"trace\":\"{}\",\"dur_us\":{}}}",
            escape_json(&self.name),
            self.trace,
            self.dur_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_one_cell() {
        let reg = Registry::new();
        let a = reg.counter("jobs_total", &[("client", "alice")]);
        let b = reg.counter("jobs_total", &[("client", "alice")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = Registry::new();
        let a = reg.counter("x", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("x", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x", &[]);
        reg.gauge("x", &[]);
    }

    #[test]
    fn gauge_round_trips_f64() {
        let reg = Registry::new();
        let g = reg.gauge("depth", &[]);
        g.set(3.25);
        assert_eq!(g.get(), 3.25);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let reg = Registry::new();
        let h = reg.histogram("lat_ms", &[], &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 55.5);
        let text = reg.exposition();
        assert!(text.contains("# TYPE lat_ms histogram"));
        assert!(text.contains("lat_ms_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_ms_bucket{le=\"10\"} 2"));
        assert!(text.contains("lat_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ms_sum 55.5"));
        assert!(text.contains("lat_ms_count 3"));
    }

    #[test]
    fn json_dump_is_stable_and_balanced() {
        let reg = Registry::new();
        reg.counter("b_total", &[("k", "v")]).inc();
        reg.gauge("a_gauge", &[]).set(1.5);
        reg.histogram("c_hist", &[], &[2.0]).observe(1.0);
        let dump = reg.to_json();
        assert_eq!(dump, reg.to_json(), "dump must be deterministic");
        assert_eq!(dump.matches('{').count(), dump.matches('}').count());
        assert_eq!(dump.matches('[').count(), dump.matches(']').count());
        // BTreeMap order: a_gauge before b_total before c_hist.
        let a = dump.find("a_gauge").unwrap();
        let b = dump.find("b_total").unwrap();
        let c = dump.find("c_hist").unwrap();
        assert!(a < b && b < c);
        assert!(dump.contains("\"le\":\"+Inf\""));
    }

    #[test]
    fn exposition_emits_type_once_and_help() {
        let reg = Registry::new();
        reg.set_help("jobs_total", "Jobs admitted per client");
        reg.counter("jobs_total", &[("client", "alice")]).inc();
        reg.counter("jobs_total", &[("client", "bob")]).add(2);
        let text = reg.exposition();
        assert_eq!(text.matches("# TYPE jobs_total counter").count(), 1);
        assert_eq!(text.matches("# HELP jobs_total").count(), 1);
        assert!(text.contains("jobs_total{client=\"alice\"} 1"));
        assert!(text.contains("jobs_total{client=\"bob\"} 2"));
    }

    #[test]
    fn trace_ids_are_stable_hex() {
        let a = TraceId::from_name("fig07|Alloy|mcf");
        let b = TraceId::from_name("fig07|Alloy|mcf");
        assert_eq!(a, b);
        let s = a.to_string();
        assert_eq!(s.len(), 16);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(a, TraceId::from_name("fig07|Alloy|lbm"));
    }

    #[test]
    fn span_record_line_is_balanced() {
        let rec = Span::begin("run_cell", TraceId(0xabcd)).end();
        let line = rec.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"trace\":\"000000000000abcd\""));
        assert!(line.contains("\"span\":\"run_cell\""));
    }
}
