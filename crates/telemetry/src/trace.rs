//! Incremental Chrome Trace Event Format builder.
//!
//! Produces the JSON object format (`{"traceEvents": [...]}`) described
//! by the Trace Event Format spec and understood by `chrome://tracing`
//! and Perfetto. Timestamps are microseconds; the simulator maps one
//! core cycle to one microsecond of virtual time (documented in
//! EXPERIMENTS.md — only relative durations matter for inspection).

use crate::escape_json;

/// Builder accumulating serialized trace events.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Number of events recorded so far (metadata included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names a process track (`ph: "M"` metadata event).
    pub fn name_process(&mut self, pid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(name)
        ));
    }

    /// Tags a process track with a correlation/trace id (`ph: "M"`
    /// metadata event named `trace_id`) so one trace file can be joined
    /// against telemetry JSONL lines and metrics carrying the same id.
    pub fn set_trace_id(&mut self, pid: u64, trace: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"trace_id\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(trace)
        ));
    }

    /// Names a thread track (`ph: "M"` metadata event).
    pub fn name_thread(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(name)
        ));
    }

    /// A complete event (`ph: "X"`): a named span of `dur_us` starting at
    /// `ts_us` on the given track, with numeric args.
    pub fn complete(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        ts_us: u64,
        dur_us: u64,
        args: &[(&str, u64)],
    ) {
        self.events.push(format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{}\",\
             \"ts\":{ts_us},\"dur\":{dur_us},\"args\":{}}}",
            escape_json(name),
            render_args(args)
        ));
    }

    /// A thread-scoped instant event (`ph: "i"`).
    pub fn instant(&mut self, pid: u64, tid: u64, name: &str, ts_us: u64, args: &[(&str, u64)]) {
        self.events.push(format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{}\",\
             \"ts\":{ts_us},\"args\":{}}}",
            escape_json(name),
            render_args(args)
        ));
    }

    /// A counter event (`ph: "C"`): stacked series rendered as a chart.
    pub fn counter(&mut self, pid: u64, name: &str, ts_us: u64, series: &[(&str, f64)]) {
        let body: Vec<String> = series
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", escape_json(k), crate::json_num(*v)))
            .collect();
        self.events.push(format!(
            "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"name\":\"{}\",\
             \"ts\":{ts_us},\"args\":{{{}}}}}",
            escape_json(name),
            body.join(",")
        ));
    }

    /// Serializes the whole trace as a `trace.json` document.
    pub fn to_json(&self) -> String {
        let mut out =
            String::with_capacity(self.events.iter().map(|e| e.len() + 2).sum::<usize>() + 64);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str(ev);
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}

fn render_args(args: &[(&str, u64)]) -> String {
    let body: Vec<String> = args
        .iter()
        .map(|(k, v)| format!("\"{}\":{v}", escape_json(k)))
        .collect();
    format!("{{{}}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_well_formed_document() {
        let mut t = ChromeTrace::new();
        t.name_process(1, "DRAM cache");
        t.name_thread(1, 3, "ch0 bank3");
        t.complete(1, 3, "miss_fill", 100, 4, &[("line", 0x7f)]);
        t.instant(2, 1, "Bypassed", 104, &[("line", 127)]);
        t.counter(3, "bloat", 110, &[("factor", 1.5)]);
        let json = t.to_json();
        assert_eq!(t.len(), 5);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"dur\":4"));
        assert!(json.contains("\"factor\":1.5"));
        // Events are comma-separated: n events need n-1 separators at line
        // ends.
        assert_eq!(json.matches(",\n").count(), t.len() - 1);
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let t = ChromeTrace::new();
        assert!(t.is_empty());
        assert!(t.to_json().contains("\"traceEvents\":[\n]"));
    }

    #[test]
    fn trace_id_metadata_round_trips() {
        let mut t = ChromeTrace::new();
        t.set_trace_id(1, "00c0ffee00c0ffee");
        let json = t.to_json();
        assert!(json.contains("\"name\":\"trace_id\""));
        assert!(json.contains("00c0ffee00c0ffee"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn names_are_escaped() {
        let mut t = ChromeTrace::new();
        t.name_process(1, "a\"b");
        assert!(t.to_json().contains("a\\\"b"));
    }
}
