//! A bounded ring buffer that keeps the most recent items.

use std::collections::VecDeque;

/// Fixed-capacity buffer: pushing beyond capacity evicts the oldest item.
///
/// Used for the "last 256 `ObsEvent`s" trace/divergence context — the
/// interesting part of an event stream is almost always its tail.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    cap: usize,
    buf: VecDeque<T>,
}

impl<T> RingBuffer<T> {
    /// A ring holding at most `cap` items (`cap == 0` keeps nothing).
    pub fn new(cap: usize) -> Self {
        RingBuffer {
            cap,
            buf: VecDeque::with_capacity(cap),
        }
    }

    /// Appends `item`, evicting the oldest entry when full.
    pub fn push(&mut self, item: T) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(item);
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of retained items.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Consumes the ring, returning retained items oldest → newest.
    pub fn into_vec(self) -> Vec<T> {
        self.buf.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_the_newest() {
        let mut r = RingBuffer::new(3);
        for i in 0..10 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.into_vec(), vec![7, 8, 9]);
    }

    #[test]
    fn under_capacity_keeps_everything_in_order() {
        let mut r = RingBuffer::new(8);
        r.push('a');
        r.push('b');
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![&'a', &'b']);
        assert!(!r.is_empty());
        assert_eq!(r.capacity(), 8);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut r = RingBuffer::new(0);
        r.push(1);
        assert!(r.is_empty());
    }
}
