//! Observability primitives for the BEAR campaign.
//!
//! This crate is deliberately dependency-free and knows nothing about the
//! simulator: it defines the *shapes* observability data comes in and the
//! encoders that turn them into files, while `bear-core` / `bear-bench`
//! own the hooks that fill them in.
//!
//! Three facilities:
//!
//! - [`Sample`] — one windowed time-series snapshot (every N cycles) of
//!   hit/miss rates, per-category bus bytes, instantaneous Bloat Factor,
//!   L4 occupancy, BAB duel state, DCP/NTC/MAP-I counters, and per-bank
//!   DRAM queue depths. Serialized one-per-line as JSONL.
//! - [`ChromeTrace`] — an incremental builder for the Chrome Trace Event
//!   Format (`trace.json`, loadable in `chrome://tracing` or Perfetto),
//!   used to export the `ObsEvent` ring buffer and DRAM transfer log with
//!   one track per bank/component.
//! - [`SelfProfiler`] — scoped wall-clock timers around host-side tick
//!   phases, aggregated into a top-N "where did the campaign go" report.
//! - [`Registry`] — labelled atomic counters/gauges/histograms with a
//!   stable JSON dump and Prometheus-style text exposition, plus
//!   [`Span`]s carrying a correlation [`TraceId`] (see
//!   [`metrics`](crate::metrics) module docs).
//!
//! Everything here is inert unless armed: the simulator gates its hooks
//! behind both a `telemetry` cargo feature and a runtime
//! [`TelemetryConfig::Off`] default, so disabled runs pay nothing.

pub mod metrics;
mod profile;
mod ring;
mod sample;
mod trace;

pub use metrics::{Counter, Gauge, Histogram, Registry, Span, SpanRecord, TraceId};
pub use profile::SelfProfiler;
pub use ring::RingBuffer;
pub use sample::{Sample, CACHE_BYTE_KEYS};
pub use trace::ChromeTrace;

/// Runtime switch for the whole observability layer.
///
/// `Off` is the default everywhere; experiment reports must be
/// byte-identical with telemetry off (a guard test in `bear-bench`
/// enforces this).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TelemetryConfig {
    /// No sampling, no tracing, no profiling. The simulator holds no
    /// telemetry state at all in this mode.
    #[default]
    Off,
    /// Telemetry armed with the given options.
    On(TelemetryOptions),
}

impl TelemetryConfig {
    /// Sampling-only telemetry with the given window (cycles).
    pub fn sampling(sample_window: u64) -> Self {
        TelemetryConfig::On(TelemetryOptions {
            sample_window,
            ..TelemetryOptions::default()
        })
    }

    /// Everything armed: sampling, event/transfer tracing, profiling.
    pub fn full(sample_window: u64) -> Self {
        TelemetryConfig::On(TelemetryOptions {
            sample_window,
            trace: true,
            profile: true,
            ..TelemetryOptions::default()
        })
    }
}

/// Knobs for an armed telemetry session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryOptions {
    /// Sample window length in cycles (default 10k). Windows are aligned
    /// to the warmup→measure boundary; the final partial window is
    /// flushed so window sums always equal end-of-run aggregates.
    pub sample_window: u64,
    /// Capacity of the `ObsEvent` ring buffer kept for trace export and
    /// divergence context (default 256, per the repro format).
    pub ring_capacity: usize,
    /// Record functional events and DRAM transfer begin/end for Chrome
    /// trace export.
    pub trace: bool,
    /// Arm the host self-profiler around tick phases.
    pub profile: bool,
}

/// A handle that streams [`Sample`]s out of a running simulation the
/// moment each window closes, instead of (not in addition to — the
/// receiver side decides what to persist) waiting for the end-of-run
/// report. The campaign daemon hands one to each telemetry-armed job and
/// forwards the samples over the client's socket as JSONL while the job
/// runs.
///
/// Sends are non-blocking and infallible from the producer's view: a
/// dropped receiver (client went away mid-run) silently discards further
/// samples rather than stalling or failing the simulation.
#[derive(Debug, Clone)]
pub struct LiveSink {
    tx: std::sync::mpsc::Sender<Sample>,
}

impl LiveSink {
    /// Forwards one closed window. Errors (receiver gone) are swallowed:
    /// telemetry is passive and must never affect the run.
    pub fn send(&self, sample: Sample) {
        self.tx.send(sample).ok();
    }
}

/// Creates a live sample stream: the [`LiveSink`] goes to the simulator
/// (via `System::set_telemetry_live`), the receiver to whoever forwards
/// or records the samples.
pub fn live_channel() -> (LiveSink, std::sync::mpsc::Receiver<Sample>) {
    let (tx, rx) = std::sync::mpsc::channel();
    (LiveSink { tx }, rx)
}

/// Default `ObsEvent` ring capacity (also the number of context events a
/// shrunk fuzz repro carries).
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// Default sample window in cycles.
pub const DEFAULT_SAMPLE_WINDOW: u64 = 10_000;

impl Default for TelemetryOptions {
    fn default() -> Self {
        TelemetryOptions {
            sample_window: DEFAULT_SAMPLE_WINDOW,
            ring_capacity: DEFAULT_RING_CAPACITY,
            trace: false,
            profile: false,
        }
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a finite f64 as a JSON number (non-finite values become 0).
pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_default_is_off() {
        assert_eq!(TelemetryConfig::default(), TelemetryConfig::Off);
    }

    #[test]
    fn full_arms_everything() {
        let TelemetryConfig::On(opts) = TelemetryConfig::full(5_000) else {
            panic!("expected On");
        };
        assert_eq!(opts.sample_window, 5_000);
        assert!(opts.trace);
        assert!(opts.profile);
        assert_eq!(opts.ring_capacity, DEFAULT_RING_CAPACITY);
    }

    #[test]
    fn escape_handles_quotes_and_control() {
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn live_sink_streams_and_survives_a_dropped_receiver() {
        let (sink, rx) = live_channel();
        let sample = Sample {
            window: 3,
            ..Sample::default()
        };
        sink.send(sample.clone());
        assert_eq!(rx.recv().unwrap(), sample);
        drop(rx);
        sink.send(sample); // must not panic or error out
    }

    #[test]
    fn json_num_sanitizes_non_finite() {
        assert_eq!(json_num(1.5), "1.5");
        assert_eq!(json_num(f64::NAN), "0");
        assert_eq!(json_num(f64::INFINITY), "0");
    }
}
