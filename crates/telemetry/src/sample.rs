//! One windowed time-series snapshot and its JSONL encoding.

use crate::{escape_json, json_num};

/// JSON keys for the per-category DRAM-cache byte counters, in the same
/// order as `bear_core::traffic::BloatCategory::ALL` (a test over there
/// pins the correspondence).
pub const CACHE_BYTE_KEYS: [&str; 8] = [
    "hit",
    "miss_probe",
    "miss_fill",
    "wb_probe",
    "wb_update",
    "wb_fill",
    "victim_read",
    "lru_update",
];

/// One sample window.
///
/// All counter fields are **deltas over the window** (counters reset
/// between windows), so summing any field across a run's samples yields
/// exactly the end-of-run aggregate. `occupied_lines` / `dirty_lines` /
/// `bab_psel` / `bab_engaged` / `bank_queue_depths` are point-in-time
/// state at the window's closing edge.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Sample {
    /// Window index, starting at 0 at the warmup→measure boundary.
    pub window: u64,
    /// First cycle covered (inclusive).
    pub start_cycle: u64,
    /// Cycle the window closed at (exclusive).
    pub end_cycle: u64,
    /// Instructions retired across all cores during the window.
    pub insts_retired: u64,
    /// L3 hits during the window.
    pub l3_hits: u64,
    /// L3 misses during the window.
    pub l3_misses: u64,
    /// L4 demand-read lookups.
    pub read_lookups: u64,
    /// L4 demand-read hits.
    pub read_hits: u64,
    /// L4 writeback lookups.
    pub wb_lookups: u64,
    /// L4 writeback hits (update-in-place).
    pub wb_hits: u64,
    /// L4 fills.
    pub fills: u64,
    /// BAB bypasses.
    pub bypasses: u64,
    /// L4 evictions.
    pub evictions: u64,
    /// Useful (demanded) lines delivered.
    pub useful_lines: u64,
    /// Miss Probes avoided (NTC / SRAM tags).
    pub miss_probes_avoided: u64,
    /// Writeback Probes avoided (DCP / inclusive / SRAM tags).
    pub wb_probes_avoided: u64,
    /// Parallel memory reads squashed before issue.
    pub parallel_squashed: u64,
    /// Parallel memory reads issued but wasted.
    pub wasted_parallel: u64,
    /// DRAM-cache bus bytes by `BloatCategory` (see [`CACHE_BYTE_KEYS`]),
    /// metered at CAS issue by the device model.
    pub cache_bytes_by_class: [u64; 8],
    /// Main-memory bus bytes.
    pub mem_bytes: u64,
    /// DRAM-cache bytes *attributed* by the bandwidth-attribution ledger
    /// during the window, same key order as `cache_bytes_by_class`.
    /// Charged at submit time, so a window's attribution can lead the
    /// device meters by whatever is still queued; over a whole run the
    /// two columns reconcile (the conservation invariant).
    pub attributed_bytes_by_class: [u64; 8],
    /// Instantaneous Bloat Factor over the window (cache bytes moved per
    /// useful byte delivered), as computed by the core's accounting.
    pub bloat_factor: f64,
    /// Valid L4 lines at the window edge.
    pub occupied_lines: u64,
    /// Dirty L4 lines at the window edge.
    pub dirty_lines: u64,
    /// Total L4 line capacity (0 when the design exposes no probe).
    pub capacity_lines: u64,
    /// BAB set-dueling counters `[base misses, base accesses, PB misses,
    /// PB accesses]` at the window edge.
    pub bab_psel: [u64; 4],
    /// Whether follower sets currently use the bypass policy.
    pub bab_engaged: bool,
    /// Demand misses bypassed during the window.
    pub bab_bypassed: u64,
    /// Demand misses filled during the window.
    pub bab_filled: u64,
    /// NTC answers "present" during the window.
    pub ntc_hits_present: u64,
    /// NTC answers "absent" during the window.
    pub ntc_hits_absent: u64,
    /// NTC answers "unknown" during the window.
    pub ntc_unknowns: u64,
    /// MAP-I predictions proven correct during the window.
    pub predictor_correct: u64,
    /// MAP-I predictions proven wrong during the window.
    pub predictor_wrong: u64,
    /// Per-bank DRAM-cache queue depth (queued + in flight) at the window
    /// edge, indexed `channel * banks_per_channel + bank`.
    pub bank_queue_depths: Vec<u32>,
}

impl Sample {
    /// L4 demand-read hit rate within the window.
    pub fn read_hit_rate(&self) -> f64 {
        ratio(self.read_hits, self.read_lookups)
    }

    /// L3 hit rate within the window.
    pub fn l3_hit_rate(&self) -> f64 {
        ratio(self.l3_hits, self.l3_hits + self.l3_misses)
    }

    /// Fraction of L4 lines valid at the window edge.
    pub fn occupancy(&self) -> f64 {
        ratio(self.occupied_lines, self.capacity_lines)
    }

    /// Fraction of L4 lines dirty at the window edge.
    pub fn dirty_fraction(&self) -> f64 {
        ratio(self.dirty_lines, self.capacity_lines)
    }

    /// MAP-I accuracy within the window.
    pub fn map_i_accuracy(&self) -> f64 {
        ratio(
            self.predictor_correct,
            self.predictor_correct + self.predictor_wrong,
        )
    }

    /// Total DRAM-cache bus bytes in the window.
    pub fn cache_bytes(&self) -> u64 {
        self.cache_bytes_by_class.iter().sum()
    }

    /// Serializes the sample as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(640);
        s.push('{');
        s.push_str(&format!(
            "\"window\":{},\"start\":{},\"end\":{},\"insts\":{},",
            self.window, self.start_cycle, self.end_cycle, self.insts_retired
        ));
        s.push_str(&format!(
            "\"l3\":{{\"hits\":{},\"misses\":{}}},",
            self.l3_hits, self.l3_misses
        ));
        s.push_str(&format!(
            "\"l4\":{{\"read_lookups\":{},\"read_hits\":{},\"wb_lookups\":{},\"wb_hits\":{},\
             \"fills\":{},\"bypasses\":{},\"evictions\":{},\"useful_lines\":{},\
             \"miss_probes_avoided\":{},\"wb_probes_avoided\":{},\"parallel_squashed\":{},\
             \"wasted_parallel\":{}}},",
            self.read_lookups,
            self.read_hits,
            self.wb_lookups,
            self.wb_hits,
            self.fills,
            self.bypasses,
            self.evictions,
            self.useful_lines,
            self.miss_probes_avoided,
            self.wb_probes_avoided,
            self.parallel_squashed,
            self.wasted_parallel
        ));
        s.push_str("\"bytes\":{");
        for (key, bytes) in CACHE_BYTE_KEYS.iter().zip(self.cache_bytes_by_class) {
            s.push_str(&format!("\"{}\":{},", escape_json(key), bytes));
        }
        s.push_str(&format!("\"mem\":{}}},", self.mem_bytes));
        s.push_str("\"attr\":{");
        for (i, (key, bytes)) in CACHE_BYTE_KEYS
            .iter()
            .zip(self.attributed_bytes_by_class)
            .enumerate()
        {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", escape_json(key), bytes));
        }
        s.push_str("},");
        s.push_str(&format!(
            "\"bloat_factor\":{},",
            json_num(self.bloat_factor)
        ));
        s.push_str(&format!(
            "\"occupancy\":{{\"lines\":{},\"dirty\":{},\"capacity\":{}}},",
            self.occupied_lines, self.dirty_lines, self.capacity_lines
        ));
        s.push_str(&format!(
            "\"bab\":{{\"psel\":[{},{},{},{}],\"engaged\":{},\"bypassed\":{},\"filled\":{}}},",
            self.bab_psel[0],
            self.bab_psel[1],
            self.bab_psel[2],
            self.bab_psel[3],
            self.bab_engaged,
            self.bab_bypassed,
            self.bab_filled
        ));
        s.push_str(&format!(
            "\"ntc\":{{\"hits_present\":{},\"hits_absent\":{},\"unknowns\":{}}},",
            self.ntc_hits_present, self.ntc_hits_absent, self.ntc_unknowns
        ));
        s.push_str(&format!(
            "\"map_i\":{{\"correct\":{},\"wrong\":{}}},",
            self.predictor_correct, self.predictor_wrong
        ));
        s.push_str("\"bank_depths\":[");
        for (i, d) in self.bank_queue_depths.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{d}"));
        }
        s.push_str("]}");
        s
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_is_balanced_and_carries_keys() {
        let mut s = Sample {
            window: 3,
            start_cycle: 30_000,
            end_cycle: 40_000,
            read_lookups: 10,
            read_hits: 7,
            bloat_factor: 1.625,
            bank_queue_depths: vec![0, 2, 5],
            ..Sample::default()
        };
        s.cache_bytes_by_class[1] = 96;
        s.attributed_bytes_by_class[1] = 96;
        let line = s.to_json_line();
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "unbalanced braces in {line}"
        );
        assert!(!line.contains('\n'));
        for key in [
            "\"window\":3",
            "\"miss_probe\":96",
            "\"bloat_factor\":1.625",
            "\"bank_depths\":[0,2,5]",
            "\"read_hits\":7",
            "\"attr\":{\"hit\":0,\"miss_probe\":96",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }

    #[test]
    fn rates_handle_empty_windows() {
        let s = Sample::default();
        assert_eq!(s.read_hit_rate(), 0.0);
        assert_eq!(s.occupancy(), 0.0);
        assert_eq!(s.map_i_accuracy(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = Sample {
            read_lookups: 8,
            read_hits: 6,
            l3_hits: 1,
            l3_misses: 3,
            occupied_lines: 50,
            dirty_lines: 25,
            capacity_lines: 100,
            predictor_correct: 9,
            predictor_wrong: 1,
            ..Sample::default()
        };
        assert_eq!(s.read_hit_rate(), 0.75);
        assert_eq!(s.l3_hit_rate(), 0.25);
        assert_eq!(s.occupancy(), 0.5);
        assert_eq!(s.dirty_fraction(), 0.25);
        assert_eq!(s.map_i_accuracy(), 0.9);
    }
}
