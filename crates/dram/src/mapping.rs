//! Physical-address to DRAM-location interleaving.
//!
//! Main memory receives ordinary physical addresses, so it needs a mapping
//! policy. The DRAM *cache* computes locations directly from set indices
//! (each organization in `bear-core` does its own placement), so this module
//! is used only for the commodity-memory device and for tests.

use crate::config::DramTopology;
use crate::request::DramLocation;

/// Interleaving order for splitting a physical address into DRAM
/// coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Interleave {
    /// Row : Bank : Rank : Channel : Column — consecutive lines rotate
    /// across channels first (maximizes channel parallelism for streams).
    /// This is the common high-performance default.
    #[default]
    ChannelFirst,
    /// Row : Channel : Rank : Bank : Column — consecutive lines rotate
    /// across banks within a channel first.
    BankFirst,
}

/// Maps line-aligned physical addresses onto a [`DramTopology`].
#[derive(Debug, Clone, Copy)]
pub struct AddressMapper {
    topology: DramTopology,
    interleave: Interleave,
    line_bytes: u64,
}

impl AddressMapper {
    /// Creates a mapper for `topology` with 64 B lines.
    pub fn new(topology: DramTopology, interleave: Interleave) -> Self {
        AddressMapper {
            topology,
            interleave,
            line_bytes: 64,
        }
    }

    /// Lines per row buffer.
    fn lines_per_row(&self) -> u64 {
        (self.topology.row_bytes / self.line_bytes).max(1)
    }

    /// Maps a byte address to its DRAM location.
    pub fn map(&self, addr: u64) -> DramLocation {
        let line = addr / self.line_bytes;
        let channels = self.topology.channels as u64;
        let ranks = self.topology.ranks_per_channel as u64;
        let banks = self.topology.banks_per_rank as u64;
        let cols = self.lines_per_row();

        match self.interleave {
            Interleave::ChannelFirst => {
                // line = (((row * banks + bank) * ranks + rank) * channels + channel) * cols + col
                let col_stripe = line / cols;
                let channel = col_stripe % channels;
                let rest = col_stripe / channels;
                let rank = rest % ranks;
                let rest = rest / ranks;
                let bank = rest % banks;
                let row = rest / banks;
                DramLocation {
                    channel: channel as u32,
                    rank: rank as u32,
                    bank: bank as u32,
                    row,
                }
            }
            Interleave::BankFirst => {
                let col_stripe = line / cols;
                let bank = col_stripe % banks;
                let rest = col_stripe / banks;
                let rank = rest % ranks;
                let rest = rest / ranks;
                let channel = rest % channels;
                let row = rest / channels;
                DramLocation {
                    channel: channel as u32,
                    rank: rank as u32,
                    bank: bank as u32,
                    row,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn topo() -> DramTopology {
        DramConfig::commodity_memory().topology
    }

    #[test]
    fn consecutive_lines_share_a_row() {
        let m = AddressMapper::new(topo(), Interleave::ChannelFirst);
        let a = m.map(0);
        let b = m.map(64);
        // Lines within one column stripe map to the same (ch, bank, row).
        assert_eq!(a, b);
        let c = m.map(64 * 32); // next stripe
        assert_ne!(a.channel, c.channel);
    }

    #[test]
    fn channel_first_rotates_channels() {
        let m = AddressMapper::new(topo(), Interleave::ChannelFirst);
        let stripe = 64 * 32; // one row stripe
        let locs: Vec<_> = (0..2).map(|i| m.map(i * stripe)).collect();
        assert_eq!(locs[0].channel, 0);
        assert_eq!(locs[1].channel, 1);
        assert_eq!(locs[0].bank, locs[1].bank);
    }

    #[test]
    fn bank_first_rotates_banks() {
        let m = AddressMapper::new(topo(), Interleave::BankFirst);
        let stripe = 64 * 32;
        let locs: Vec<_> = (0..3).map(|i| m.map(i * stripe)).collect();
        assert_eq!(locs[0].bank, 0);
        assert_eq!(locs[1].bank, 1);
        assert_eq!(locs[2].bank, 2);
        assert_eq!(locs[0].channel, locs[1].channel);
    }

    #[test]
    fn distinct_addresses_cover_all_channels() {
        let m = AddressMapper::new(topo(), Interleave::ChannelFirst);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            seen.insert(m.map(i * 64 * 32).channel);
        }
        assert_eq!(seen.len(), topo().channels as usize);
    }

    #[test]
    fn rows_grow_with_address() {
        let m = AddressMapper::new(topo(), Interleave::ChannelFirst);
        let big = m.map(1 << 30);
        assert!(big.row > 0);
        assert!(big.bank < topo().banks_per_rank);
        assert!(big.channel < topo().channels);
    }
}
