//! Multi-channel DRAM device.
//!
//! [`DramDevice`] bundles the per-channel controllers behind one
//! enqueue/tick interface and aggregates statistics. The two instances used
//! by `bear-core` (stacked cache and commodity memory) differ only in their
//! [`crate::config::DramConfig`].

use crate::channel::{Channel, ChannelCompletion, ChannelStats, TransferRecord};
use crate::config::DramConfig;
use crate::request::{DramLocation, DramRequest, TrafficClass};
use bear_sim::error::SimError;
use bear_sim::time::Cycle;

/// A completed DRAM transaction.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// The original request.
    pub request: DramRequest,
    /// CPU cycle at which the last data beat transferred.
    pub finish: Cycle,
}

/// A complete DRAM device: several independent channels.
#[derive(Debug)]
pub struct DramDevice {
    cfg: DramConfig,
    channels: Vec<Channel>,
    scratch: Vec<ChannelCompletion>,
}

impl DramDevice {
    /// Creates an idle device, validating the configuration first.
    ///
    /// # Errors
    ///
    /// Returns the [`SimError::Config`] from [`DramConfig::validate`].
    pub fn try_new(cfg: DramConfig) -> Result<Self, SimError> {
        cfg.validate()?;
        let channels = (0..cfg.topology.channels)
            .map(|_| Channel::new(cfg))
            .collect();
        Ok(DramDevice {
            cfg,
            channels,
            scratch: Vec::with_capacity(16),
        })
    }

    /// Creates an idle device.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DramConfig::validate`]; use
    /// [`DramDevice::try_new`] to handle the error instead.
    pub fn new(cfg: DramConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(dev) => dev,
            Err(e) => panic!("invalid DRAM configuration: {e}"),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Whether `loc` names a channel/rank/bank that exists in this device's
    /// topology. Requests with out-of-range locations are rejected by
    /// [`DramDevice::try_enqueue`].
    pub fn location_in_range(&self, loc: &DramLocation) -> bool {
        let t = &self.cfg.topology;
        loc.channel < t.channels && loc.rank < t.ranks_per_channel && loc.bank < t.banks_per_rank
    }

    /// Whether the target channel can accept a request in the given
    /// direction right now. Out-of-range channels never accept.
    pub fn can_accept(&self, channel: u32, is_write: bool) -> bool {
        self.channels
            .get(channel as usize)
            .is_some_and(|c| c.can_accept(is_write))
    }

    /// Attempts to enqueue; hands the request back if its channel queue is
    /// full (the caller must retry later — this is the backpressure that
    /// turns bandwidth bloat into stalls) or if its location is outside
    /// the device topology (use [`DramDevice::location_in_range`] to tell
    /// the two apart).
    pub fn try_enqueue(&mut self, req: DramRequest) -> Result<(), DramRequest> {
        if !self.location_in_range(&req.location) {
            return Err(req);
        }
        self.channels[req.location.channel as usize].try_enqueue(req)
    }

    /// Advances all channels to `now`, appending finished transactions to
    /// `completions`.
    pub fn tick(&mut self, now: Cycle, completions: &mut Vec<Completion>) {
        for ch in &mut self.channels {
            self.scratch.clear();
            ch.tick(now, &mut self.scratch);
            completions.extend(self.scratch.iter().map(|c| Completion {
                request: c.request,
                finish: c.finish,
            }));
        }
    }

    /// [`DramDevice::tick`] for event-driven drivers: channels whose
    /// [`Channel::next_busy_cycle`] proves this cycle a no-op are not
    /// ticked at all. The hint is memoized per channel and every mutation
    /// point invalidates it, so the elision is exact — both tick variants
    /// produce bit-identical channel state and completions.
    pub fn tick_gated(&mut self, now: Cycle, completions: &mut Vec<Completion>) {
        // `BEAR_GATE_DIAG=1` cross-checks every elision by running the
        // tick anyway and asserting it changed nothing (slow; CI smoke
        // and bug hunts only). The flag is read once per process.
        static DIAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        let diag = *DIAG.get_or_init(|| std::env::var("BEAR_GATE_DIAG").is_ok());
        for ch in &mut self.channels {
            if ch.next_busy_cycle(now) > now {
                if diag {
                    let before = format!("{ch:?}");
                    let mut scratch = Vec::new();
                    ch.tick(now, &mut scratch);
                    let after = format!("{ch:?}");
                    assert!(
                        scratch.is_empty() && before == after,
                        "hint claimed idle at {now:?} but tick mutated:\nBEFORE {before}\nAFTER {after}\ncompletions {scratch:?}"
                    );
                }
                continue;
            }
            self.scratch.clear();
            ch.tick(now, &mut self.scratch);
            completions.extend(self.scratch.iter().map(|c| Completion {
                request: c.request,
                finish: c.finish,
            }));
        }
    }

    /// Total requests somewhere in the device (queued or in flight).
    pub fn pending(&self) -> usize {
        self.channels.iter().map(|c| c.pending()).sum()
    }

    /// Earliest time any channel might make progress ([`Cycle::NEVER`] when
    /// idle); drivers may fast-forward to this.
    pub fn next_event_hint(&self, now: Cycle) -> Cycle {
        self.channels
            .iter()
            .map(|c| c.next_event_hint(now))
            .min()
            .unwrap_or(Cycle::NEVER)
    }

    /// Earliest cycle at which ticking this device can change state: ticks
    /// strictly before it are guaranteed no-ops (see
    /// [`Channel::next_busy_cycle`]). [`Cycle::NEVER`] when every channel is
    /// idle with no refresh pending.
    pub fn next_busy_cycle(&self, now: Cycle) -> Cycle {
        let mut best = Cycle::NEVER;
        for c in &self.channels {
            let b = c.next_busy_cycle(now);
            if b <= now {
                // One busy channel settles the device; skip the rest.
                return b;
            }
            best = best.min(b);
        }
        best
    }

    /// A cycle strictly before which no channel can produce a completion,
    /// provided no new requests are enqueued (min over
    /// [`Channel::completion_horizon`]). [`Cycle::NEVER`] when drained.
    pub fn completion_horizon(&self, now: Cycle) -> Cycle {
        self.channels
            .iter()
            .map(|c| c.completion_horizon(now))
            .min()
            .unwrap_or(Cycle::NEVER)
    }

    /// Exclusive access to the per-channel controllers, for span-advancing
    /// them in parallel via [`crate::shard::ShardPool`]. Channels share no
    /// state, so distinct elements may be mutated concurrently.
    pub fn channels_mut(&mut self) -> &mut [Channel] {
        &mut self.channels
    }

    /// Per-channel statistics.
    pub fn channel_stats(&self) -> impl Iterator<Item = &ChannelStats> {
        self.channels.iter().map(|c| &c.stats)
    }

    /// Bytes transferred in `class`, summed over channels.
    pub fn bytes_in_class(&self, class: TrafficClass) -> u64 {
        let idx = (class.0 as usize).min(TrafficClass::COUNT - 1);
        self.channels
            .iter()
            .map(|c| c.stats.bytes_by_class[idx])
            .sum()
    }

    /// Total bytes transferred across all classes and channels.
    pub fn total_bytes(&self) -> u64 {
        self.channels.iter().map(|c| c.stats.total_bytes()).sum()
    }

    /// Bytes sitting in channel queues, not yet counted by
    /// [`DramDevice::total_bytes`] (see [`Channel::queued_bytes`]).
    pub fn queued_bytes(&self) -> u64 {
        self.channels.iter().map(|c| c.queued_bytes()).sum()
    }

    /// [`DramDevice::queued_bytes`], broken down per traffic class.
    pub fn queued_bytes_by_class(&self) -> [u64; TrafficClass::COUNT] {
        let mut out = [0u64; TrafficClass::COUNT];
        for c in &self.channels {
            c.add_queued_bytes_by_class(&mut out);
        }
        out
    }

    /// Total data-bus busy cycles summed over channels.
    pub fn bus_busy_cycles(&self) -> u64 {
        self.channels.iter().map(|c| c.stats.bus_busy_cycles).sum()
    }

    /// Aggregate row-buffer hit count (diagnostics).
    pub fn row_hits(&self) -> u64 {
        self.channels.iter().map(|c| c.row_hits()).sum()
    }

    /// Resets all channel statistics (warmup/measurement boundary).
    /// In-flight requests and bank state are preserved.
    pub fn reset_stats(&mut self) {
        for ch in &mut self.channels {
            ch.stats.reset();
        }
    }

    /// Arms (`Some(per_channel_capacity)`) or disarms (`None`) transfer
    /// logging on every channel (telemetry trace export).
    pub fn set_transfer_log(&mut self, capacity: Option<usize>) {
        for ch in &mut self.channels {
            ch.set_transfer_log(capacity);
        }
    }

    /// Drains every channel's transfer log, stamping each record with its
    /// channel index. Records are sorted by burst start time.
    pub fn take_transfer_records(&mut self) -> Vec<TransferRecord> {
        let mut out = Vec::new();
        for (idx, ch) in self.channels.iter_mut().enumerate() {
            out.extend(ch.take_transfer_records().into_iter().map(|mut r| {
                r.channel = idx as u32;
                r
            }));
        }
        out.sort_by_key(|r| (r.start, r.channel, r.bank));
        out
    }

    /// Snapshot of per-bank queue depth (queued plus in-flight requests),
    /// indexed `channel * banks_per_channel + bank`.
    pub fn bank_queue_depths(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(
            self.channels.len() * self.cfg.topology.banks_per_channel() as usize,
        );
        for ch in &self.channels {
            ch.bank_depths(&mut out);
        }
        out
    }

    /// Mean read queue latency (arrival to first data beat), in CPU cycles.
    pub fn mean_read_queue_latency(&self) -> f64 {
        let (sum, n) = self.channels.iter().fold((0u64, 0u64), |(s, n), c| {
            (
                s + c.stats.read_queue_latency_sum,
                n + c.stats.reads_completed,
            )
        });
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::DramLocation;

    fn drive(dev: &mut DramDevice, want: usize, max: u64) -> Vec<Completion> {
        let mut done = Vec::new();
        let mut t = Cycle(0);
        while done.len() < want && t.0 < max {
            dev.tick(t, &mut done);
            t += 1;
        }
        done
    }

    #[test]
    fn channels_work_independently() {
        let mut dev = DramDevice::new(DramConfig::stacked_cache_8x());
        for ch in 0..4 {
            dev.try_enqueue(DramRequest::read(
                ch as u64,
                DramLocation {
                    channel: ch,
                    rank: 0,
                    bank: 0,
                    row: 1,
                },
                5,
                TrafficClass(0),
                Cycle(0),
            ))
            .unwrap();
        }
        let done = drive(&mut dev, 4, 1_000);
        assert_eq!(done.len(), 4);
        // All four finish at the same time: no cross-channel contention.
        let finishes: Vec<_> = done.iter().map(|c| c.finish).collect();
        assert!(finishes.iter().all(|&f| f == finishes[0]));
        assert_eq!(dev.pending(), 0);
    }

    #[test]
    fn byte_accounting_by_class() {
        let mut dev = DramDevice::new(DramConfig::stacked_cache_8x());
        let loc = DramLocation {
            channel: 0,
            rank: 0,
            bank: 0,
            row: 1,
        };
        dev.try_enqueue(DramRequest::read(1, loc, 5, TrafficClass(2), Cycle(0)))
            .unwrap();
        dev.try_enqueue(DramRequest::write(2, loc, 4, TrafficClass(3), Cycle(0)))
            .unwrap();
        drive(&mut dev, 2, 100_000);
        assert_eq!(dev.bytes_in_class(TrafficClass(2)), 80);
        assert_eq!(dev.bytes_in_class(TrafficClass(3)), 64);
        assert_eq!(dev.total_bytes(), 144);
    }

    #[test]
    fn mean_read_latency_nonzero() {
        let mut dev = DramDevice::new(DramConfig::commodity_memory());
        let loc = DramLocation {
            channel: 1,
            rank: 0,
            bank: 2,
            row: 7,
        };
        dev.try_enqueue(DramRequest::read(1, loc, 8, TrafficClass(0), Cycle(0)))
            .unwrap();
        drive(&mut dev, 1, 100_000);
        assert!(dev.mean_read_queue_latency() >= 72.0);
        assert_eq!(
            DramDevice::new(DramConfig::default()).mean_read_queue_latency(),
            0.0
        );
    }

    #[test]
    fn out_of_range_location_rejected_not_panicking() {
        let mut dev = DramDevice::new(DramConfig::commodity_memory());
        let bad = [
            DramLocation {
                channel: 99,
                rank: 0,
                bank: 0,
                row: 0,
            },
            DramLocation {
                channel: 0,
                rank: 7,
                bank: 0,
                row: 0,
            },
            DramLocation {
                channel: 0,
                rank: 0,
                bank: 64,
                row: 0,
            },
        ];
        for loc in bad {
            assert!(!dev.location_in_range(&loc));
            let rejected = dev.try_enqueue(DramRequest::read(1, loc, 8, TrafficClass(0), Cycle(0)));
            assert!(rejected.is_err(), "{loc:?} must be rejected");
        }
        assert!(!dev.can_accept(99, false));
        assert_eq!(dev.pending(), 0, "rejected requests must not be queued");
    }

    #[test]
    fn try_new_reports_config_error() {
        let mut cfg = DramConfig::commodity_memory();
        cfg.sched_window = 0;
        let err = DramDevice::try_new(cfg).unwrap_err();
        assert_eq!(err.kind(), "config");
        assert!(format!("{err}").contains("sched_window"));
    }

    #[test]
    fn queued_bytes_tracks_unissued_requests() {
        let mut dev = DramDevice::new(DramConfig::stacked_cache_8x());
        let loc = DramLocation {
            channel: 0,
            rank: 0,
            bank: 0,
            row: 1,
        };
        dev.try_enqueue(DramRequest::read(1, loc, 5, TrafficClass(0), Cycle(0)))
            .unwrap();
        dev.try_enqueue(DramRequest::write(2, loc, 4, TrafficClass(1), Cycle(0)))
            .unwrap();
        // Nothing issued yet: all bytes are "queued", none "transferred".
        assert_eq!(dev.queued_bytes(), 80 + 64);
        assert_eq!(dev.total_bytes(), 0);
        drive(&mut dev, 2, 100_000);
        // After completion the bytes have moved to the transferred side.
        assert_eq!(dev.queued_bytes(), 0);
        assert_eq!(dev.total_bytes(), 144);
    }

    #[test]
    fn next_event_hint_aggregates() {
        let mut dev = DramDevice::new(DramConfig::stacked_cache_8x());
        assert_eq!(dev.next_event_hint(Cycle(10)), Cycle::NEVER);
        dev.try_enqueue(DramRequest::read(
            1,
            DramLocation {
                channel: 2,
                rank: 0,
                bank: 0,
                row: 0,
            },
            5,
            TrafficClass(0),
            Cycle(0),
        ))
        .unwrap();
        assert_eq!(dev.next_event_hint(Cycle(10)), Cycle(11));
    }

    #[test]
    fn next_busy_cycle_aggregates() {
        let mut dev = DramDevice::new(DramConfig::stacked_cache_8x());
        assert_eq!(dev.next_busy_cycle(Cycle(10)), Cycle::NEVER);
        dev.try_enqueue(DramRequest::read(
            1,
            DramLocation {
                channel: 2,
                rank: 0,
                bank: 0,
                row: 0,
            },
            5,
            TrafficClass(0),
            Cycle(0),
        ))
        .unwrap();
        // Queued work means the scheduler may act this very cycle.
        assert_eq!(dev.next_busy_cycle(Cycle(10)), Cycle(10));
    }

    #[test]
    fn transfer_log_captures_bursts_when_armed() {
        let mut dev = DramDevice::new(DramConfig::stacked_cache_8x());
        let loc = DramLocation {
            channel: 2,
            rank: 0,
            bank: 3,
            row: 1,
        };
        // Disarmed: nothing captured.
        dev.try_enqueue(DramRequest::read(1, loc, 5, TrafficClass(2), Cycle(0)))
            .unwrap();
        drive(&mut dev, 1, 10_000);
        assert!(dev.take_transfer_records().is_empty());

        dev.set_transfer_log(Some(64));
        dev.try_enqueue(DramRequest::read(2, loc, 5, TrafficClass(2), Cycle(0)))
            .unwrap();
        dev.try_enqueue(DramRequest::write(3, loc, 4, TrafficClass(4), Cycle(0)))
            .unwrap();
        drive(&mut dev, 3, 100_000);
        let recs = dev.take_transfer_records();
        assert_eq!(recs.len(), 2);
        assert!(recs.windows(2).all(|w| w[0].start <= w[1].start));
        let read = recs.iter().find(|r| !r.is_write).unwrap();
        assert_eq!(read.channel, 2);
        assert_eq!(read.bank, 3);
        assert_eq!(read.class, TrafficClass(2));
        assert!(read.finish > read.start);
        // Draining leaves the log armed but empty.
        assert!(dev.take_transfer_records().is_empty());
    }

    #[test]
    fn bank_queue_depths_reflect_pending_requests() {
        let mut dev = DramDevice::new(DramConfig::stacked_cache_8x());
        let banks_per_channel = dev.config().topology.banks_per_channel() as usize;
        let channels = dev.config().topology.channels as usize;
        let idle = dev.bank_queue_depths();
        assert_eq!(idle.len(), channels * banks_per_channel);
        assert!(idle.iter().all(|&d| d == 0));

        let loc = DramLocation {
            channel: 1,
            rank: 0,
            bank: 2,
            row: 7,
        };
        for id in 0..3 {
            dev.try_enqueue(DramRequest::read(id, loc, 5, TrafficClass(0), Cycle(0)))
                .unwrap();
        }
        let depths = dev.bank_queue_depths();
        assert_eq!(depths[banks_per_channel + 2], 3);
        assert_eq!(depths.iter().map(|&d| d as usize).sum::<usize>(), 3);
        drive(&mut dev, 3, 100_000);
        assert!(dev.bank_queue_depths().iter().all(|&d| d == 0));
    }

    #[test]
    fn commodity_read_is_slower_than_stacked() {
        // Identical single-read experiment on both devices: same core
        // latency, but the 64B burst takes 16 cycles vs 4 on the wide bus.
        let mut cache = DramDevice::new(DramConfig::stacked_cache_8x());
        let mut mem = DramDevice::new(DramConfig::commodity_memory());
        let loc = DramLocation {
            channel: 0,
            rank: 0,
            bank: 0,
            row: 1,
        };
        cache
            .try_enqueue(DramRequest::read(1, loc, 4, TrafficClass(0), Cycle(0)))
            .unwrap();
        mem.try_enqueue(DramRequest::read(1, loc, 8, TrafficClass(0), Cycle(0)))
            .unwrap();
        let c = drive(&mut cache, 1, 10_000)[0].finish;
        let m = drive(&mut mem, 1, 10_000)[0].finish;
        assert!(m > c, "commodity {m} should exceed stacked {c}");
        assert_eq!(c, Cycle(76)); // 72 + 4 beats
        assert_eq!(m, Cycle(88)); // 72 + 16
    }
}
