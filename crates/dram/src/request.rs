//! DRAM request types.
//!
//! A [`DramRequest`] is a located, sized, categorized transfer. The size is
//! expressed in data-bus *beats* so that every transfer unit in the paper is
//! first class: an 80 B Alloy TAD (5 beats on the 16 B-per-beat stacked bus),
//! a 64 B line (4 beats), a 192 B Loh-Hill tag group (12 beats), or an 8 B
//! tag-only writeback update (1 beat).

use bear_sim::time::Cycle;

/// Unique identifier assigned by the issuer of a request.
pub type RequestId = u64;

/// Where in the device a request lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramLocation {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank index within the rank.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u64,
}

impl DramLocation {
    /// Flat bank index within the owning channel.
    pub fn bank_in_channel(&self, banks_per_rank: u32) -> u32 {
        self.rank * banks_per_rank + self.bank
    }
}

/// Opaque traffic category used for byte accounting.
///
/// `bear-core` maps the paper's six bloat sources (Hit Probe, Miss Probe,
/// Miss Fill, Writeback Probe, Writeback Update, Writeback Fill) plus victim
/// traffic onto these tags; the DRAM model itself only accumulates bytes per
/// tag, keeping the substrate independent of the paper's taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TrafficClass(pub u8);

impl TrafficClass {
    /// Number of distinguishable classes tracked by the device stats.
    pub const COUNT: usize = 16;
}

/// One DRAM transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// Issuer-assigned identifier, echoed back in the completion.
    pub id: RequestId,
    /// Target location.
    pub location: DramLocation,
    /// Transfer length in data-bus beats (must be non-zero).
    pub beats: u64,
    /// Write (data flows to the device) vs. read.
    pub is_write: bool,
    /// Accounting category.
    pub class: TrafficClass,
    /// Time the request entered the controller queue.
    pub arrival: Cycle,
}

impl DramRequest {
    /// Creates a read request.
    pub fn read(
        id: RequestId,
        location: DramLocation,
        beats: u64,
        class: TrafficClass,
        arrival: Cycle,
    ) -> Self {
        debug_assert!(beats > 0);
        DramRequest {
            id,
            location,
            beats,
            is_write: false,
            class,
            arrival,
        }
    }

    /// Creates a write request.
    pub fn write(
        id: RequestId,
        location: DramLocation,
        beats: u64,
        class: TrafficClass,
        arrival: Cycle,
    ) -> Self {
        debug_assert!(beats > 0);
        DramRequest {
            id,
            location,
            beats,
            is_write: true,
            class,
            arrival,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_direction() {
        let loc = DramLocation {
            channel: 1,
            rank: 0,
            bank: 3,
            row: 9,
        };
        let r = DramRequest::read(7, loc, 5, TrafficClass(2), Cycle(11));
        assert!(!r.is_write);
        assert_eq!(r.beats, 5);
        assert_eq!(r.class, TrafficClass(2));
        let w = DramRequest::write(8, loc, 4, TrafficClass(3), Cycle(12));
        assert!(w.is_write);
        assert_eq!(w.arrival, Cycle(12));
    }

    #[test]
    fn bank_in_channel_flattening() {
        let loc = DramLocation {
            channel: 0,
            rank: 2,
            bank: 3,
            row: 0,
        };
        assert_eq!(loc.bank_in_channel(8), 19);
        assert_eq!(loc.bank_in_channel(16), 35);
    }
}
