//! DRAM request types.
//!
//! A [`DramRequest`] is a located, sized, categorized transfer. The size is
//! expressed in data-bus *beats* so that every transfer unit in the paper is
//! first class: an 80 B Alloy TAD (5 beats on the 16 B-per-beat stacked bus),
//! a 64 B line (4 beats), a 192 B Loh-Hill tag group (12 beats), or an 8 B
//! tag-only writeback update (1 beat).

use bear_sim::time::Cycle;

/// Unique identifier assigned by the issuer of a request.
pub type RequestId = u64;

/// Where in the device a request lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramLocation {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank index within the rank.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u64,
}

impl DramLocation {
    /// Flat bank index within the owning channel.
    pub fn bank_in_channel(&self, banks_per_rank: u32) -> u32 {
        self.rank * banks_per_rank + self.bank
    }
}

/// Opaque traffic category used for byte accounting.
///
/// `bear-core` maps the paper's six bloat sources (Hit Probe, Miss Probe,
/// Miss Fill, Writeback Probe, Writeback Update, Writeback Fill) plus victim
/// traffic onto these tags; the DRAM model itself only accumulates bytes per
/// tag, keeping the substrate independent of the paper's taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TrafficClass(pub u8);

impl TrafficClass {
    /// Number of distinguishable classes tracked by the device stats.
    pub const COUNT: usize = 16;
}

/// One DRAM transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// Issuer-assigned identifier, echoed back in the completion.
    pub id: RequestId,
    /// Target location.
    pub location: DramLocation,
    /// Transfer length in data-bus beats (must be non-zero).
    pub beats: u64,
    /// Write (data flows to the device) vs. read.
    pub is_write: bool,
    /// Accounting category.
    pub class: TrafficClass,
    /// Time the request entered the controller queue.
    pub arrival: Cycle,
}

impl DramRequest {
    /// Creates a read request.
    pub fn read(
        id: RequestId,
        location: DramLocation,
        beats: u64,
        class: TrafficClass,
        arrival: Cycle,
    ) -> Self {
        debug_assert!(beats > 0);
        DramRequest {
            id,
            location,
            beats,
            is_write: false,
            class,
            arrival,
        }
    }

    /// Creates a write request.
    pub fn write(
        id: RequestId,
        location: DramLocation,
        beats: u64,
        class: TrafficClass,
        arrival: Cycle,
    ) -> Self {
        debug_assert!(beats > 0);
        DramRequest {
            id,
            location,
            beats,
            is_write: true,
            class,
            arrival,
        }
    }
}

/// A bounded FIFO of [`DramRequest`]s in structure-of-arrays layout.
///
/// The channel scheduler's hot loops (the FR-FCFS window scan and the
/// `next_busy_cycle` preview) touch only a request's row and flat bank
/// index; packing those into their own dense arrays keeps the per-tick
/// working set to a few cache lines instead of a stride of full
/// [`DramRequest`] structs. The flat bank index is precomputed at push
/// time so the scan does no arithmetic at all.
///
/// Semantics match [`bear_sim::queue::BoundedQueue`]: FIFO order, a hard
/// capacity bound with the rejected element handed back, and
/// order-preserving removal at an arbitrary index (FR-FCFS picks row hits
/// out of order).
#[derive(Debug, Clone)]
pub struct RequestQueue {
    cap: usize,
    banks_per_rank: u32,
    // Hot scan columns.
    rows: Vec<u64>,
    bank_idx: Vec<u32>,
    // Cold columns, touched only on push/remove/accounting.
    ids: Vec<RequestId>,
    channels: Vec<u32>,
    ranks: Vec<u32>,
    banks: Vec<u32>,
    beats: Vec<u64>,
    writes: Vec<bool>,
    classes: Vec<TrafficClass>,
    arrivals: Vec<Cycle>,
}

impl RequestQueue {
    /// Creates a queue holding at most `capacity` requests.
    /// `banks_per_rank` is captured to precompute each request's flat
    /// bank-in-channel index at push time.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, banks_per_rank: u32) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        RequestQueue {
            cap: capacity,
            banks_per_rank,
            rows: Vec::with_capacity(capacity),
            bank_idx: Vec::with_capacity(capacity),
            ids: Vec::with_capacity(capacity),
            channels: Vec::with_capacity(capacity),
            ranks: Vec::with_capacity(capacity),
            banks: Vec::with_capacity(capacity),
            beats: Vec::with_capacity(capacity),
            writes: Vec::with_capacity(capacity),
            classes: Vec::with_capacity(capacity),
            arrivals: Vec::with_capacity(capacity),
        }
    }

    /// Attempts to enqueue; hands the request back if there is no room.
    pub fn try_push(&mut self, req: DramRequest) -> Result<(), DramRequest> {
        if self.rows.len() >= self.cap {
            return Err(req);
        }
        self.rows.push(req.location.row);
        self.bank_idx
            .push(req.location.bank_in_channel(self.banks_per_rank));
        self.ids.push(req.id);
        self.channels.push(req.location.channel);
        self.ranks.push(req.location.rank);
        self.banks.push(req.location.bank);
        self.beats.push(req.beats);
        self.writes.push(req.is_write);
        self.classes.push(req.class);
        self.arrivals.push(req.arrival);
        Ok(())
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.rows.len() >= self.cap
    }

    /// Maximum number of requests.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Row of the request at `index` (0 = oldest).
    #[inline]
    pub fn row(&self, index: usize) -> u64 {
        self.rows[index]
    }

    /// Precomputed flat bank-in-channel index of the request at `index`.
    #[inline]
    pub fn bank_index(&self, index: usize) -> u32 {
        self.bank_idx[index]
    }

    /// Reconstructs the full request at `index` from the columns.
    pub fn get(&self, index: usize) -> Option<DramRequest> {
        if index >= self.rows.len() {
            return None;
        }
        Some(DramRequest {
            id: self.ids[index],
            location: DramLocation {
                channel: self.channels[index],
                rank: self.ranks[index],
                bank: self.banks[index],
                row: self.rows[index],
            },
            beats: self.beats[index],
            is_write: self.writes[index],
            class: self.classes[index],
            arrival: self.arrivals[index],
        })
    }

    /// Removes and returns the request at `index` (0 = oldest),
    /// preserving the order of the remainder.
    pub fn remove(&mut self, index: usize) -> Option<DramRequest> {
        let req = self.get(index)?;
        self.rows.remove(index);
        self.bank_idx.remove(index);
        self.ids.remove(index);
        self.channels.remove(index);
        self.ranks.remove(index);
        self.banks.remove(index);
        self.beats.remove(index);
        self.writes.remove(index);
        self.classes.remove(index);
        self.arrivals.remove(index);
        Some(req)
    }

    /// Sum of queued transfer lengths in beats (byte accounting).
    pub fn total_beats(&self) -> u64 {
        self.beats.iter().sum()
    }

    /// Accumulates queued bytes per traffic class into `out`.
    pub fn add_bytes_by_class(&self, beat_bytes: u64, out: &mut [u64; TrafficClass::COUNT]) {
        for (class, beats) in self.classes.iter().zip(&self.beats) {
            out[(class.0 as usize).min(TrafficClass::COUNT - 1)] += beats * beat_bytes;
        }
    }

    /// Appends one count per queued request's flat bank index into
    /// `depths[base + bank_index]` (queue-depth snapshots).
    pub fn add_bank_depths(&self, base: usize, depths: &mut [u32]) {
        for &bank in &self.bank_idx {
            if let Some(slot) = depths.get_mut(base + bank as usize) {
                *slot += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_direction() {
        let loc = DramLocation {
            channel: 1,
            rank: 0,
            bank: 3,
            row: 9,
        };
        let r = DramRequest::read(7, loc, 5, TrafficClass(2), Cycle(11));
        assert!(!r.is_write);
        assert_eq!(r.beats, 5);
        assert_eq!(r.class, TrafficClass(2));
        let w = DramRequest::write(8, loc, 4, TrafficClass(3), Cycle(12));
        assert!(w.is_write);
        assert_eq!(w.arrival, Cycle(12));
    }

    #[test]
    fn bank_in_channel_flattening() {
        let loc = DramLocation {
            channel: 0,
            rank: 2,
            bank: 3,
            row: 0,
        };
        assert_eq!(loc.bank_in_channel(8), 19);
        assert_eq!(loc.bank_in_channel(16), 35);
    }

    fn req(id: u64, bank: u32, row: u64) -> DramRequest {
        DramRequest::read(
            id,
            DramLocation {
                channel: 0,
                rank: 1,
                bank,
                row,
            },
            5,
            TrafficClass(2),
            Cycle(id),
        )
    }

    #[test]
    fn soa_queue_round_trips_requests() {
        let mut q = RequestQueue::new(4, 8);
        for i in 0..4 {
            q.try_push(req(i, i as u32, 10 + i)).unwrap();
        }
        assert!(q.is_full());
        assert_eq!(q.try_push(req(9, 0, 0)).unwrap_err().id, 9);
        for i in 0..4usize {
            assert_eq!(q.get(i).unwrap(), req(i as u64, i as u32, 10 + i as u64));
            assert_eq!(q.row(i), 10 + i as u64);
            // rank 1 × banks_per_rank 8 + bank.
            assert_eq!(q.bank_index(i), 8 + i as u32);
        }
        assert_eq!(q.get(4), None);
    }

    #[test]
    fn soa_queue_removal_preserves_order() {
        let mut q = RequestQueue::new(4, 8);
        for i in 0..4 {
            q.try_push(req(i, 0, i)).unwrap();
        }
        assert_eq!(q.remove(2).unwrap().id, 2);
        assert_eq!(q.len(), 3);
        let ids: Vec<_> = (0..3).map(|i| q.get(i).unwrap().id).collect();
        assert_eq!(ids, vec![0, 1, 3]);
        assert_eq!(q.remove(10), None);
        assert_eq!(q.total_beats(), 15);
    }

    #[test]
    fn soa_queue_accounting_helpers() {
        let mut q = RequestQueue::new(4, 8);
        q.try_push(req(1, 2, 0)).unwrap();
        q.try_push(req(2, 2, 1)).unwrap();
        let mut by_class = [0u64; TrafficClass::COUNT];
        q.add_bytes_by_class(16, &mut by_class);
        assert_eq!(by_class[2], 2 * 5 * 16);
        let mut depths = vec![0u32; 32];
        q.add_bank_depths(16, &mut depths);
        assert_eq!(depths[16 + 8 + 2], 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn soa_queue_zero_capacity_panics() {
        RequestQueue::new(0, 8);
    }
}
