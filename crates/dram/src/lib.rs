#![warn(missing_docs)]

//! Cycle-level DRAM device model.
//!
//! This crate implements, from scratch, the DRAM timing substrate the BEAR
//! paper builds on (the paper uses USIMM; see DESIGN.md for the substitution
//! argument). The same model is instantiated twice by `bear-core`: once for
//! the high-bandwidth stacked DRAM cache (4 channels × 128-bit @ 1.6 GHz DDR)
//! and once for commodity main memory (2 channels × 64-bit @ 800 MHz DDR).
//!
//! The model is organized as:
//!
//! - [`config`]: topology (channels/ranks/banks/rows) and timing parameters
//!   (tCAS-tRCD-tRP-tRAS), plus the derived data-bus beat rate.
//! - [`request`]: the unit of work — a located, sized, categorized transfer.
//! - [`bank`]: the per-bank row-buffer state machine enforcing DRAM timing.
//! - [`channel`]: per-channel read/write queues, FR-FCFS scheduling with
//!   read priority and batched write drains, and data-bus arbitration.
//! - [`device`]: the multi-channel device with enqueue/tick/completion API.
//! - [`mapping`]: physical-address-to-location interleaving policies.
//! - [`shard`]: span-parallel channel execution on a persistent worker
//!   pool (`BEAR_SIM_THREADS`), deterministic by construction.
//!
//! # Example
//!
//! ```
//! use bear_dram::config::DramConfig;
//! use bear_dram::device::DramDevice;
//! use bear_dram::request::{DramLocation, DramRequest, TrafficClass};
//! use bear_sim::time::Cycle;
//!
//! let mut dev = DramDevice::new(DramConfig::stacked_cache_8x());
//! let loc = DramLocation { channel: 0, rank: 0, bank: 0, row: 3 };
//! dev.try_enqueue(DramRequest::read(1, loc, 5, TrafficClass(0), Cycle(0)))
//!     .unwrap();
//! let mut done = Vec::new();
//! let mut t = Cycle(0);
//! while done.is_empty() {
//!     dev.tick(t, &mut done);
//!     t += 1;
//! }
//! assert_eq!(done[0].request.id, 1);
//! ```

pub mod bank;
pub mod channel;
pub mod config;
pub mod device;
pub mod mapping;
pub mod request;
pub mod shard;

pub use config::{DramConfig, DramTimings, DramTopology};
pub use device::{Completion, DramDevice};
pub use mapping::AddressMapper;
pub use request::{DramLocation, DramRequest, RequestId, TrafficClass};
pub use shard::{parse_sim_threads, sim_threads_from_env, ShardPool, SpanTask};
