//! Per-channel memory controller: queues, scheduling, and bus arbitration.
//!
//! Each channel owns its banks and its data bus. Scheduling follows the
//! USIMM-style policy the paper describes (Section 3.1): separate read and
//! write queues, reads prioritized over writes, and writes issued in batches
//! — a drain begins when the write queue reaches a high watermark (or the
//! read queue is empty) and continues until a low watermark.
//!
//! Within the active queue the scheduler is FR-FCFS: among the oldest
//! `sched_window` entries it first looks for a *row-buffer hit* whose CAS can
//! issue now, then falls back to advancing the oldest request (ACT or PRE as
//! the bank requires). One command may issue per channel per CPU cycle.

use crate::bank::{Bank, BankAction};
use crate::config::DramConfig;
use crate::request::{DramRequest, RequestQueue, TrafficClass};
use bear_sim::time::Cycle;

/// A request whose data transfer has been scheduled and will complete at
/// `finish`.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    request: DramRequest,
    finish: Cycle,
}

/// A finished transaction, reported from [`Channel::tick`].
#[derive(Debug, Clone, Copy)]
pub struct ChannelCompletion {
    /// The original request.
    pub request: DramRequest,
    /// Time the last data beat transferred.
    pub finish: Cycle,
}

/// A data-bus burst captured for trace export (telemetry only).
///
/// Records are produced when a CAS issues, i.e. at the same instant byte
/// accounting happens, so a trace covers exactly the transfers the stats
/// counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRecord {
    /// Channel index (stamped by [`crate::device::DramDevice`] when the
    /// log is collected; always 0 inside a [`Channel`]).
    pub channel: u32,
    /// Bank within the channel.
    pub bank: u32,
    /// Write (true) or read (false) burst.
    pub is_write: bool,
    /// Traffic class of the request.
    pub class: TrafficClass,
    /// First cycle of the data burst.
    pub start: Cycle,
    /// Cycle the last beat finished transferring.
    pub finish: Cycle,
}

/// Bounded transfer log: keeps the newest `cap` records.
#[derive(Debug)]
struct TransferLog {
    cap: usize,
    buf: std::collections::VecDeque<TransferRecord>,
}

impl TransferLog {
    fn push(&mut self, rec: TransferRecord) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(rec);
    }
}

/// Per-channel statistics.
#[derive(Debug, Clone, Default)]
pub struct ChannelStats {
    /// Bytes transferred per traffic class.
    pub bytes_by_class: [u64; TrafficClass::COUNT],
    /// Total data-bus busy CPU cycles.
    pub bus_busy_cycles: u64,
    /// Sum of queue latencies (arrival to data start) for reads.
    pub read_queue_latency_sum: u64,
    /// Number of reads completed.
    pub reads_completed: u64,
    /// Number of writes completed.
    pub writes_completed: u64,
    /// Number of write-drain episodes entered.
    pub drain_episodes: u64,
    /// All-bank refreshes performed.
    pub refreshes: u64,
}

impl ChannelStats {
    /// Total bytes moved across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_by_class.iter().sum()
    }

    /// Resets all counters (warmup/measurement boundary).
    pub fn reset(&mut self) {
        *self = ChannelStats::default();
    }
}

/// One DRAM channel: banks + queues + scheduler + data bus.
#[derive(Debug)]
pub struct Channel {
    cfg: DramConfig,
    banks: Vec<Bank>,
    read_queue: RequestQueue,
    write_queue: RequestQueue,
    /// Data bus is busy until this time.
    bus_free_at: Cycle,
    /// Transfers in flight (data phase scheduled, completion pending).
    in_flight: Vec<InFlight>,
    /// Currently draining writes.
    draining: bool,
    /// Next scheduled refresh (NEVER when refresh is disabled).
    next_refresh: Cycle,
    /// Optional bounded capture of data bursts (armed by telemetry).
    transfer_log: Option<TransferLog>,
    /// Memoized `now`-independent bound behind [`Channel::next_busy_cycle`]
    /// (`None` = stale). Interior-mutable so the read-only hint can cache
    /// across ticks that provably changed nothing; every mutation point
    /// (enqueue, retire, refresh, drain flip, command issue) clears it.
    hint_cache: std::cell::Cell<Option<Cycle>>,
    /// Statistics.
    pub stats: ChannelStats,
}

impl Channel {
    /// Creates an idle channel per `cfg`.
    pub fn new(cfg: DramConfig) -> Self {
        let banks = (0..cfg.topology.banks_per_channel())
            .map(|_| Bank::with_subarrays(cfg.topology.subarrays_per_bank))
            .collect();
        Channel {
            banks,
            read_queue: RequestQueue::new(cfg.read_queue_capacity, cfg.topology.banks_per_rank),
            write_queue: RequestQueue::new(cfg.write_queue_capacity, cfg.topology.banks_per_rank),
            bus_free_at: Cycle::ZERO,
            in_flight: Vec::with_capacity(8),
            draining: false,
            next_refresh: if cfg.timings.refresh_enabled() {
                Cycle(cfg.timings.t_refi)
            } else {
                Cycle::NEVER
            },
            transfer_log: None,
            hint_cache: std::cell::Cell::new(None),
            stats: ChannelStats::default(),
            cfg,
        }
    }

    /// Arms (`Some(capacity)`) or disarms (`None`) the transfer log. The
    /// log keeps only the newest `capacity` records.
    pub fn set_transfer_log(&mut self, capacity: Option<usize>) {
        self.transfer_log = capacity.map(|cap| TransferLog {
            cap,
            buf: std::collections::VecDeque::with_capacity(cap.min(1024)),
        });
    }

    /// Drains captured transfer records (oldest first). The log stays
    /// armed.
    pub fn take_transfer_records(&mut self) -> Vec<TransferRecord> {
        match &mut self.transfer_log {
            Some(log) => log.buf.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Appends one queue-depth entry per bank (queued plus in-flight
    /// requests) to `out`, in bank order.
    pub fn bank_depths(&self, out: &mut Vec<u32>) {
        let banks = self.cfg.topology.banks_per_channel() as usize;
        let banks_per_rank = self.cfg.topology.banks_per_rank;
        let base = out.len();
        out.resize(base + banks, 0);
        self.read_queue.add_bank_depths(base, out);
        self.write_queue.add_bank_depths(base, out);
        for f in &self.in_flight {
            let bank = f.request.location.bank_in_channel(banks_per_rank) as usize;
            if let Some(slot) = out.get_mut(base + bank) {
                *slot += 1;
            }
        }
    }

    /// Attempts to enqueue a request; hands it back if the queue is full.
    pub fn try_enqueue(&mut self, req: DramRequest) -> Result<(), DramRequest> {
        let queue = if req.is_write {
            &mut self.write_queue
        } else {
            &mut self.read_queue
        };
        let res = queue.try_push(req);
        if res.is_ok() {
            self.hint_cache.set(None);
        }
        res
    }

    /// Whether a read (`is_write == false`) or write can currently be
    /// accepted.
    pub fn can_accept(&self, is_write: bool) -> bool {
        if is_write {
            !self.write_queue.is_full()
        } else {
            !self.read_queue.is_full()
        }
    }

    /// Number of pending requests (both queues plus in-flight transfers).
    pub fn pending(&self) -> usize {
        self.read_queue.len() + self.write_queue.len() + self.in_flight.len()
    }

    /// Row-buffer hit counts summed over banks (for diagnostics).
    pub fn row_hits(&self) -> u64 {
        self.banks.iter().map(|b| b.row_hits).sum()
    }

    /// Bytes represented by queued requests that have *not* yet been
    /// counted in [`ChannelStats::bytes_by_class`] (accounting happens at
    /// CAS issue, when a request leaves its queue). Used by the
    /// byte-conservation invariant to balance bytes submitted against
    /// bytes transferred.
    pub fn queued_bytes(&self) -> u64 {
        let beat_bytes = self.cfg.topology.beat_bytes;
        (self.read_queue.total_beats() + self.write_queue.total_beats()) * beat_bytes
    }

    /// [`Channel::queued_bytes`], accumulated per traffic class into
    /// `out` (the attribution-conservation invariant's queued term).
    pub fn add_queued_bytes_by_class(&self, out: &mut [u64; TrafficClass::COUNT]) {
        let beat_bytes = self.cfg.topology.beat_bytes;
        self.read_queue.add_bytes_by_class(beat_bytes, out);
        self.write_queue.add_bytes_by_class(beat_bytes, out);
    }

    /// Advances the channel to CPU cycle `now`: retires finished transfers
    /// into `completions` and issues at most one command.
    pub fn tick(&mut self, now: Cycle, completions: &mut Vec<ChannelCompletion>) {
        // Retire finished transfers.
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].finish <= now {
                let f = self.in_flight.swap_remove(i);
                self.hint_cache.set(None);
                if f.request.is_write {
                    self.stats.writes_completed += 1;
                } else {
                    self.stats.reads_completed += 1;
                }
                completions.push(ChannelCompletion {
                    request: f.request,
                    finish: f.finish,
                });
            } else {
                i += 1;
            }
        }

        // All-bank refresh: close every row and stall the channel tRFC.
        if now >= self.next_refresh {
            let ready = now + self.cfg.timings.t_rfc;
            for bank in &mut self.banks {
                bank.refresh_until(ready);
            }
            self.bus_free_at = self.bus_free_at.max(ready);
            self.next_refresh = now + self.cfg.timings.t_refi;
            self.stats.refreshes += 1;
            self.hint_cache.set(None);
        }

        self.update_drain_mode();

        // Pick the active queue: writes only during a drain (or when no
        // reads are waiting).
        let use_writes =
            self.draining || (self.read_queue.is_empty() && !self.write_queue.is_empty());
        if use_writes {
            self.schedule_from(true, now);
        } else {
            self.schedule_from(false, now);
        }
    }

    /// The earliest future time at which this channel may make progress, for
    /// event-skipping drivers. Returns [`Cycle::NEVER`] when fully idle.
    pub fn next_event_hint(&self, now: Cycle) -> Cycle {
        if !self.in_flight.is_empty() {
            let min_finish = self
                .in_flight
                .iter()
                .map(|f| f.finish)
                .min()
                .unwrap_or(Cycle::NEVER);
            return min_finish.min(now + 1);
        }
        if self.read_queue.is_empty() && self.write_queue.is_empty() {
            Cycle::NEVER
        } else {
            now + 1
        }
    }

    /// The earliest cycle at which a tick can change this channel's state:
    /// ticks strictly before the returned cycle are guaranteed no-ops, so
    /// an event-driven driver may skip them wholesale. Stronger than
    /// [`Channel::next_event_hint`]: queued requests are previewed through
    /// the scheduler's own gating (bank timing windows and bus occupancy)
    /// rather than pessimistically reported as busy `now`; in-flight
    /// transfers contribute their earliest finish; a pending refresh bounds
    /// everything because the refresh clock reads absolute time and must
    /// not be observed late.
    ///
    /// Exactness relies on the queues being frozen until the returned
    /// cycle — the event-driven driver guarantees this, as it only skips
    /// when no other component can enqueue.
    pub fn next_busy_cycle(&self, now: Cycle) -> Cycle {
        let bound = match self.hint_cache.get() {
            Some(b) => b,
            None => {
                let flight = self
                    .in_flight
                    .iter()
                    .map(|f| f.finish)
                    .min()
                    .unwrap_or(Cycle::NEVER);
                let b = flight
                    .min(self.next_refresh)
                    .min(self.next_schedule_cycle(now));
                // Caching a bound that is already `<= now` is still sound:
                // the hint stays pessimistic ("busy now") until the tick it
                // predicts actually fires, and that tick clears the cache.
                self.hint_cache.set(Some(b));
                b
            }
        };
        bound.max(now)
    }

    /// Earliest cycle at which [`Channel::tick`]'s scheduling passes could
    /// issue a command or mutate a bank, assuming the queues stay frozen
    /// until then. Never later than the true first action (late would break
    /// the no-op guarantee); [`Cycle::NEVER`] when nothing is queued. May
    /// return `now` without finishing the window scan once a command is
    /// provably issuable this cycle — earlier-than-true is always safe.
    fn next_schedule_cycle(&self, now: Cycle) -> Cycle {
        // A pending drain-mode flip makes the channel busy immediately:
        // the flip is hysteretic, so its *latch time* is observable — a
        // deferred flip would read a different queue depth and can settle
        // on the opposite mode (e.g. the queue dips to the low mark, then
        // refills past it before the deferred tick runs). Forcing a tick
        // latches the flip at the same cycle per-cycle polling would.
        let wlen = self.write_queue.len();
        let will_flip = if self.draining {
            wlen <= self.cfg.write_drain_low
        } else {
            wlen >= self.cfg.write_drain_high
        };
        if will_flip {
            return now;
        }
        let use_writes = self.draining || (self.read_queue.is_empty() && wlen > 0);
        let queue = if use_writes {
            &self.write_queue
        } else {
            &self.read_queue
        };
        if queue.is_empty() {
            return Cycle::NEVER;
        }
        let bus_free = Cycle(self.bus_free_at.0.saturating_sub(self.cfg.timings.t_cas));
        // Pass-1 preview: the first CAS issues once some windowed row-hit
        // is past its tRCD window AND its data can start on a free bus.
        let mut ready_cas_min = Cycle::NEVER;
        for i in 0..queue.len().min(self.cfg.sched_window) {
            if let Some(bank) = self.banks.get(queue.bank_index(i) as usize) {
                if let BankAction::Cas(ready) = bank.next_action(queue.row(i)) {
                    if ready.max(bus_free) <= now {
                        // A CAS is provably issuable this cycle; nothing
                        // can be earlier, so skip the rest of the scan.
                        return now;
                    }
                    ready_cas_min = ready_cas_min.min(ready);
                    if ready_cas_min <= bus_free {
                        // The issue time is already pinned at the bus
                        // bound; later entries can only err the pass-2
                        // comparison toward "earlier", which is safe.
                        break;
                    }
                }
            }
        }
        let cas_issue = if ready_cas_min == Cycle::NEVER {
            Cycle::NEVER
        } else {
            ready_cas_min.max(bus_free)
        };
        // Pass-2 preview: the front request's ACT/PRE. Pass 2 only runs
        // while no windowed CAS is ready — a ready-but-bus-blocked CAS
        // returns early without reaching it — so the front's ready time
        // counts only when it precedes every CAS window.
        let front_t = match self
            .banks
            .get(queue.bank_index(0) as usize)
            .map(|b| b.next_action(queue.row(0)))
        {
            Some(BankAction::Act(ready) | BankAction::Pre(ready)) => ready,
            _ => Cycle::NEVER,
        };
        if front_t < ready_cas_min {
            cas_issue.min(front_t)
        } else {
            cas_issue
        }
    }

    /// A cycle strictly before which this channel can produce **no**
    /// completion, assuming its queues stay frozen (no enqueues) from `now`
    /// on. Two bounds compose:
    ///
    /// - an in-flight transfer retires no earlier than its scheduled
    ///   finish, and
    /// - any *new* CAS issues at some tick `t ≥ next_schedule_cycle(now)`
    ///   (no command of any kind can issue earlier), so its data finishes
    ///   at `t + tCAS + burst ≥ next_schedule_cycle(now) + tCAS + 1 beat`.
    ///
    /// Internal activity (ACT/PRE, refresh, CAS issue, drain flips) may
    /// happen freely inside the window — only *completions* are excluded —
    /// which is exactly the contract [`Channel::advance_to`] needs to run
    /// a whole span of ticks without synchronizing with the caller.
    /// [`Cycle::NEVER`] when the channel is drained.
    pub fn completion_horizon(&self, now: Cycle) -> Cycle {
        let flight = self
            .in_flight
            .iter()
            .map(|f| f.finish)
            .min()
            .unwrap_or(Cycle::NEVER);
        let sched = self.next_schedule_cycle(now);
        let first_new_finish = if sched == Cycle::NEVER {
            Cycle::NEVER
        } else {
            sched.max(now) + self.cfg.timings.t_cas + self.cfg.topology.beat_cpu_cycles
        };
        flight.min(first_new_finish)
    }

    /// Replays every live tick this channel would have executed in
    /// `[now, horizon)` under per-cycle driving, following its own busy
    /// hints — issuing commands, flipping drain mode, and performing
    /// refreshes exactly as [`Channel::tick`] at those cycles would. The
    /// caller must pass a `horizon` no later than
    /// [`Channel::completion_horizon`]`(now)` and must not enqueue during
    /// the span; under that contract no completion can retire, so channels
    /// can be advanced concurrently and merged deterministically at the
    /// horizon. Resulting state is bit-identical to serial per-cycle
    /// ticking because each tick runs at exactly the cycle the busy hint
    /// names — the same cycles a per-cycle driver would find non-elidable.
    pub fn advance_to(
        &mut self,
        now: Cycle,
        horizon: Cycle,
        completions: &mut Vec<ChannelCompletion>,
    ) {
        let mut cur = now;
        loop {
            let t = self.next_busy_cycle(cur);
            if t >= horizon {
                break;
            }
            let before = completions.len();
            self.tick(t, completions);
            debug_assert_eq!(
                completions.len(),
                before,
                "completion retired inside a span at {t:?} (horizon {horizon:?})"
            );
            cur = t + 1;
        }
    }

    fn update_drain_mode(&mut self) {
        if self.draining {
            if self.write_queue.len() <= self.cfg.write_drain_low {
                self.draining = false;
                self.hint_cache.set(None);
            }
        } else if self.write_queue.len() >= self.cfg.write_drain_high {
            self.draining = true;
            self.stats.drain_episodes += 1;
            self.hint_cache.set(None);
        }
    }

    /// FR-FCFS over the chosen queue; issues at most one command at `now`.
    fn schedule_from(&mut self, writes: bool, now: Cycle) {
        let window = self.cfg.sched_window;
        let queue = if writes {
            &self.write_queue
        } else {
            &self.read_queue
        };
        if queue.is_empty() {
            return;
        }

        // Pass 1: oldest row-hit whose CAS can issue now and whose data can
        // start on a free bus. Only the SoA hot columns (row + flat bank
        // index) are touched during the scan.
        let mut cas_candidate: Option<usize> = None;
        for idx in 0..queue.len().min(window) {
            let Some(bank) = self.banks.get(queue.bank_index(idx) as usize) else {
                continue; // out-of-range bank: never schedulable
            };
            if let BankAction::Cas(ready) = bank.next_action(queue.row(idx)) {
                if ready <= now {
                    cas_candidate = Some(idx);
                    break;
                }
            }
        }

        if let Some(idx) = cas_candidate {
            // Data may not start before the bus frees; model the CAS as
            // delayed until the data window fits.
            let data_start_unconstrained = now + self.cfg.timings.t_cas;
            if self.bus_free_at <= data_start_unconstrained {
                let bank_idx = queue.bank_index(idx) as usize;
                let queue = if writes {
                    &mut self.write_queue
                } else {
                    &mut self.read_queue
                };
                let Some(req) = queue.remove(idx) else {
                    return; // queue mutated unexpectedly; retry next cycle
                };
                self.hint_cache.set(None);
                let burst = req.beats * self.cfg.topology.beat_cpu_cycles;
                let data_start =
                    self.banks[bank_idx].cas(req.location.row, now, burst, &self.cfg.timings);
                let finish = data_start + burst;
                self.bus_free_at = finish;
                self.stats.bus_busy_cycles += burst;
                self.account_bytes(&req);
                if let Some(log) = &mut self.transfer_log {
                    log.push(TransferRecord {
                        channel: 0,
                        bank: bank_idx as u32,
                        is_write: req.is_write,
                        class: req.class,
                        start: data_start,
                        finish,
                    });
                }
                if !req.is_write {
                    self.stats.read_queue_latency_sum += data_start - req.arrival;
                }
                self.in_flight.push(InFlight {
                    request: req,
                    finish,
                });
                return;
            }
            // Bus is the bottleneck: do not issue other commands that could
            // starve this CAS; just wait.
            return;
        }

        // Pass 2: advance the oldest request's bank (ACT or PRE).
        let row = queue.row(0);
        let bank_idx = queue.bank_index(0) as usize;
        let Some(bank) = self.banks.get_mut(bank_idx) else {
            return; // out-of-range bank: request can never be scheduled
        };
        match bank.next_action(row) {
            BankAction::Act(ready) if ready <= now => {
                bank.activate(row, now, &self.cfg.timings);
                self.hint_cache.set(None);
            }
            BankAction::Pre(ready) if ready <= now => {
                bank.precharge(row, now, &self.cfg.timings);
                self.hint_cache.set(None);
            }
            _ => {}
        }
    }

    fn account_bytes(&mut self, req: &DramRequest) {
        let bytes = req.beats * self.cfg.topology.beat_bytes;
        let class = (req.class.0 as usize).min(TrafficClass::COUNT - 1);
        self.stats.bytes_by_class[class] += bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::DramLocation;

    fn cfg() -> DramConfig {
        DramConfig::stacked_cache_8x()
    }

    fn loc(bank: u32, row: u64) -> DramLocation {
        DramLocation {
            channel: 0,
            rank: 0,
            bank,
            row,
        }
    }

    fn run_until_n_done(ch: &mut Channel, n: usize, max_cycles: u64) -> Vec<ChannelCompletion> {
        let mut done = Vec::new();
        let mut t = Cycle(0);
        while done.len() < n && t.0 < max_cycles {
            ch.tick(t, &mut done);
            t += 1;
        }
        done
    }

    #[test]
    fn single_read_latency_is_act_cas_burst() {
        let mut ch = Channel::new(cfg());
        let req = DramRequest::read(1, loc(0, 5), 5, TrafficClass(0), Cycle(0));
        ch.try_enqueue(req).unwrap();
        let done = run_until_n_done(&mut ch, 1, 10_000);
        assert_eq!(done.len(), 1);
        // ACT@0, CAS@tRCD=36, data@36+36=72, finish 72+5=77... completion is
        // observed on the tick AFTER finish; allow exact value check:
        assert_eq!(done[0].finish, Cycle(77));
        assert_eq!(ch.stats.reads_completed, 1);
        assert_eq!(ch.stats.total_bytes(), 80);
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut ch = Channel::new(cfg());
        ch.try_enqueue(DramRequest::read(
            1,
            loc(0, 5),
            5,
            TrafficClass(0),
            Cycle(0),
        ))
        .unwrap();
        ch.try_enqueue(DramRequest::read(
            2,
            loc(0, 5),
            5,
            TrafficClass(0),
            Cycle(0),
        ))
        .unwrap();
        let done = run_until_n_done(&mut ch, 2, 10_000);
        let first = done.iter().find(|c| c.request.id == 1).unwrap().finish;
        let second = done.iter().find(|c| c.request.id == 2).unwrap().finish;
        // Second access hits the open row: only tCAS + burst beyond bus.
        assert!(second - first < 77, "row hit gap was {}", second - first);
    }

    #[test]
    fn row_conflict_requires_precharge() {
        let mut ch = Channel::new(cfg());
        ch.try_enqueue(DramRequest::read(
            1,
            loc(0, 5),
            5,
            TrafficClass(0),
            Cycle(0),
        ))
        .unwrap();
        ch.try_enqueue(DramRequest::read(
            2,
            loc(0, 9),
            5,
            TrafficClass(0),
            Cycle(0),
        ))
        .unwrap();
        let done = run_until_n_done(&mut ch, 2, 10_000);
        let first = done.iter().find(|c| c.request.id == 1).unwrap().finish;
        let second = done.iter().find(|c| c.request.id == 2).unwrap().finish;
        // Conflict: wait tRAS, PRE (tRP), ACT (tRCD), CAS (tCAS) + burst.
        assert!(second - first >= 77, "conflict gap was {}", second - first);
    }

    #[test]
    fn banks_overlap_in_time() {
        let mut ch = Channel::new(cfg());
        for b in 0..4 {
            ch.try_enqueue(DramRequest::read(
                b as u64,
                loc(b, 1),
                5,
                TrafficClass(0),
                Cycle(0),
            ))
            .unwrap();
        }
        let done = run_until_n_done(&mut ch, 4, 10_000);
        let last = done.iter().map(|c| c.finish).max().unwrap();
        // Bank-level parallelism: four reads finish far sooner than 4 serial
        // row misses (4 × 77 = 308).
        assert!(last.0 < 200, "last finish was {last}");
    }

    #[test]
    fn reads_prioritized_over_writes() {
        let mut ch = Channel::new(cfg());
        ch.try_enqueue(DramRequest::write(
            100,
            loc(1, 7),
            5,
            TrafficClass(1),
            Cycle(0),
        ))
        .unwrap();
        ch.try_enqueue(DramRequest::read(
            1,
            loc(0, 5),
            5,
            TrafficClass(0),
            Cycle(0),
        ))
        .unwrap();
        let done = run_until_n_done(&mut ch, 2, 100_000);
        let read = done.iter().find(|c| !c.request.is_write).unwrap().finish;
        let write = done.iter().find(|c| c.request.is_write).unwrap().finish;
        assert!(
            read < write,
            "read {read} should finish before write {write}"
        );
    }

    #[test]
    fn write_drain_triggers_at_watermark() {
        let mut c = cfg();
        c.write_drain_high = 4;
        c.write_drain_low = 1;
        let mut ch = Channel::new(c);
        // Keep a steady stream of reads AND exceed the write watermark.
        for i in 0..4 {
            ch.try_enqueue(DramRequest::write(
                100 + i,
                loc(1, i),
                5,
                TrafficClass(1),
                Cycle(0),
            ))
            .unwrap();
        }
        for i in 0..4 {
            ch.try_enqueue(DramRequest::read(
                i,
                loc(0, 5),
                5,
                TrafficClass(0),
                Cycle(0),
            ))
            .unwrap();
        }
        let done = run_until_n_done(&mut ch, 8, 100_000);
        assert_eq!(done.len(), 8);
        assert!(ch.stats.drain_episodes >= 1);
    }

    #[test]
    fn backpressure_when_queue_full() {
        let mut c = cfg();
        c.read_queue_capacity = 2;
        let mut ch = Channel::new(c);
        assert!(ch.can_accept(false));
        for i in 0..2 {
            ch.try_enqueue(DramRequest::read(
                i,
                loc(0, 1),
                5,
                TrafficClass(0),
                Cycle(0),
            ))
            .unwrap();
        }
        assert!(!ch.can_accept(false));
        let rejected = ch.try_enqueue(DramRequest::read(
            9,
            loc(0, 1),
            5,
            TrafficClass(0),
            Cycle(0),
        ));
        assert!(rejected.is_err());
        assert_eq!(rejected.unwrap_err().id, 9);
    }

    #[test]
    fn bus_serializes_row_hits() {
        let mut ch = Channel::new(cfg());
        // Two row hits in different banks still share one data bus.
        ch.try_enqueue(DramRequest::read(
            1,
            loc(0, 1),
            8,
            TrafficClass(0),
            Cycle(0),
        ))
        .unwrap();
        ch.try_enqueue(DramRequest::read(
            2,
            loc(1, 1),
            8,
            TrafficClass(0),
            Cycle(0),
        ))
        .unwrap();
        let done = run_until_n_done(&mut ch, 2, 10_000);
        let a = done.iter().find(|c| c.request.id == 1).unwrap().finish;
        let b = done.iter().find(|c| c.request.id == 2).unwrap().finish;
        let gap = b.0.abs_diff(a.0);
        assert!(gap >= 8, "bursts must not overlap on the bus, gap {gap}");
        assert_eq!(ch.stats.bus_busy_cycles, 16);
    }

    #[test]
    fn queue_latency_accumulates_for_reads_only() {
        let mut ch = Channel::new(cfg());
        ch.try_enqueue(DramRequest::read(
            1,
            loc(0, 1),
            5,
            TrafficClass(0),
            Cycle(0),
        ))
        .unwrap();
        ch.try_enqueue(DramRequest::write(
            2,
            loc(0, 1),
            5,
            TrafficClass(1),
            Cycle(0),
        ))
        .unwrap();
        run_until_n_done(&mut ch, 2, 100_000);
        assert!(ch.stats.read_queue_latency_sum >= 72);
        assert_eq!(ch.stats.reads_completed, 1);
        assert_eq!(ch.stats.writes_completed, 1);
    }

    #[test]
    fn next_event_hint_idle_is_never() {
        let ch = Channel::new(cfg());
        assert_eq!(ch.next_event_hint(Cycle(5)), Cycle::NEVER);
    }

    #[test]
    fn next_event_hint_busy_is_soon() {
        let mut ch = Channel::new(cfg());
        ch.try_enqueue(DramRequest::read(
            1,
            loc(0, 1),
            5,
            TrafficClass(0),
            Cycle(0),
        ))
        .unwrap();
        assert_eq!(ch.next_event_hint(Cycle(0)), Cycle(1));
    }

    #[test]
    fn next_busy_cycle_idle_is_never() {
        let ch = Channel::new(cfg());
        assert_eq!(ch.next_busy_cycle(Cycle(5)), Cycle::NEVER);
    }

    #[test]
    fn next_busy_cycle_queued_closed_bank_is_now() {
        let mut ch = Channel::new(cfg());
        ch.try_enqueue(DramRequest::read(
            1,
            loc(0, 1),
            5,
            TrafficClass(0),
            Cycle(0),
        ))
        .unwrap();
        // A closed bank can ACT immediately, so the scheduler acts this
        // very cycle.
        assert_eq!(ch.next_busy_cycle(Cycle(7)), Cycle(7));
    }

    #[test]
    fn next_busy_cycle_previews_bank_timing_windows() {
        let mut ch = Channel::new(cfg());
        let trcd = cfg().timings.t_rcd;
        ch.try_enqueue(DramRequest::read(
            1,
            loc(0, 1),
            5,
            TrafficClass(0),
            Cycle(0),
        ))
        .unwrap();
        let mut done = Vec::new();
        // Tick 0 issues the ACT; the queued CAS is then gated by tRCD.
        // The hint names that exact cycle, so an event-driven driver
        // skips the whole window.
        ch.tick(Cycle(0), &mut done);
        assert_eq!(ch.next_busy_cycle(Cycle(1)), Cycle(trcd));
        ch.tick(Cycle(trcd), &mut done); // CAS issues right on the hint
        assert_eq!(ch.pending(), 1, "transfer should be in flight");
    }

    #[test]
    fn hinted_skips_match_per_cycle_polling() {
        // The same request mix through two channels: one ticked every
        // cycle, one ticked only at hinted cycles. The no-op guarantee
        // means completions and stats must agree exactly.
        let mix = [
            (0u32, 5u64, false),
            (0, 5, false), // row hit behind the first read
            (0, 9, false), // row conflict: PRE → ACT → CAS
            (1, 3, true),
            (2, 7, false),
        ];
        let mk = || {
            let mut ch = Channel::new(cfg());
            for (i, &(bank, row, write)) in mix.iter().enumerate() {
                let id = i as u64 + 1;
                let req = if write {
                    DramRequest::write(id, loc(bank, row), 5, TrafficClass(0), Cycle(0))
                } else {
                    DramRequest::read(id, loc(bank, row), 5, TrafficClass(0), Cycle(0))
                };
                ch.try_enqueue(req).unwrap();
            }
            ch
        };

        let mut poll = mk();
        let mut poll_done = Vec::new();
        for t in 0..10_000u64 {
            poll.tick(Cycle(t), &mut poll_done);
        }
        assert_eq!(poll_done.len(), mix.len());

        let mut ev = mk();
        let mut ev_done = Vec::new();
        let mut t = Cycle(0);
        let mut live_ticks = 0u64;
        while ev.pending() > 0 {
            ev.tick(t, &mut ev_done);
            live_ticks += 1;
            assert!(live_ticks < 1_000, "hints failed to make progress");
            match ev.next_busy_cycle(t + 1) {
                Cycle::NEVER => break,
                next => t = next,
            }
        }
        let key = |c: &ChannelCompletion| (c.request.id, c.finish);
        assert_eq!(
            poll_done.iter().map(key).collect::<Vec<_>>(),
            ev_done.iter().map(key).collect::<Vec<_>>(),
        );
        assert_eq!(poll.stats.total_bytes(), ev.stats.total_bytes());
        assert_eq!(poll.row_hits(), ev.row_hits());
        // The hints must actually compress time: far fewer live ticks than
        // the cycles the request mix spans.
        assert!(
            live_ticks * 3 < poll_done.last().unwrap().finish.raw(),
            "only {live_ticks} live ticks expected to cover {} cycles",
            poll_done.last().unwrap().finish.raw()
        );
    }

    #[test]
    fn next_busy_cycle_in_flight_is_finish() {
        let mut ch = Channel::new(cfg());
        ch.try_enqueue(DramRequest::read(
            1,
            loc(0, 1),
            5,
            TrafficClass(0),
            Cycle(0),
        ))
        .unwrap();
        // Follow the hints until the request leaves the queue (CAS issued,
        // transfer in flight); the hint must then point exactly at the
        // finish time.
        let mut completions = Vec::new();
        let mut t = Cycle(0);
        loop {
            ch.tick(t, &mut completions);
            if ch.queued_bytes() == 0 {
                break;
            }
            t = ch.next_busy_cycle(t + 1).max(t + 1);
            assert!(t.raw() < 10_000, "request never scheduled");
        }
        assert!(completions.is_empty());
        assert!(ch.pending() > 0, "transfer should be in flight");
        let busy = ch.next_busy_cycle(t);
        assert!(busy > t, "in-flight hint must be in the future");
        // Skipping straight to the hinted cycle yields the completion.
        ch.tick(busy, &mut completions);
        assert_eq!(completions.len(), 1);
    }
}

#[cfg(test)]
mod refresh_tests {
    use super::*;
    use crate::config::{DramConfig, DramTimings};
    use crate::request::DramLocation;

    fn loc(bank: u32, row: u64) -> DramLocation {
        DramLocation {
            channel: 0,
            rank: 0,
            bank,
            row,
        }
    }

    #[test]
    fn refresh_disabled_by_default() {
        let mut ch = Channel::new(DramConfig::stacked_cache_8x());
        let mut done = Vec::new();
        for t in 0..100_000u64 {
            ch.tick(Cycle(t), &mut done);
        }
        assert_eq!(ch.stats.refreshes, 0);
    }

    #[test]
    fn refresh_fires_every_trefi_and_closes_rows() {
        let mut cfg = DramConfig::stacked_cache_8x();
        cfg.timings = DramTimings::table1_with_refresh();
        let mut ch = Channel::new(cfg);
        ch.try_enqueue(DramRequest::read(
            1,
            loc(0, 5),
            5,
            TrafficClass(0),
            Cycle(0),
        ))
        .unwrap();
        let mut done = Vec::new();
        let horizon = cfg.timings.t_refi * 3 + 100;
        for t in 0..horizon {
            ch.tick(Cycle(t), &mut done);
        }
        assert_eq!(ch.stats.refreshes, 3);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn refresh_delays_requests_in_its_window() {
        let mut cfg = DramConfig::stacked_cache_8x();
        cfg.timings = DramTimings::table1_with_refresh();
        let trefi = cfg.timings.t_refi;
        let trfc = cfg.timings.t_rfc;
        let mut ch = Channel::new(cfg);
        let mut done = Vec::new();
        // Arrive exactly at the refresh boundary.
        for t in 0..trefi {
            ch.tick(Cycle(t), &mut done);
        }
        ch.try_enqueue(DramRequest::read(
            9,
            loc(0, 5),
            5,
            TrafficClass(0),
            Cycle(trefi),
        ))
        .unwrap();
        for t in trefi..trefi + trfc + 500 {
            ch.tick(Cycle(t), &mut done);
        }
        assert_eq!(done.len(), 1);
        // Finish = refresh end + ACT/CAS/burst (≥ tRFC past arrival).
        assert!(
            done[0].finish.raw() >= trefi + trfc + 77,
            "finish {} too early",
            done[0].finish.raw()
        );
    }

    #[test]
    fn next_busy_cycle_bounded_by_refresh() {
        let mut cfg = DramConfig::stacked_cache_8x();
        cfg.timings = DramTimings::table1_with_refresh();
        let trefi = cfg.timings.t_refi;
        let mut ch = Channel::new(cfg);
        // Idle channel, but the refresh clock still ticks on absolute time:
        // a skipping driver must wake up at the refresh boundary, or the
        // refresh would fire late and shift every later one.
        assert_eq!(ch.next_busy_cycle(Cycle(0)), Cycle(trefi));
        let mut done = Vec::new();
        ch.tick(Cycle(trefi), &mut done);
        assert_eq!(ch.stats.refreshes, 1);
        assert_eq!(ch.next_busy_cycle(Cycle(trefi + 1)), Cycle(2 * trefi));
    }
}
