//! Per-bank row-buffer state machine.
//!
//! Each bank enforces the DRAM core timing windows: ACT→CAS (tRCD),
//! CAS→data (tCAS), ACT→PRE (tRAS), and PRE→ACT (tRP). The controller uses
//! an open-page policy: a row stays open after an access until a conflicting
//! request forces a precharge.

use crate::config::DramTimings;
use bear_sim::time::Cycle;

/// What a bank can do for a given row at a given time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankAction {
    /// Row already open: a CAS may issue at (or after) the given time.
    Cas(Cycle),
    /// Bank is closed: an ACT may issue at (or after) the given time.
    Act(Cycle),
    /// A different row is open: a PRE may issue at (or after) the given time.
    Pre(Cycle),
}

/// Row-buffer state machine for one DRAM bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bank {
    open_row: Option<u64>,
    /// Earliest time the next ACT may issue (enforces tRP).
    ready_act: Cycle,
    /// Earliest time the next CAS may issue (enforces tRCD).
    ready_cas: Cycle,
    /// Earliest time the next PRE may issue (enforces tRAS and CAS drain).
    ready_pre: Cycle,
    /// Statistics: row-buffer hits and misses (ACT count), precharges.
    pub row_hits: u64,
    /// Number of row activations performed.
    pub activations: u64,
    /// Number of precharges performed.
    pub precharges: u64,
}

impl Bank {
    /// Creates a closed, idle bank.
    pub fn new() -> Self {
        Bank {
            open_row: None,
            ready_act: Cycle::ZERO,
            ready_cas: Cycle::NEVER,
            ready_pre: Cycle::ZERO,
            row_hits: 0,
            activations: 0,
            precharges: 0,
        }
    }

    /// Currently open row, if any.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Determines the next command required to service `row`, and the
    /// earliest time it can issue.
    pub fn next_action(&self, row: u64) -> BankAction {
        match self.open_row {
            Some(open) if open == row => BankAction::Cas(self.ready_cas),
            Some(_) => BankAction::Pre(self.ready_pre),
            None => BankAction::Act(self.ready_act),
        }
    }

    /// Issues an ACT for `row` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the bank is not closed or `now` violates tRP.
    pub fn activate(&mut self, row: u64, now: Cycle, t: &DramTimings) {
        debug_assert!(self.open_row.is_none(), "ACT on open bank");
        debug_assert!(now >= self.ready_act, "ACT violates tRP window");
        self.open_row = Some(row);
        self.ready_cas = now + t.t_rcd;
        self.ready_pre = now + t.t_ras;
        self.activations += 1;
    }

    /// Issues a CAS (read or write) at `now` for the open row; returns the
    /// time the first data beat appears on the bus (`now + tCAS`).
    ///
    /// `burst_cycles` is the bus occupancy of the transfer; the bank cannot
    /// be precharged until the burst has drained.
    ///
    /// # Panics
    ///
    /// Panics (debug) if no row is open or `now` violates tRCD.
    pub fn cas(&mut self, now: Cycle, burst_cycles: u64, t: &DramTimings) -> Cycle {
        debug_assert!(self.open_row.is_some(), "CAS on closed bank");
        debug_assert!(now >= self.ready_cas, "CAS violates tRCD window");
        let data_start = now + t.t_cas;
        // The row must stay open until the burst completes.
        self.ready_pre = self.ready_pre.max(data_start + burst_cycles);
        self.row_hits += 1;
        data_start
    }

    /// Forcibly closes the bank for a refresh ending at `ready`: any open
    /// row is lost and no command may issue before `ready`.
    pub fn refresh_until(&mut self, ready: Cycle) {
        self.open_row = None;
        self.ready_act = self.ready_act.max(ready);
        self.ready_cas = Cycle::NEVER;
        self.ready_pre = Cycle::ZERO;
    }

    /// Issues a PRE at `now`, closing the open row.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the bank is closed or `now` violates tRAS.
    pub fn precharge(&mut self, now: Cycle, t: &DramTimings) {
        debug_assert!(self.open_row.is_some(), "PRE on closed bank");
        debug_assert!(now >= self.ready_pre, "PRE violates tRAS window");
        self.open_row = None;
        self.ready_act = now + t.t_rp;
        self.ready_cas = Cycle::NEVER;
        self.precharges += 1;
    }
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTimings {
        DramTimings::table1()
    }

    #[test]
    fn closed_bank_wants_act() {
        let b = Bank::new();
        assert_eq!(b.next_action(5), BankAction::Act(Cycle::ZERO));
        assert_eq!(b.open_row(), None);
    }

    #[test]
    fn act_then_cas_respects_trcd_tcas() {
        let mut b = Bank::new();
        b.activate(5, Cycle(100), &t());
        assert_eq!(b.open_row(), Some(5));
        match b.next_action(5) {
            BankAction::Cas(ready) => assert_eq!(ready, Cycle(136)), // +tRCD
            other => panic!("expected CAS, got {other:?}"),
        }
        let data = b.cas(Cycle(136), 5, &t());
        assert_eq!(data, Cycle(172)); // +tCAS
    }

    #[test]
    fn conflicting_row_wants_pre_after_tras() {
        let mut b = Bank::new();
        b.activate(5, Cycle(0), &t());
        match b.next_action(9) {
            BankAction::Pre(ready) => assert_eq!(ready, Cycle(144)), // tRAS
            other => panic!("expected PRE, got {other:?}"),
        }
    }

    #[test]
    fn pre_then_act_respects_trp() {
        let mut b = Bank::new();
        b.activate(1, Cycle(0), &t());
        b.cas(Cycle(36), 4, &t());
        b.precharge(Cycle(144), &t());
        assert_eq!(b.open_row(), None);
        match b.next_action(2) {
            BankAction::Act(ready) => assert_eq!(ready, Cycle(180)), // +tRP
            other => panic!("expected ACT, got {other:?}"),
        }
    }

    #[test]
    fn cas_extends_pre_window_past_burst() {
        let mut b = Bank::new();
        b.activate(1, Cycle(0), &t());
        // CAS late enough that data drain (not tRAS) limits the precharge.
        let data = b.cas(Cycle(200), 10, &t());
        assert_eq!(data, Cycle(236));
        match b.next_action(2) {
            BankAction::Pre(ready) => assert_eq!(ready, Cycle(246)),
            other => panic!("expected PRE, got {other:?}"),
        }
    }

    #[test]
    fn stats_count_commands() {
        let mut b = Bank::new();
        b.activate(1, Cycle(0), &t());
        b.cas(Cycle(36), 4, &t());
        b.cas(Cycle(80), 4, &t());
        b.precharge(Cycle(144), &t());
        assert_eq!(b.activations, 1);
        assert_eq!(b.row_hits, 2);
        assert_eq!(b.precharges, 1);
    }

    #[test]
    #[should_panic(expected = "CAS on closed bank")]
    #[cfg(debug_assertions)]
    fn cas_on_closed_bank_panics() {
        let mut b = Bank::new();
        b.cas(Cycle(0), 4, &t());
    }

    #[test]
    #[should_panic(expected = "ACT on open bank")]
    #[cfg(debug_assertions)]
    fn act_on_open_bank_panics() {
        let mut b = Bank::new();
        b.activate(1, Cycle(0), &t());
        b.activate(2, Cycle(500), &t());
    }
}
