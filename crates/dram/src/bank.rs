//! Per-bank row-buffer state machine.
//!
//! Each bank enforces the DRAM core timing windows: ACT→CAS (tRCD),
//! CAS→data (tCAS), ACT→PRE (tRAS), and PRE→ACT (tRP). The controller uses
//! an open-page policy: a row stays open after an access until a conflicting
//! request forces a precharge.
//!
//! Banks may be split into SALP-style *subarrays* (rows striped by
//! `row % subarrays`): each subarray keeps its own open row and its own
//! ACT/PRE/CAS timing windows, so activates and precharges of distinct
//! subarrays overlap. Data transfers still serialize on the channel's
//! shared bus (modeled in [`crate::channel::Channel`]), which is the
//! dominant SALP constraint. With one subarray the bank degenerates to the
//! conventional single-row-buffer model, bit for bit.

use crate::config::DramTimings;
use bear_sim::time::Cycle;

/// What a bank can do for a given row at a given time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankAction {
    /// Row already open: a CAS may issue at (or after) the given time.
    Cas(Cycle),
    /// Target subarray is closed: an ACT may issue at (or after) the given
    /// time.
    Act(Cycle),
    /// A different row is open in the target subarray: a PRE may issue at
    /// (or after) the given time.
    Pre(Cycle),
}

/// Row-buffer state for one subarray.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Subarray {
    open_row: Option<u64>,
    /// Earliest time the next ACT may issue (enforces tRP).
    ready_act: Cycle,
    /// Earliest time the next CAS may issue (enforces tRCD).
    ready_cas: Cycle,
    /// Earliest time the next PRE may issue (enforces tRAS and CAS drain).
    ready_pre: Cycle,
}

impl Subarray {
    fn new() -> Self {
        Subarray {
            open_row: None,
            ready_act: Cycle::ZERO,
            ready_cas: Cycle::NEVER,
            ready_pre: Cycle::ZERO,
        }
    }
}

/// Row-buffer state machine for one DRAM bank (one or more subarrays).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bank {
    subarrays: Vec<Subarray>,
    /// Statistics: row-buffer hits.
    pub row_hits: u64,
    /// Number of row activations performed.
    pub activations: u64,
    /// Number of precharges performed.
    pub precharges: u64,
}

impl Bank {
    /// Creates a closed, idle bank with a single subarray (the
    /// conventional model).
    pub fn new() -> Self {
        Self::with_subarrays(1)
    }

    /// Creates a closed, idle bank split into `subarrays` SALP subarrays.
    ///
    /// # Panics
    ///
    /// Panics if `subarrays` is zero.
    pub fn with_subarrays(subarrays: u32) -> Self {
        assert!(subarrays > 0, "a bank needs at least one subarray");
        Bank {
            subarrays: (0..subarrays).map(|_| Subarray::new()).collect(),
            row_hits: 0,
            activations: 0,
            precharges: 0,
        }
    }

    /// Subarray index serving `row`.
    #[inline]
    fn sub_of(&self, row: u64) -> usize {
        (row % self.subarrays.len() as u64) as usize
    }

    /// Currently open row in the subarray serving `row`, if any.
    pub fn open_row_for(&self, row: u64) -> Option<u64> {
        self.subarrays[self.sub_of(row)].open_row
    }

    /// Currently open row of the first subarray (exact for single-subarray
    /// banks; see [`Bank::open_row_for`] for SALP banks).
    pub fn open_row(&self) -> Option<u64> {
        self.subarrays[0].open_row
    }

    /// Determines the next command required to service `row`, and the
    /// earliest time it can issue. Only the subarray serving `row` is
    /// consulted: rows striped to other subarrays neither conflict with nor
    /// gate this request.
    pub fn next_action(&self, row: u64) -> BankAction {
        let s = &self.subarrays[self.sub_of(row)];
        match s.open_row {
            Some(open) if open == row => BankAction::Cas(s.ready_cas),
            Some(_) => BankAction::Pre(s.ready_pre),
            None => BankAction::Act(s.ready_act),
        }
    }

    /// Issues an ACT for `row` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the target subarray is not closed or `now`
    /// violates tRP.
    pub fn activate(&mut self, row: u64, now: Cycle, t: &DramTimings) {
        let idx = self.sub_of(row);
        let s = &mut self.subarrays[idx];
        debug_assert!(s.open_row.is_none(), "ACT on open bank");
        debug_assert!(now >= s.ready_act, "ACT violates tRP window");
        s.open_row = Some(row);
        s.ready_cas = now + t.t_rcd;
        s.ready_pre = now + t.t_ras;
        self.activations += 1;
    }

    /// Issues a CAS (read or write) at `now` for `row` (open in its
    /// subarray); returns the time the first data beat appears on the bus
    /// (`now + tCAS`).
    ///
    /// `burst_cycles` is the bus occupancy of the transfer; the subarray
    /// cannot be precharged until the burst has drained.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `row` is not the open row of its subarray or `now`
    /// violates tRCD.
    pub fn cas(&mut self, row: u64, now: Cycle, burst_cycles: u64, t: &DramTimings) -> Cycle {
        let idx = self.sub_of(row);
        let s = &mut self.subarrays[idx];
        debug_assert!(s.open_row == Some(row), "CAS on closed bank");
        debug_assert!(now >= s.ready_cas, "CAS violates tRCD window");
        let data_start = now + t.t_cas;
        // The row must stay open until the burst completes.
        s.ready_pre = s.ready_pre.max(data_start + burst_cycles);
        self.row_hits += 1;
        data_start
    }

    /// Forcibly closes the whole bank for a refresh ending at `ready`: all
    /// open rows are lost and no command may issue before `ready`.
    pub fn refresh_until(&mut self, ready: Cycle) {
        for s in &mut self.subarrays {
            s.open_row = None;
            s.ready_act = s.ready_act.max(ready);
            s.ready_cas = Cycle::NEVER;
            s.ready_pre = Cycle::ZERO;
        }
    }

    /// Issues a PRE at `now`, closing the subarray serving `row`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the subarray is closed or `now` violates tRAS.
    pub fn precharge(&mut self, row: u64, now: Cycle, t: &DramTimings) {
        let idx = self.sub_of(row);
        let s = &mut self.subarrays[idx];
        debug_assert!(s.open_row.is_some(), "PRE on closed bank");
        debug_assert!(now >= s.ready_pre, "PRE violates tRAS window");
        s.open_row = None;
        s.ready_act = now + t.t_rp;
        s.ready_cas = Cycle::NEVER;
        self.precharges += 1;
    }
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTimings {
        DramTimings::table1()
    }

    #[test]
    fn closed_bank_wants_act() {
        let b = Bank::new();
        assert_eq!(b.next_action(5), BankAction::Act(Cycle::ZERO));
        assert_eq!(b.open_row(), None);
    }

    #[test]
    fn act_then_cas_respects_trcd_tcas() {
        let mut b = Bank::new();
        b.activate(5, Cycle(100), &t());
        assert_eq!(b.open_row(), Some(5));
        match b.next_action(5) {
            BankAction::Cas(ready) => assert_eq!(ready, Cycle(136)), // +tRCD
            other => panic!("expected CAS, got {other:?}"),
        }
        let data = b.cas(5, Cycle(136), 5, &t());
        assert_eq!(data, Cycle(172)); // +tCAS
    }

    #[test]
    fn conflicting_row_wants_pre_after_tras() {
        let mut b = Bank::new();
        b.activate(5, Cycle(0), &t());
        match b.next_action(9) {
            BankAction::Pre(ready) => assert_eq!(ready, Cycle(144)), // tRAS
            other => panic!("expected PRE, got {other:?}"),
        }
    }

    #[test]
    fn pre_then_act_respects_trp() {
        let mut b = Bank::new();
        b.activate(1, Cycle(0), &t());
        b.cas(1, Cycle(36), 4, &t());
        b.precharge(1, Cycle(144), &t());
        assert_eq!(b.open_row(), None);
        match b.next_action(2) {
            BankAction::Act(ready) => assert_eq!(ready, Cycle(180)), // +tRP
            other => panic!("expected ACT, got {other:?}"),
        }
    }

    #[test]
    fn cas_extends_pre_window_past_burst() {
        let mut b = Bank::new();
        b.activate(1, Cycle(0), &t());
        // CAS late enough that data drain (not tRAS) limits the precharge.
        let data = b.cas(1, Cycle(200), 10, &t());
        assert_eq!(data, Cycle(236));
        match b.next_action(2) {
            BankAction::Pre(ready) => assert_eq!(ready, Cycle(246)),
            other => panic!("expected PRE, got {other:?}"),
        }
    }

    #[test]
    fn stats_count_commands() {
        let mut b = Bank::new();
        b.activate(1, Cycle(0), &t());
        b.cas(1, Cycle(36), 4, &t());
        b.cas(1, Cycle(80), 4, &t());
        b.precharge(1, Cycle(144), &t());
        assert_eq!(b.activations, 1);
        assert_eq!(b.row_hits, 2);
        assert_eq!(b.precharges, 1);
    }

    #[test]
    fn distinct_subarrays_activate_independently() {
        // Rows 0 and 1 stripe to different subarrays of a 4-subarray bank:
        // no precharge is needed between them and both stay open.
        let mut b = Bank::with_subarrays(4);
        b.activate(0, Cycle(0), &t());
        match b.next_action(1) {
            BankAction::Act(ready) => assert_eq!(ready, Cycle::ZERO),
            other => panic!("expected independent ACT, got {other:?}"),
        }
        b.activate(1, Cycle(1), &t());
        assert_eq!(b.open_row_for(0), Some(0));
        assert_eq!(b.open_row_for(1), Some(1));
        // Both rows are CAS-ready after their own tRCD windows.
        assert_eq!(b.next_action(0), BankAction::Cas(Cycle(36)));
        assert_eq!(b.next_action(1), BankAction::Cas(Cycle(37)));
    }

    #[test]
    fn same_subarray_rows_still_conflict() {
        // Rows 0 and 4 both stripe to subarray 0 of a 4-subarray bank.
        let mut b = Bank::with_subarrays(4);
        b.activate(0, Cycle(0), &t());
        match b.next_action(4) {
            BankAction::Pre(ready) => assert_eq!(ready, Cycle(144)), // tRAS
            other => panic!("expected PRE, got {other:?}"),
        }
    }

    #[test]
    fn precharge_closes_only_the_target_subarray() {
        let mut b = Bank::with_subarrays(2);
        b.activate(0, Cycle(0), &t());
        b.activate(1, Cycle(0), &t());
        b.cas(0, Cycle(36), 4, &t());
        b.precharge(0, Cycle(144), &t());
        assert_eq!(b.open_row_for(0), None);
        assert_eq!(b.open_row_for(1), Some(1), "sibling subarray unaffected");
        assert_eq!(b.precharges, 1);
    }

    #[test]
    fn refresh_closes_every_subarray() {
        let mut b = Bank::with_subarrays(2);
        b.activate(0, Cycle(0), &t());
        b.activate(1, Cycle(0), &t());
        b.refresh_until(Cycle(500));
        assert_eq!(b.open_row_for(0), None);
        assert_eq!(b.open_row_for(1), None);
        assert_eq!(b.next_action(0), BankAction::Act(Cycle(500)));
        assert_eq!(b.next_action(1), BankAction::Act(Cycle(500)));
    }

    #[test]
    #[should_panic(expected = "CAS on closed bank")]
    #[cfg(debug_assertions)]
    fn cas_on_closed_bank_panics() {
        let mut b = Bank::new();
        b.cas(0, Cycle(0), 4, &t());
    }

    #[test]
    #[should_panic(expected = "ACT on open bank")]
    #[cfg(debug_assertions)]
    fn act_on_open_bank_panics() {
        let mut b = Bank::new();
        b.activate(1, Cycle(0), &t());
        b.activate(2, Cycle(500), &t());
    }
}
