//! Channel-sharded span execution.
//!
//! Between two completion horizons the channels of a device (or of several
//! devices) share no state: the data bus, bank timing windows, refresh
//! counters, and queues are all per-channel, and the horizon contract
//! ([`Channel::completion_horizon`]) guarantees no completion — the only
//! cross-channel interaction — can retire inside the span. [`ShardPool`]
//! exploits that independence: it advances a batch of channels to their
//! horizons on a small set of persistent worker threads, then joins at a
//! barrier before control returns to the serial system loop. Because zero
//! completions are produced mid-span and every channel lands in exactly
//! the state per-cycle ticking would have produced, the merged simulation
//! is byte-identical across any thread count — ordering at the merge point
//! is pinned by the serial (cycle, channel, txn id) walk of the system
//! tick, never by thread arrival.
//!
//! The pool size comes from `BEAR_SIM_THREADS` (default 1 = today's serial
//! path, no worker threads spawned at all). Malformed values are a typed
//! [`SimError::Config`], not a panic, mirroring how `BEAR_WORKERS` is
//! policed at the campaign layer.

use crate::channel::{Channel, ChannelCompletion};
use bear_sim::error::SimError;
use bear_sim::time::Cycle;
use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;

/// Environment variable naming the simulation thread count.
pub const SIM_THREADS_ENV: &str = "BEAR_SIM_THREADS";

/// Upper bound on accepted thread counts; a fat-finger guard, not a tuning
/// statement (the pool never helps past the channel count anyway).
pub const MAX_SIM_THREADS: usize = 64;

/// Parses a `BEAR_SIM_THREADS` value.
///
/// # Errors
///
/// Returns [`SimError::Config`] when the value is not an integer in
/// `1..=`[`MAX_SIM_THREADS`]. Unlike the warn-and-fall-back policy of
/// `BEAR_WORKERS`, a malformed simulation thread count is rejected
/// outright: it changes how results are *computed*, so silently running
/// with a different value than asked would be worse than refusing.
pub fn parse_sim_threads(raw: &str) -> Result<usize, SimError> {
    let trimmed = raw.trim();
    let n: usize = trimmed.parse().map_err(|_| {
        SimError::config(
            SIM_THREADS_ENV,
            format!("expected an integer thread count, got {trimmed:?}"),
        )
    })?;
    if n == 0 {
        return Err(SimError::config(
            SIM_THREADS_ENV,
            "thread count must be at least 1 (1 = serial)",
        ));
    }
    if n > MAX_SIM_THREADS {
        return Err(SimError::config(
            SIM_THREADS_ENV,
            format!("thread count {n} exceeds the cap of {MAX_SIM_THREADS}"),
        ));
    }
    Ok(n)
}

/// Reads `BEAR_SIM_THREADS` from the environment; unset or empty means 1.
///
/// # Errors
///
/// Propagates [`parse_sim_threads`] errors for present-but-malformed
/// values.
pub fn sim_threads_from_env() -> Result<usize, SimError> {
    match std::env::var(SIM_THREADS_ENV) {
        Ok(v) if !v.trim().is_empty() => parse_sim_threads(&v),
        _ => Ok(1),
    }
}

/// One unit of span work: advance `channel` from `now` to `horizon`.
///
/// The caller promises `horizon <= channel.completion_horizon(now)` and
/// that nothing enqueues into the channel during the span (see
/// [`Channel::advance_to`]).
pub struct SpanTask<'a> {
    /// The channel to advance (exclusive access for the span).
    pub channel: &'a mut Channel,
    /// Current system cycle.
    pub now: Cycle,
    /// Exclusive end of the span.
    pub horizon: Cycle,
}

/// Type-erased [`SpanTask`]: the pool's shared round table cannot carry
/// the caller's lifetime. Soundness is restored by the barrier —
/// [`ShardPool::run`] does not return until every task has finished, so
/// the erased `&mut Channel` never outlives its borrow, and each task
/// points at a distinct channel, so exclusivity is preserved.
#[derive(Clone, Copy)]
struct RawTask {
    channel: *mut Channel,
    now: Cycle,
    horizon: Cycle,
}

// SAFETY: a RawTask is only ever executed by exactly one thread per round
// (claimed under the round mutex), and the pointed-to Channel is borrowed
// mutably for the whole round by `ShardPool::run`.
unsafe impl Send for RawTask {}

struct Round {
    /// Incremented once per dispatched batch; workers sleep until it moves.
    epoch: u64,
    tasks: Vec<RawTask>,
    /// Next unclaimed task index.
    next: usize,
    /// Tasks not yet finished (claimed included).
    unfinished: usize,
    shutdown: bool,
}

struct Shared {
    round: Mutex<Round>,
    /// Signals workers that a new epoch (or shutdown) is available.
    work_cv: Condvar,
    /// Signals the dispatcher that `unfinished` reached zero.
    done_cv: Condvar,
}

impl Shared {
    /// Claims and runs tasks until the current round is exhausted.
    /// Returns with the round lock released.
    fn drain_round(&self, scratch: &mut Vec<ChannelCompletion>) {
        loop {
            let task = {
                let mut round = self.round.lock().unwrap();
                if round.next >= round.tasks.len() {
                    return;
                }
                let t = round.tasks[round.next];
                round.next += 1;
                t
            };
            // SAFETY: see `RawTask`. Exactly one thread claimed this index.
            let channel = unsafe { &mut *task.channel };
            scratch.clear();
            channel.advance_to(task.now, task.horizon, scratch);
            assert!(
                scratch.is_empty(),
                "span produced a completion before its horizon — \
                 completion_horizon contract violated"
            );
            let mut round = self.round.lock().unwrap();
            round.unfinished -= 1;
            if round.unfinished == 0 {
                self.done_cv.notify_all();
            }
        }
    }
}

/// A persistent pool advancing independent channels in parallel.
///
/// With `threads == 1` no workers are spawned and [`ShardPool::run`]
/// executes inline — exactly the serial path. With `threads == n`, `n - 1`
/// workers are parked on a condvar and the dispatching thread participates
/// in each round itself, so a round never pays more than one wake-up per
/// worker and nothing spins between rounds.
#[derive(Debug)]
pub struct ShardPool {
    threads: usize,
    shared: std::sync::Arc<SharedHandle>,
    workers: Vec<JoinHandle<()>>,
}

/// Newtype so `ShardPool` can derive `Debug` without exposing internals.
struct SharedHandle(Shared);

impl std::fmt::Debug for SharedHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SharedHandle")
    }
}

impl ShardPool {
    /// Creates a pool. `threads` must be in `1..=`[`MAX_SIM_THREADS`]
    /// (use [`parse_sim_threads`] to validate raw input first).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is outside that range.
    pub fn new(threads: usize) -> Self {
        assert!(
            (1..=MAX_SIM_THREADS).contains(&threads),
            "thread count {threads} outside 1..={MAX_SIM_THREADS}"
        );
        let shared = std::sync::Arc::new(SharedHandle(Shared {
            round: Mutex::new(Round {
                epoch: 0,
                tasks: Vec::new(),
                next: 0,
                unfinished: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }));
        let workers = (1..threads)
            .map(|i| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bear-shard-{i}"))
                    .spawn(move || {
                        let mut scratch = Vec::new();
                        let mut seen_epoch = 0u64;
                        loop {
                            {
                                let mut round = shared.0.round.lock().unwrap();
                                while round.epoch == seen_epoch && !round.shutdown {
                                    round = shared.0.work_cv.wait(round).unwrap();
                                }
                                if round.shutdown {
                                    return;
                                }
                                seen_epoch = round.epoch;
                            }
                            shared.0.drain_round(&mut scratch);
                        }
                    })
                    .expect("failed to spawn shard worker")
            })
            .collect();
        ShardPool {
            threads,
            shared,
            workers,
        }
    }

    /// Number of threads (including the dispatching caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Advances every task's channel to its horizon, returning only after
    /// all are done. Serial (`threads == 1`) and parallel execution are
    /// bit-identical: each channel replays exactly the ticks per-cycle
    /// driving would have executed, and the horizon contract guarantees no
    /// completion (the only cross-channel observable) occurs mid-span.
    pub fn run(&mut self, tasks: &mut [SpanTask<'_>]) {
        if tasks.is_empty() {
            return;
        }
        if self.threads == 1 || tasks.len() == 1 {
            let mut scratch = Vec::new();
            for t in tasks {
                scratch.clear();
                t.channel.advance_to(t.now, t.horizon, &mut scratch);
                assert!(
                    scratch.is_empty(),
                    "span produced a completion before its horizon — \
                     completion_horizon contract violated"
                );
            }
            return;
        }
        {
            let mut round = self.shared.0.round.lock().unwrap();
            round.tasks.clear();
            round.tasks.extend(tasks.iter_mut().map(|t| RawTask {
                channel: &mut *t.channel as *mut Channel,
                now: t.now,
                horizon: t.horizon,
            }));
            round.next = 0;
            round.unfinished = round.tasks.len();
            round.epoch += 1;
            self.shared.0.work_cv.notify_all();
        }
        // Participate instead of idling while the workers run.
        let mut scratch = Vec::new();
        self.shared.0.drain_round(&mut scratch);
        // Barrier: tasks this thread did not claim may still be running.
        let mut round = self.shared.0.round.lock().unwrap();
        while round.unfinished > 0 {
            round = self.shared.0.done_cv.wait(round).unwrap();
        }
        round.tasks.clear();
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        {
            let mut round = self.shared.0.round.lock().unwrap();
            round.shutdown = true;
            self.shared.0.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;
    use crate::request::{DramLocation, DramRequest, TrafficClass};

    #[test]
    fn parse_accepts_sane_values() {
        assert_eq!(parse_sim_threads("1").unwrap(), 1);
        assert_eq!(parse_sim_threads(" 4 ").unwrap(), 4);
        assert_eq!(parse_sim_threads("64").unwrap(), 64);
    }

    #[test]
    fn parse_rejects_malformed_with_typed_error() {
        for bad in ["", "zero", "1.5", "-2", "0", "65", "4 threads"] {
            let err = parse_sim_threads(bad).unwrap_err();
            assert_eq!(err.kind(), "config", "{bad:?} must be a config error");
            assert!(
                format!("{err}").contains(SIM_THREADS_ENV),
                "{bad:?} error must name the variable"
            );
        }
    }

    fn loaded_channels(n: usize) -> Vec<Channel> {
        let cfg = DramConfig::stacked_cache_8x();
        (0..n)
            .map(|i| {
                let mut ch = Channel::new(cfg);
                for id in 0..6u64 {
                    ch.try_enqueue(DramRequest::read(
                        i as u64 * 100 + id,
                        DramLocation {
                            channel: 0,
                            rank: 0,
                            bank: (id % 4) as u32,
                            row: id * 3 + i as u64,
                        },
                        5,
                        TrafficClass(0),
                        Cycle(0),
                    ))
                    .unwrap();
                }
                ch
            })
            .collect()
    }

    /// Advance the same workload serially per cycle and via the pool;
    /// every observable (debug state, stats, completions afterwards) must
    /// match bit for bit regardless of thread count.
    #[test]
    fn pool_matches_per_cycle_ticking_for_any_thread_count() {
        for threads in [1, 2, 4, 7] {
            let mut reference = loaded_channels(5);
            let mut sharded = loaded_channels(5);
            let mut pool = ShardPool::new(threads);
            let mut now = Cycle(0);
            let mut ref_done = Vec::new();
            let mut shard_done = Vec::new();
            // Alternate span advances with dense ticking until drained.
            for _ in 0..200 {
                let horizon = sharded
                    .iter()
                    .map(|c| c.completion_horizon(now))
                    .min()
                    .unwrap();
                if horizon > now + 1 && horizon != Cycle::NEVER {
                    // Span: reference ticks densely, sharded jumps.
                    let mut t = now;
                    while t < horizon {
                        for ch in &mut reference {
                            ch.tick(t, &mut ref_done);
                        }
                        t += 1;
                    }
                    let mut tasks: Vec<SpanTask<'_>> = sharded
                        .iter_mut()
                        .map(|channel| SpanTask {
                            channel,
                            now,
                            horizon,
                        })
                        .collect();
                    pool.run(&mut tasks);
                    now = horizon;
                } else {
                    for ch in &mut reference {
                        ch.tick(now, &mut ref_done);
                    }
                    for ch in &mut sharded {
                        ch.tick(now, &mut shard_done);
                    }
                    now += 1;
                }
                if sharded.iter().all(|c| c.pending() == 0) {
                    break;
                }
            }
            assert!(
                sharded.iter().all(|c| c.pending() == 0),
                "workload must drain"
            );
            for (r, s) in reference.iter().zip(&sharded) {
                assert_eq!(
                    format!("{r:?}"),
                    format!("{s:?}"),
                    "threads={threads}: channel state diverged"
                );
            }
            let ref_ids: Vec<_> = ref_done.iter().map(|c| (c.request.id, c.finish)).collect();
            let shard_ids: Vec<_> = shard_done
                .iter()
                .map(|c| (c.request.id, c.finish))
                .collect();
            assert_eq!(
                ref_ids, shard_ids,
                "threads={threads}: completions diverged"
            );
        }
    }

    #[test]
    fn empty_and_single_task_rounds_are_fine() {
        let mut pool = ShardPool::new(4);
        pool.run(&mut []);
        let mut chans = loaded_channels(1);
        let horizon = chans[0].completion_horizon(Cycle(0));
        assert!(horizon > Cycle(0));
        let mut tasks = vec![SpanTask {
            channel: &mut chans[0],
            now: Cycle(0),
            horizon,
        }];
        pool.run(&mut tasks);
    }

    #[test]
    fn pool_survives_many_rounds() {
        let mut pool = ShardPool::new(3);
        for round in 0..50 {
            let mut chans = loaded_channels(4);
            let horizon = chans
                .iter()
                .map(|c| c.completion_horizon(Cycle(0)))
                .min()
                .unwrap();
            let mut tasks: Vec<SpanTask<'_>> = chans
                .iter_mut()
                .map(|channel| SpanTask {
                    channel,
                    now: Cycle(0),
                    horizon,
                })
                .collect();
            pool.run(&mut tasks);
            assert!(round < 50);
        }
    }
}
