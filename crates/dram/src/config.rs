//! DRAM topology and timing configuration.
//!
//! Defaults follow Table 1 of the paper. All timing is expressed in CPU
//! cycles (3.2 GHz), so the stacked-cache and commodity-memory devices share
//! the same timing numbers (36-36-36-144) while differing in bus rate and
//! channel count — the paper's point that stacked DRAM is *faster in
//! bandwidth, not latency*.

use bear_sim::error::SimError;
use bear_sim::time::DerivedClock;

/// DRAM core timing parameters in CPU cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTimings {
    /// Column access strobe latency: CAS command to first data beat.
    pub t_cas: u64,
    /// RAS-to-CAS delay: ACT command to first CAS.
    pub t_rcd: u64,
    /// Row precharge time: PRE command to next ACT.
    pub t_rp: u64,
    /// Row active time: ACT to PRE (minimum row-open window).
    pub t_ras: u64,
    /// Refresh interval: one all-bank refresh is issued every `t_refi`
    /// cycles. `0` disables refresh (the paper's evaluation abstracts it
    /// away; enabling it is an extension for substrate realism).
    pub t_refi: u64,
    /// Refresh cycle time: the channel is blocked for `t_rfc` cycles per
    /// refresh and all row buffers close.
    pub t_rfc: u64,
}

impl DramTimings {
    /// The paper's timing (Table 1): tCAS-tRCD-tRP-tRAS = 36-36-36-144 CPU
    /// cycles for both the stacked cache and commodity memory.
    pub const fn table1() -> Self {
        DramTimings {
            t_cas: 36,
            t_rcd: 36,
            t_rp: 36,
            t_ras: 144,
            t_refi: 0,
            t_rfc: 0,
        }
    }

    /// Table 1 timings with DDR3-like refresh enabled (tREFI 7.8 µs and
    /// tRFC 350 ns at 3.2 GHz CPU cycles).
    pub const fn table1_with_refresh() -> Self {
        DramTimings {
            t_refi: 24_960,
            t_rfc: 1_120,
            ..Self::table1()
        }
    }

    /// Whether refresh is modeled.
    pub const fn refresh_enabled(&self) -> bool {
        self.t_refi > 0 && self.t_rfc > 0
    }
}

impl Default for DramTimings {
    fn default() -> Self {
        Self::table1()
    }
}

/// Physical organization of a DRAM device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTopology {
    /// Number of independent channels, each with its own data bus.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks_per_channel: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// Row-buffer size in bytes (2 KB rows per the paper's designs).
    pub row_bytes: u64,
    /// Bytes moved per data-bus *beat* (half a DDR bus cycle).
    pub beat_bytes: u64,
    /// CPU cycles per data-bus beat.
    ///
    /// The 128-bit, 1.6 GHz DDR stacked bus moves 16 B per beat with a beat
    /// every CPU cycle (3.2 GT/s under a 3.2 GHz CPU): `beat_cpu_cycles = 1`.
    /// The 64-bit, 800 MHz DDR DIMM bus moves 8 B per beat every 2 CPU
    /// cycles: `beat_cpu_cycles = 2`.
    pub beat_cpu_cycles: u64,
    /// Subarrays per bank (SALP). Rows are striped across subarrays
    /// (`subarray = row % subarrays_per_bank`); each subarray keeps its own
    /// open row and ACT/PRE timing windows, so activates and precharges of
    /// distinct subarrays overlap while CAS data transfers still serialize
    /// on the shared channel bus. `1` models a conventional bank (one row
    /// buffer, full intra-bank serialization) and is bit-identical to the
    /// pre-SALP model.
    pub subarrays_per_bank: u32,
}

impl DramTopology {
    /// Total number of banks across all channels and ranks.
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }

    /// Banks within one channel.
    pub fn banks_per_channel(&self) -> u32 {
        self.ranks_per_channel * self.banks_per_rank
    }

    /// Peak data bandwidth in bytes per CPU cycle, across all channels.
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.channels as f64 * self.beat_bytes as f64 / self.beat_cpu_cycles as f64
    }

    /// CPU cycles a transfer of `bytes` occupies on one channel's data bus.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        self.beats_for(bytes) * self.beat_cpu_cycles
    }

    /// Number of bus beats needed to move `bytes` (rounded up).
    pub fn beats_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.beat_bytes)
    }
}

/// Complete configuration for one DRAM device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Physical organization.
    pub topology: DramTopology,
    /// Core timing parameters.
    pub timings: DramTimings,
    /// Read-queue capacity per channel.
    pub read_queue_capacity: usize,
    /// Write-queue capacity per channel.
    pub write_queue_capacity: usize,
    /// Write drain starts when the write queue reaches this occupancy.
    pub write_drain_high: usize,
    /// Write drain stops when the write queue falls to this occupancy.
    pub write_drain_low: usize,
    /// Maximum queue entries the FR-FCFS scheduler inspects per decision.
    pub sched_window: usize,
}

impl DramConfig {
    /// The paper's baseline stacked DRAM cache (Table 1): 4 channels,
    /// 16 banks/rank, 128-bit bus at 1.6 GHz DDR — 8× the bandwidth of
    /// [`DramConfig::commodity_memory`].
    pub fn stacked_cache_8x() -> Self {
        DramConfig {
            topology: DramTopology {
                channels: 4,
                ranks_per_channel: 1,
                banks_per_rank: 16,
                row_bytes: 2048,
                beat_bytes: 16,
                beat_cpu_cycles: 1,
                subarrays_per_bank: 1,
            },
            timings: DramTimings::table1(),
            read_queue_capacity: 32,
            write_queue_capacity: 32,
            write_drain_high: 24,
            write_drain_low: 8,
            sched_window: 16,
        }
    }

    /// Stacked cache with the channel count scaled to `factor`× commodity
    /// bandwidth (4× / 8× / 16× in the Figure 14(a) sensitivity study).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a multiple of 2 (one stacked channel is 2×
    /// one commodity channel... the baseline 8× uses 4 channels).
    pub fn stacked_cache_bandwidth(factor: u32) -> Self {
        assert!(
            factor >= 2 && factor.is_multiple_of(2),
            "bandwidth factor must be an even multiple of commodity bandwidth"
        );
        let mut cfg = Self::stacked_cache_8x();
        cfg.topology.channels = factor / 2;
        cfg
    }

    /// The paper's commodity DIMM main memory (Table 1): 2 channels,
    /// 8 banks/rank, 64-bit bus at 800 MHz DDR.
    pub fn commodity_memory() -> Self {
        DramConfig {
            topology: DramTopology {
                channels: 2,
                ranks_per_channel: 1,
                banks_per_rank: 8,
                row_bytes: 2048,
                beat_bytes: 8,
                beat_cpu_cycles: 2,
                subarrays_per_bank: 1,
            },
            timings: DramTimings::table1(),
            read_queue_capacity: 32,
            write_queue_capacity: 32,
            write_drain_high: 24,
            write_drain_low: 8,
            sched_window: 16,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError::Config`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), SimError> {
        let err = |reason: &str| Err(SimError::config("dram", reason));
        let t = &self.topology;
        if t.channels == 0 || t.ranks_per_channel == 0 || t.banks_per_rank == 0 {
            return err("topology dimensions must be non-zero");
        }
        if t.row_bytes == 0 || t.beat_bytes == 0 || t.beat_cpu_cycles == 0 {
            return err("row/beat sizes must be non-zero");
        }
        if t.subarrays_per_bank == 0 {
            return err("subarrays_per_bank must be at least 1");
        }
        if self.read_queue_capacity == 0 || self.write_queue_capacity == 0 {
            return err("queue capacities must be non-zero");
        }
        if self.write_drain_low >= self.write_drain_high {
            return err("write_drain_low must be below write_drain_high");
        }
        if self.write_drain_high > self.write_queue_capacity {
            return err("write_drain_high exceeds write queue capacity");
        }
        if self.sched_window == 0 {
            return err("sched_window must be non-zero");
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::stacked_cache_8x()
    }
}

/// Clock domain helper: the bus clock implied by `beat_cpu_cycles`.
pub fn bus_clock(topology: &DramTopology) -> DerivedClock {
    DerivedClock::new(topology.beat_cpu_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let t = DramTimings::default();
        assert_eq!((t.t_cas, t.t_rcd, t.t_rp, t.t_ras), (36, 36, 36, 144));
    }

    #[test]
    fn stacked_is_8x_commodity_bandwidth() {
        let cache = DramConfig::stacked_cache_8x();
        let mem = DramConfig::commodity_memory();
        let ratio = cache.topology.peak_bytes_per_cycle() / mem.topology.peak_bytes_per_cycle();
        assert!((ratio - 8.0).abs() < 1e-9, "ratio was {ratio}");
    }

    #[test]
    fn transfer_cycles_for_tad_and_line() {
        let cache = DramConfig::stacked_cache_8x().topology;
        // 80-byte TAD = 5 beats = 5 CPU cycles on the stacked bus.
        assert_eq!(cache.beats_for(80), 5);
        assert_eq!(cache.transfer_cycles(80), 5);
        let mem = DramConfig::commodity_memory().topology;
        // 64-byte line = 8 beats = 16 CPU cycles on the DIMM bus.
        assert_eq!(mem.beats_for(64), 8);
        assert_eq!(mem.transfer_cycles(64), 16);
    }

    #[test]
    fn beats_round_up() {
        let t = DramConfig::stacked_cache_8x().topology;
        assert_eq!(t.beats_for(1), 1);
        assert_eq!(t.beats_for(16), 1);
        assert_eq!(t.beats_for(17), 2);
    }

    #[test]
    fn bank_counts() {
        let t = DramConfig::stacked_cache_8x().topology;
        assert_eq!(t.total_banks(), 64);
        assert_eq!(t.banks_per_channel(), 16);
    }

    #[test]
    fn bandwidth_factor_scaling() {
        assert_eq!(DramConfig::stacked_cache_bandwidth(4).topology.channels, 2);
        assert_eq!(DramConfig::stacked_cache_bandwidth(8).topology.channels, 4);
        assert_eq!(DramConfig::stacked_cache_bandwidth(16).topology.channels, 8);
    }

    #[test]
    #[should_panic(expected = "even multiple")]
    fn odd_bandwidth_factor_panics() {
        DramConfig::stacked_cache_bandwidth(3);
    }

    #[test]
    fn validation_catches_bad_watermarks() {
        let ok = DramConfig::default();
        assert!(ok.validate().is_ok());
        let bad = DramConfig {
            write_drain_low: ok.write_drain_high,
            ..ok
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validation_catches_zero_dims() {
        let base = DramConfig::default();
        let mut bad_channels = base;
        bad_channels.topology.channels = 0;
        assert!(bad_channels.validate().is_err());
        let mut bad_subarrays = base;
        bad_subarrays.topology.subarrays_per_bank = 0;
        assert!(bad_subarrays.validate().is_err());
        let mut bad_beats = base;
        bad_beats.topology.beat_bytes = 0;
        assert!(bad_beats.validate().is_err());
        let bad_window = DramConfig {
            sched_window: 0,
            ..base
        };
        assert!(bad_window.validate().is_err());
        let bad_watermark = DramConfig {
            write_drain_high: base.write_queue_capacity + 1,
            ..base
        };
        assert!(bad_watermark.validate().is_err());
        let bad_queue = DramConfig {
            read_queue_capacity: 0,
            ..base
        };
        assert!(bad_queue.validate().is_err());
    }

    #[test]
    fn bus_clock_matches_beat_rate() {
        let t = DramConfig::commodity_memory().topology;
        assert_eq!(bus_clock(&t).divisor(), 2);
    }
}
