//! Property tests for DRAM timing invariants, driven by the in-tree
//! [`bear_sim::check`] engine: every request completes, no data transfer
//! violates the bus occupancy, and latencies respect the tRCD+tCAS floor.

use bear_dram::config::DramConfig;
use bear_dram::device::DramDevice;
use bear_dram::mapping::{AddressMapper, Interleave};
use bear_dram::request::{DramLocation, DramRequest, TrafficClass};
use bear_sim::check::{check, Source};
use bear_sim::time::Cycle;
use bear_sim::{prop_assert, prop_assert_eq};

/// Draws a location valid for `cfg`'s topology.
fn any_location(src: &mut Source, cfg: &DramConfig) -> DramLocation {
    let t = cfg.topology;
    DramLocation {
        channel: src.u32_in(0..t.channels),
        rank: src.u32_in(0..t.ranks_per_channel),
        bank: src.u32_in(0..t.banks_per_rank),
        row: src.u64_in(0..64),
    }
}

/// Every accepted request eventually completes, exactly once, with a
/// latency at least the tRCD+tCAS+burst floor, and the per-class byte
/// accounting matches the requests issued.
#[test]
fn all_requests_complete_with_floor_latency() {
    check(64, |src: &mut Source| {
        let seeds = src.vec_with(1..40, |s| (s.u8_in(0..255), s.u64_in(1..8), s.bool()));
        let cfg = DramConfig::stacked_cache_8x();
        let mut dev = DramDevice::new(cfg);
        let mut expect_bytes = [0u64; 4];
        let mut issued = Vec::new();
        let mut rng_row = 0u64;
        for (i, (sel, beats, is_write)) in seeds.iter().enumerate() {
            rng_row = rng_row
                .wrapping_mul(6364136223846793005)
                .wrapping_add(*sel as u64);
            let t = cfg.topology;
            let loc = DramLocation {
                channel: (*sel as u32) % t.channels,
                rank: 0,
                bank: (rng_row as u32) % t.banks_per_rank,
                row: rng_row % 32,
            };
            let class = TrafficClass((i % 4) as u8);
            let req = if *is_write {
                DramRequest::write(i as u64, loc, *beats, class, Cycle(0))
            } else {
                DramRequest::read(i as u64, loc, *beats, class, Cycle(0))
            };
            if dev.try_enqueue(req).is_ok() {
                expect_bytes[i % 4] += beats * t.beat_bytes;
                issued.push(req);
            }
        }
        let mut done = Vec::new();
        let mut t = Cycle(0);
        while done.len() < issued.len() && t.0 < 1_000_000 {
            dev.tick(t, &mut done);
            t += 1;
        }
        prop_assert_eq!(done.len(), issued.len(), "requests lost");
        let mut ids: Vec<u64> = done.iter().map(|c| c.request.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), issued.len(), "duplicate completions");
        let floor = cfg.timings.t_rcd + cfg.timings.t_cas;
        for c in &done {
            prop_assert!(c.finish.raw() >= floor + c.request.beats);
        }
        for (k, &expect) in expect_bytes.iter().enumerate() {
            prop_assert_eq!(dev.bytes_in_class(TrafficClass(k as u8)), expect);
        }
        prop_assert_eq!(dev.pending(), 0);
        Ok(())
    });
}

/// Address mapping always lands inside the topology.
#[test]
fn mapping_in_bounds() {
    check(256, |src: &mut Source| {
        let addr = src.any_u64();
        for interleave in [Interleave::ChannelFirst, Interleave::BankFirst] {
            let t = DramConfig::commodity_memory().topology;
            let m = AddressMapper::new(t, interleave);
            let loc = m.map(addr);
            prop_assert!(loc.channel < t.channels);
            prop_assert!(loc.rank < t.ranks_per_channel);
            prop_assert!(loc.bank < t.banks_per_rank);
        }
        Ok(())
    });
}

/// Distinct line addresses within one row stripe map to the same row;
/// mapping is deterministic.
#[test]
fn mapping_deterministic() {
    check(256, |src: &mut Source| {
        let addr = src.u64_in(0..(1 << 44));
        let t = DramConfig::commodity_memory().topology;
        let m = AddressMapper::new(t, Interleave::ChannelFirst);
        prop_assert_eq!(m.map(addr), m.map(addr));
        Ok(())
    });
}

/// Generated-location smoke check (uses the helper).
#[test]
fn any_location_helper_is_usable() {
    check(16, |src: &mut Source| {
        let cfg = DramConfig::stacked_cache_8x();
        let loc = any_location(src, &cfg);
        prop_assert!(loc.channel < cfg.topology.channels);
        Ok(())
    });
}
