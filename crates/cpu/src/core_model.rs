//! The per-core retire-window model.

use bear_sim::time::Cycle;
use bear_workloads::{TraceEvent, TraceSource};
use std::collections::VecDeque;

/// Core parameters (Table 1: 2-wide out-of-order cores).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions retired per cycle when nothing stalls.
    pub retire_width: u32,
    /// Outstanding load misses the core can sustain (MSHR count).
    pub mshrs: usize,
    /// Instructions the core may run ahead of the oldest incomplete load
    /// (the reorder-buffer depth).
    pub rob_insts: u64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            retire_width: 2,
            mshrs: 8,
            rob_insts: 192,
        }
    }
}

/// Handle identifying an outstanding load, echoed back on completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoadToken(pub u64);

/// A memory reference the core wants serviced by the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreRequest {
    /// Issuing core.
    pub core: u32,
    /// 64 B-aligned byte address.
    pub addr: u64,
    /// Store vs. load.
    pub is_store: bool,
    /// Program counter (for MAP-I style predictors).
    pub pc: u64,
    /// Token to pass to [`Core::complete_load`] (loads only).
    pub token: LoadToken,
}

#[derive(Debug, Clone, Copy)]
struct Outstanding {
    token: LoadToken,
    /// Instruction count at which this access entered the window.
    at_inst: u64,
    /// Stores occupy a slot (bounding outstanding traffic) but never gate
    /// retirement — they drain through the store buffer.
    is_store: bool,
    done: bool,
}

/// One trace-driven core.
pub struct Core {
    id: u32,
    cfg: CoreConfig,
    trace: Box<dyn TraceSource>,
    /// Instructions retired so far.
    retired: u64,
    /// Instructions still to retire before the pending event fires.
    gap_left: u64,
    /// The event waiting to be issued (already drawn from the trace).
    pending: Option<TraceEvent>,
    outstanding: VecDeque<Outstanding>,
    next_token: u64,
    /// Cycles in which the core retired nothing while stalled on memory.
    pub stall_cycles: u64,
    /// Loads issued.
    pub loads_issued: u64,
    /// Stores issued.
    pub stores_issued: u64,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("retired", &self.retired)
            .field("outstanding", &self.outstanding.len())
            .finish()
    }
}

impl Core {
    /// Creates a core fed by `trace`.
    pub fn new(id: u32, trace: Box<dyn TraceSource>, cfg: CoreConfig) -> Self {
        Core {
            id,
            cfg,
            trace,
            retired: 0,
            gap_left: 0,
            pending: None,
            outstanding: VecDeque::with_capacity(cfg.mshrs),
            next_token: 0,
            stall_cycles: 0,
            loads_issued: 0,
            stores_issued: 0,
        }
    }

    /// Core identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Instructions retired so far.
    pub fn retired_insts(&self) -> u64 {
        self.retired
    }

    /// Name of the trace driving this core.
    pub fn workload_name(&self) -> &str {
        self.trace.name()
    }

    /// Instructions per cycle over `elapsed` cycles.
    pub fn ipc(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.retired as f64 / elapsed as f64
        }
    }

    /// Number of memory accesses (loads and stores) currently occupying
    /// outstanding slots.
    pub fn outstanding_loads(&self) -> usize {
        self.outstanding.len()
    }

    /// Marks a previously issued load complete.
    ///
    /// Unknown tokens are ignored (the load may belong to a drained phase).
    pub fn complete_load(&mut self, token: LoadToken) {
        if let Some(o) = self.outstanding.iter_mut().find(|o| o.token == token) {
            o.done = true;
        }
        while matches!(self.outstanding.front(), Some(o) if o.done) {
            self.outstanding.pop_front();
        }
    }

    /// Upper bound on retired instructions imposed by the ROB: the core may
    /// not run more than `rob_insts` past the oldest incomplete load.
    /// Stores never gate retirement.
    fn rob_limit(&self) -> u64 {
        match self.outstanding.iter().find(|o| !o.is_store && !o.done) {
            Some(oldest) => oldest.at_inst + self.cfg.rob_insts,
            None => u64::MAX,
        }
    }

    /// How many upcoming [`Core::tick`] calls are guaranteed not to issue a
    /// request nor draw from the trace, assuming no loads complete in the
    /// interim. `u64::MAX` means the core is blocked (ROB or MSHR) and stays
    /// quiet until an external completion arrives. Event-driven drivers may
    /// replace up to this many ticks with one [`Core::skip_quiet`] call.
    pub fn quiet_cycles(&self) -> u64 {
        if self.pending.is_none() {
            return 0; // next tick draws the trace — must run it
        }
        if self.gap_left == 0 {
            // The staged event fires as soon as an MSHR frees up.
            return if self.outstanding.len() < self.cfg.mshrs {
                0
            } else {
                u64::MAX
            };
        }
        let avail = self.rob_limit().saturating_sub(self.retired);
        if avail < self.gap_left {
            // The ROB wall lands mid-gap: the gap never reaches zero
            // without a completion, so the core retires `avail` and stalls.
            return u64::MAX;
        }
        let w = u64::from(self.cfg.retire_width.max(1));
        // The tick that retires the last gap instruction may issue; every
        // tick strictly before it is quiet.
        self.gap_left.div_ceil(w) - 1
    }

    /// Fast-forwards `n` quiet ticks in one step, reproducing exactly the
    /// retire/stall arithmetic `n` calls to [`Core::tick`] would have
    /// performed. Callers must ensure `n <= quiet_cycles()` and that no
    /// completions were due in the skipped span.
    pub fn skip_quiet(&mut self, n: u64) {
        debug_assert!(n <= self.quiet_cycles(), "skip exceeds quiet window");
        if n == 0 || self.pending.is_none() {
            return;
        }
        let avail = self.rob_limit().saturating_sub(self.retired);
        let cap = self.gap_left.min(avail);
        let w = u64::from(self.cfg.retire_width.max(1));
        let full = cap / w;
        let rem = cap % w;
        let retiring_ticks = full + u64::from(rem != 0);
        let retire_now = if n <= full { n * w } else { cap };
        self.retired += retire_now;
        self.gap_left -= retire_now;
        if n > retiring_ticks {
            self.stall_cycles += n - retiring_ticks;
        }
    }

    /// Advances the core by one cycle; returns a memory request if the core
    /// issues one this cycle (at most one per cycle).
    pub fn tick(&mut self, _now: Cycle) -> Option<CoreRequest> {
        // Ensure an event is staged.
        if self.pending.is_none() {
            let ev = self.trace.next_event();
            self.gap_left = ev.inst_gap.max(1) as u64;
            self.pending = Some(ev);
        }

        // Retire up to `retire_width`, bounded by the ROB and the staged
        // event boundary.
        let rob_limit = self.rob_limit();
        let mut retired_this_cycle = 0;
        while retired_this_cycle < self.cfg.retire_width
            && self.gap_left > 0
            && self.retired < rob_limit
        {
            self.retired += 1;
            self.gap_left -= 1;
            retired_this_cycle += 1;
        }
        if retired_this_cycle == 0 {
            self.stall_cycles += 1;
        }

        // Fire the staged event once its gap has fully retired.
        if self.gap_left == 0 {
            let ev = self.pending.expect("event staged");
            if self.outstanding.len() < self.cfg.mshrs {
                self.pending = None;
                if ev.is_store {
                    self.stores_issued += 1;
                } else {
                    self.loads_issued += 1;
                }
                let token = LoadToken(self.next_token);
                self.next_token += 1;
                self.outstanding.push_back(Outstanding {
                    token,
                    at_inst: self.retired,
                    is_store: ev.is_store,
                    done: false,
                });
                return Some(CoreRequest {
                    core: self.id,
                    addr: ev.addr,
                    is_store: ev.is_store,
                    pc: ev.pc,
                    token,
                });
            }
            // MSHRs full: the event stays staged; the core stalls.
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scripted trace for deterministic core tests.
    struct Script {
        events: Vec<TraceEvent>,
        i: usize,
    }

    impl Script {
        fn new(events: Vec<TraceEvent>) -> Self {
            Script { events, i: 0 }
        }
    }

    impl TraceSource for Script {
        fn next_event(&mut self) -> TraceEvent {
            let ev = self.events[self.i % self.events.len()];
            self.i += 1;
            ev
        }
        fn name(&self) -> &str {
            "script"
        }
    }

    fn load(gap: u32, addr: u64) -> TraceEvent {
        TraceEvent {
            inst_gap: gap,
            addr,
            is_store: false,
            pc: 0x400000,
        }
    }

    fn store(gap: u32, addr: u64) -> TraceEvent {
        TraceEvent {
            inst_gap: gap,
            addr,
            is_store: true,
            pc: 0x400004,
        }
    }

    fn drive_one(core: &mut Core, max: u64) -> (CoreRequest, u64) {
        let mut t = Cycle(0);
        loop {
            if let Some(r) = core.tick(t) {
                return (r, t.0);
            }
            t += 1;
            assert!(t.0 < max, "no request within {max} cycles");
        }
    }

    #[test]
    fn event_fires_after_gap_at_retire_width() {
        let mut core = Core::new(
            0,
            Box::new(Script::new(vec![load(10, 0x40)])),
            CoreConfig::default(),
        );
        let (req, at) = drive_one(&mut core, 100);
        assert_eq!(req.addr, 0x40);
        // 10 instructions at 2-wide retire → 5 cycles (fires on cycle 4,
        // 0-indexed).
        assert_eq!(at, 4);
        assert_eq!(core.retired_insts(), 10);
    }

    #[test]
    fn mshr_limit_bounds_outstanding_loads() {
        let cfg = CoreConfig {
            mshrs: 2,
            ..CoreConfig::default()
        };
        let mut core = Core::new(
            0,
            Box::new(Script::new(vec![
                load(1, 0x0),
                load(1, 0x40),
                load(1, 0x80),
            ])),
            cfg,
        );
        let mut reqs = 0;
        for c in 0..1000u64 {
            if core.tick(Cycle(c)).is_some() {
                reqs += 1;
            }
        }
        assert_eq!(reqs, 2, "third load must wait for an MSHR");
        assert_eq!(core.outstanding_loads(), 2);
    }

    #[test]
    fn rob_stalls_until_oldest_load_completes() {
        let cfg = CoreConfig {
            rob_insts: 16,
            ..CoreConfig::default()
        };
        let mut core = Core::new(
            0,
            Box::new(Script::new(vec![load(4, 0x0), load(1000, 0x40)])),
            cfg,
        );
        let (first, _) = drive_one(&mut core, 100);
        // Run far: without completion the core can only retire 16 more.
        for c in 10..500u64 {
            core.tick(Cycle(c));
        }
        assert_eq!(core.retired_insts(), 4 + 16);
        assert!(core.stall_cycles > 400);
        core.complete_load(first.token);
        for c in 500..1500u64 {
            core.tick(Cycle(c));
        }
        assert!(core.retired_insts() > 1000);
    }

    #[test]
    fn stores_occupy_slots_but_do_not_gate_retirement() {
        let cfg = CoreConfig {
            mshrs: 2,
            rob_insts: 4,
            ..CoreConfig::default()
        };
        let mut core = Core::new(
            0,
            Box::new(Script::new(vec![
                store(1, 0x0),
                store(1, 0x40),
                store(1, 0x80),
            ])),
            cfg,
        );
        let mut issued = Vec::new();
        for c in 0..100u64 {
            if let Some(r) = core.tick(Cycle(c)) {
                assert!(r.is_store);
                issued.push(r.token);
            }
        }
        // Slot-limited: only 2 stores in flight, third waits for a slot.
        assert_eq!(issued.len(), 2);
        assert_eq!(core.outstanding_loads(), 2);
        // Incomplete stores never gate retirement via the ROB: with both
        // slots held by stores the computed ROB limit is unbounded.
        for t in issued {
            core.complete_load(t);
        }
        let mut more = 0;
        for c in 100..200u64 {
            if core.tick(Cycle(c)).is_some() {
                more += 1;
            }
        }
        assert!(more >= 1, "freed slot lets the third store issue");
        assert_eq!(core.stores_issued, 2 + more);
    }

    #[test]
    fn completion_frees_mshr_for_next_load() {
        let cfg = CoreConfig {
            mshrs: 1,
            ..CoreConfig::default()
        };
        let mut core = Core::new(
            0,
            Box::new(Script::new(vec![load(1, 0x0), load(1, 0x40)])),
            cfg,
        );
        let (first, _) = drive_one(&mut core, 100);
        for c in 2..50u64 {
            assert!(core.tick(Cycle(c)).is_none());
        }
        core.complete_load(first.token);
        let mut got = None;
        for c in 50..200u64 {
            if let Some(r) = core.tick(Cycle(c)) {
                got = Some(r);
                break;
            }
        }
        assert_eq!(got.unwrap().addr, 0x40);
    }

    #[test]
    fn out_of_order_completion_retires_in_order() {
        let mut core = Core::new(
            0,
            Box::new(Script::new(vec![load(1, 0x0), load(1, 0x40)])),
            CoreConfig::default(),
        );
        let (a, _) = drive_one(&mut core, 100);
        let (b, _) = drive_one(&mut core, 100);
        assert_eq!(core.outstanding_loads(), 2);
        core.complete_load(b.token);
        // Younger finished first: window still holds both (head incomplete).
        assert_eq!(core.outstanding_loads(), 2);
        core.complete_load(a.token);
        assert_eq!(core.outstanding_loads(), 0);
    }

    #[test]
    fn unknown_token_ignored() {
        let mut core = Core::new(
            0,
            Box::new(Script::new(vec![load(1, 0x0)])),
            CoreConfig::default(),
        );
        core.complete_load(LoadToken(999));
        assert_eq!(core.outstanding_loads(), 0);
    }

    /// Clone-free state snapshot for skip-vs-tick equivalence checks.
    fn snapshot(core: &Core) -> (u64, u64, u64, u64, u64) {
        (
            core.retired,
            core.gap_left,
            core.stall_cycles,
            core.loads_issued,
            core.stores_issued,
        )
    }

    /// Drives `a` with per-cycle ticks and `b` with maximal quiet skips;
    /// their observable state must stay identical at every live tick.
    fn assert_skip_matches_tick(events: Vec<TraceEvent>, cfg: CoreConfig, horizon: u64) {
        let mut a = Core::new(0, Box::new(Script::new(events.clone())), cfg);
        let mut b = Core::new(0, Box::new(Script::new(events)), cfg);
        let mut t = 0u64;
        while t < horizon {
            let quiet = b.quiet_cycles();
            let n = quiet.min(horizon - t);
            if n > 0 {
                b.skip_quiet(n);
                for k in 0..n {
                    assert!(a.tick(Cycle(t + k)).is_none(), "quiet tick issued");
                }
                t += n;
                assert_eq!(snapshot(&a), snapshot(&b), "diverged after skip at {t}");
            } else {
                let ra = a.tick(Cycle(t));
                let rb = b.tick(Cycle(t));
                assert_eq!(ra, rb, "requests diverged at {t}");
                t += 1;
                assert_eq!(snapshot(&a), snapshot(&b), "diverged after tick at {t}");
            }
        }
    }

    #[test]
    fn skip_quiet_matches_ticks_for_long_gaps() {
        assert_skip_matches_tick(
            vec![load(100, 0x0), load(7, 0x40), load(1, 0x80)],
            CoreConfig::default(),
            400,
        );
    }

    #[test]
    fn skip_quiet_matches_ticks_when_rob_blocked() {
        // Loads never complete: the ROB wall lands mid-gap and the core
        // stalls indefinitely; skips must accumulate the same stall count.
        assert_skip_matches_tick(
            vec![load(4, 0x0), load(1000, 0x40)],
            CoreConfig {
                rob_insts: 16,
                ..CoreConfig::default()
            },
            600,
        );
    }

    #[test]
    fn skip_quiet_matches_ticks_when_mshr_blocked() {
        assert_skip_matches_tick(
            vec![load(1, 0x0), load(1, 0x40), load(1, 0x80)],
            CoreConfig {
                mshrs: 2,
                ..CoreConfig::default()
            },
            300,
        );
    }

    #[test]
    fn skip_quiet_with_odd_widths() {
        for width in [1u32, 2, 3, 5] {
            assert_skip_matches_tick(
                vec![load(13, 0x0), store(9, 0x40), load(31, 0x80)],
                CoreConfig {
                    retire_width: width,
                    ..CoreConfig::default()
                },
                500,
            );
        }
    }

    #[test]
    fn quiet_cycles_counts_exactly() {
        // Gap 10 at width 2: fires on the 5th tick, so 4 are quiet — but
        // a fresh core has no staged event, so the first tick must run.
        let mut core = Core::new(
            0,
            Box::new(Script::new(vec![load(10, 0x40)])),
            CoreConfig::default(),
        );
        assert_eq!(core.quiet_cycles(), 0, "unstaged event forces a tick");
        assert!(core.tick(Cycle(0)).is_none());
        assert_eq!(core.quiet_cycles(), 3);
        core.skip_quiet(3);
        assert_eq!(core.tick(Cycle(4)).map(|r| r.addr), Some(0x40));
        assert_eq!(core.retired_insts(), 10);
    }

    #[test]
    fn ipc_computation() {
        let mut core = Core::new(
            0,
            Box::new(Script::new(vec![load(100, 0x0)])),
            CoreConfig::default(),
        );
        for c in 0..25u64 {
            core.tick(Cycle(c));
        }
        assert!((core.ipc(25) - 2.0).abs() < 0.1);
        assert_eq!(core.ipc(0), 0.0);
    }

    #[test]
    fn accessors() {
        let core = Core::new(
            3,
            Box::new(Script::new(vec![load(1, 0)])),
            CoreConfig::default(),
        );
        assert_eq!(core.id(), 3);
        assert_eq!(core.workload_name(), "script");
        assert!(format!("{core:?}").contains("Core"));
    }
}
