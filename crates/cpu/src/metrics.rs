//! Performance metrics (Section 3.3 of the paper).
//!
//! Rate-mode workloads are scored by total execution time (equivalently,
//! aggregate instruction throughput over a fixed cycle budget); mixed
//! workloads use weighted speedup, Equation 2. The paper reports all
//! numbers *normalized* to the baseline Alloy Cache system; these helpers
//! compute those normalized values from per-core IPCs of two runs.

use bear_sim::stats::geometric_mean;

/// Normalized rate-mode speedup: ratio of aggregate throughput.
///
/// Under a fixed cycle budget, execution time for a fixed amount of work is
/// inversely proportional to throughput, so the normalized speedup is
/// `sum(ipc_system) / sum(ipc_baseline)`.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or the baseline
/// throughput is zero.
pub fn rate_mode_speedup(ipc_system: &[f64], ipc_baseline: &[f64]) -> f64 {
    assert_eq!(ipc_system.len(), ipc_baseline.len(), "core count mismatch");
    assert!(!ipc_system.is_empty(), "need at least one core");
    let s: f64 = ipc_system.iter().sum();
    let b: f64 = ipc_baseline.iter().sum();
    assert!(b > 0.0, "baseline throughput must be positive");
    s / b
}

/// Normalized weighted speedup (Equation 2) of a mixed run relative to the
/// baseline run of the *same* workload.
///
/// `WeightedSpeedup = Σ_i IPC_i^shared / IPC_i^single`; normalizing a
/// system's weighted speedup by the baseline's cancels the single-core
/// IPCs per core:
/// `Σ_i (ipc_system_i / ipc_single_i) / Σ_i (ipc_baseline_i / ipc_single_i)`.
/// We use the baseline shared-run IPC as the per-core reference, which
/// makes the baseline's normalized value exactly 1 and weights every
/// program equally — the standard relative-weighted-speedup formulation.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or any baseline IPC is
/// zero.
pub fn normalized_weighted_speedup(ipc_system: &[f64], ipc_baseline: &[f64]) -> f64 {
    assert_eq!(ipc_system.len(), ipc_baseline.len(), "core count mismatch");
    assert!(!ipc_system.is_empty(), "need at least one core");
    let n = ipc_system.len() as f64;
    let sum: f64 = ipc_system
        .iter()
        .zip(ipc_baseline)
        .map(|(&s, &b)| {
            assert!(b > 0.0, "baseline IPC must be positive");
            s / b
        })
        .sum();
    sum / n
}

/// Geometric mean over per-workload normalized speedups — the paper's
/// RATE / MIX / ALL54 aggregation.
pub fn gmean_speedup(speedups: &[f64]) -> f64 {
    geometric_mean(speedups)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_mode_is_throughput_ratio() {
        let base = [1.0; 8];
        let sys = [1.1; 8];
        assert!((rate_mode_speedup(&sys, &base) - 1.1).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_baseline_is_one() {
        let base = [0.5, 1.0, 2.0, 0.25];
        assert!((normalized_weighted_speedup(&base, &base) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_counts_each_program_equally() {
        let base = [1.0, 0.1];
        // Core 1 doubles, core 0 unchanged → (1 + 2) / 2 = 1.5 even though
        // aggregate IPC barely moved.
        let sys = [1.0, 0.2];
        assert!((normalized_weighted_speedup(&sys, &base) - 1.5).abs() < 1e-12);
        // Rate-mode metric would barely move:
        assert!(rate_mode_speedup(&sys, &base) < 1.1);
    }

    #[test]
    fn gmean_aggregation() {
        let g = gmean_speedup(&[1.0, 1.21]);
        assert!((g - 1.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "core count mismatch")]
    fn mismatched_lengths_panic() {
        rate_mode_speedup(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "baseline IPC must be positive")]
    fn zero_baseline_panics() {
        normalized_weighted_speedup(&[1.0], &[0.0]);
    }
}
