#![warn(missing_docs)]

//! Trace-driven multicore front end.
//!
//! The paper's system has eight 2-wide out-of-order cores. The memory
//! system only observes the arrival process of post-L2 references and the
//! cores only need to translate memory latency into slowdown, so this crate
//! models each core as a retire window (ROB) driven by a trace
//! (USIMM-style; DESIGN.md §2):
//!
//! - instructions retire at up to `retire_width` per cycle;
//! - a trace event fires after its `inst_gap` instructions have retired;
//! - loads occupy one of `mshrs` outstanding-miss slots and stall
//!   retirement once the core runs `rob_insts` instructions ahead of the
//!   oldest incomplete load (bounded memory-level parallelism);
//! - stores retire through a store buffer and never stall the core (their
//!   cost appears later as writeback traffic).
//!
//! # Example
//!
//! ```
//! use bear_cpu::{Core, CoreConfig};
//! use bear_workloads::{BenchmarkProfile, TraceGenerator};
//! use bear_sim::time::Cycle;
//!
//! let profile = BenchmarkProfile::by_name("gcc").unwrap();
//! let trace = TraceGenerator::new(profile, 0, 3, 1);
//! let mut core = Core::new(0, Box::new(trace), CoreConfig::default());
//! // Tick until the core wants to talk to the memory hierarchy.
//! let mut t = Cycle(0);
//! let req = loop {
//!     if let Some(req) = core.tick(t) { break req; }
//!     t += 1;
//! };
//! assert_eq!(req.core, 0);
//! ```

pub mod core_model;
pub mod metrics;

pub use core_model::{Core, CoreConfig, CoreRequest, LoadToken};
pub use metrics::{normalized_weighted_speedup, rate_mode_speedup};
