//! Sector-cache tag store (the SC design of Section 8).
//!
//! A sector cache reduces SRAM tag overhead by keeping one tag per large
//! *sector* (4 KB in the paper) with per-block (64 B) valid and dirty bits:
//! 1 GB of data needs only ~6 MB of SRAM. The cost, which Figure 16 shows
//! dominating, is that replacing a sector can force a burst of dirty-block
//! writebacks.

use crate::replacement::{ReplState, ReplacementPolicy, Replacer};

/// Result of probing a block address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectorProbe {
    /// Sector present and the requested block valid.
    BlockHit,
    /// Sector present but the block not yet fetched.
    BlockMiss,
    /// Sector absent entirely.
    SectorMiss,
}

#[derive(Debug, Clone)]
struct Sector {
    valid: bool,
    tag: u64,
    repl: ReplState,
    valid_blocks: u64,
    dirty_blocks: u64,
}

/// Outcome of a sector replacement: which blocks of the victim must be
/// written back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectorVictim {
    /// Sector-aligned byte address of the evicted sector.
    pub addr: u64,
    /// Number of dirty blocks that must be written back to memory.
    pub dirty_blocks: u32,
    /// Number of valid blocks held at eviction.
    pub valid_blocks: u32,
}

/// Set-associative sector tag store.
#[derive(Debug, Clone)]
pub struct SectorTagStore {
    sets: u64,
    ways: u32,
    sector_bytes: u64,
    block_bytes: u64,
    blocks_per_sector: u32,
    sectors: Vec<Sector>,
    replacer: Replacer,
    /// Block-level hits.
    pub block_hits: u64,
    /// Block misses within a present sector.
    pub block_misses: u64,
    /// Whole-sector misses.
    pub sector_misses: u64,
}

impl SectorTagStore {
    /// Creates a store covering `capacity_bytes` of data with the given
    /// sector/block sizes and associativity.
    ///
    /// # Panics
    ///
    /// Panics if sizes are zero, the sector is not a multiple of the block,
    /// more than 64 blocks per sector are requested, or the capacity is not
    /// a whole number of sets.
    pub fn new(
        capacity_bytes: u64,
        ways: u32,
        sector_bytes: u64,
        block_bytes: u64,
        policy: ReplacementPolicy,
    ) -> Self {
        assert!(capacity_bytes > 0 && ways > 0 && sector_bytes > 0 && block_bytes > 0);
        assert!(
            sector_bytes.is_multiple_of(block_bytes),
            "sector must be a whole number of blocks"
        );
        let blocks_per_sector = (sector_bytes / block_bytes) as u32;
        assert!(
            blocks_per_sector <= 64,
            "bitmask supports at most 64 blocks per sector"
        );
        assert!(
            capacity_bytes.is_multiple_of(ways as u64 * sector_bytes),
            "capacity must be a whole number of sets"
        );
        let sets = capacity_bytes / (ways as u64 * sector_bytes);
        SectorTagStore {
            sets,
            ways,
            sector_bytes,
            block_bytes,
            blocks_per_sector,
            sectors: vec![
                Sector {
                    valid: false,
                    tag: 0,
                    repl: 0,
                    valid_blocks: 0,
                    dirty_blocks: 0,
                };
                (sets * ways as u64) as usize
            ],
            replacer: Replacer::new(policy, 0x5EC7),
            block_hits: 0,
            block_misses: 0,
            sector_misses: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Blocks per sector.
    pub fn blocks_per_sector(&self) -> u32 {
        self.blocks_per_sector
    }

    fn decompose(&self, addr: u64) -> (u64, u64, u32) {
        let block = (addr % self.sector_bytes) / self.block_bytes;
        let sector = addr / self.sector_bytes;
        (sector % self.sets, sector / self.sets, block as u32)
    }

    fn set_range(&self, set: u64) -> std::ops::Range<usize> {
        let start = (set * self.ways as u64) as usize;
        start..start + self.ways as usize
    }

    fn find(&self, set: u64, tag: u64) -> Option<usize> {
        let range = self.set_range(set);
        self.sectors[range.clone()]
            .iter()
            .position(|s| s.valid && s.tag == tag)
            .map(|i| range.start + i)
    }

    /// Probes a block address, updating statistics and recency on sector
    /// hits.
    pub fn probe(&mut self, addr: u64) -> SectorProbe {
        let (set, tag, block) = self.decompose(addr);
        match self.find(set, tag) {
            Some(i) => {
                self.replacer.on_hit(&mut self.sectors[i].repl);
                if self.sectors[i].valid_blocks & (1 << block) != 0 {
                    self.block_hits += 1;
                    SectorProbe::BlockHit
                } else {
                    self.block_misses += 1;
                    SectorProbe::BlockMiss
                }
            }
            None => {
                self.sector_misses += 1;
                SectorProbe::SectorMiss
            }
        }
    }

    /// Checks presence without updating statistics.
    pub fn peek(&self, addr: u64) -> SectorProbe {
        let (set, tag, block) = self.decompose(addr);
        match self.find(set, tag) {
            Some(i) if self.sectors[i].valid_blocks & (1 << block) != 0 => SectorProbe::BlockHit,
            Some(_) => SectorProbe::BlockMiss,
            None => SectorProbe::SectorMiss,
        }
    }

    /// Installs a block whose sector is already present.
    ///
    /// # Panics
    ///
    /// Panics if the sector is absent.
    pub fn fill_block(&mut self, addr: u64, dirty: bool) {
        let (set, tag, block) = self.decompose(addr);
        let i = self
            .find(set, tag)
            .expect("fill_block requires the sector to be present");
        self.sectors[i].valid_blocks |= 1 << block;
        if dirty {
            self.sectors[i].dirty_blocks |= 1 << block;
        }
    }

    /// Allocates a sector for `addr` (installing the referenced block) and
    /// returns the victim sector if one was displaced.
    pub fn fill_sector(&mut self, addr: u64, dirty: bool) -> Option<SectorVictim> {
        let (set, tag, block) = self.decompose(addr);
        debug_assert!(self.find(set, tag).is_none(), "sector already present");
        let range = self.set_range(set);
        let empty = self.sectors[range.clone()].iter().position(|s| !s.valid);
        let (idx, victim) = match empty {
            Some(w) => (range.start + w, None),
            None => {
                let mut states: Vec<ReplState> =
                    self.sectors[range.clone()].iter().map(|s| s.repl).collect();
                let w = self.replacer.pick_victim(&mut states);
                for (s, st) in self.sectors[range.clone()].iter_mut().zip(states) {
                    s.repl = st;
                }
                let idx = range.start + w;
                let v = &self.sectors[idx];
                let victim = SectorVictim {
                    addr: (v.tag * self.sets + set) * self.sector_bytes,
                    dirty_blocks: v.dirty_blocks.count_ones(),
                    valid_blocks: v.valid_blocks.count_ones(),
                };
                (idx, Some(victim))
            }
        };
        let s = &mut self.sectors[idx];
        s.valid = true;
        s.tag = tag;
        s.valid_blocks = 1 << block;
        s.dirty_blocks = if dirty { 1 << block } else { 0 };
        self.replacer.on_fill(&mut s.repl);
        victim
    }

    /// Marks a present block dirty. Returns whether the block was present.
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        let (set, tag, block) = self.decompose(addr);
        match self.find(set, tag) {
            Some(i) if self.sectors[i].valid_blocks & (1 << block) != 0 => {
                self.sectors[i].dirty_blocks |= 1 << block;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SectorTagStore {
        // 8 sectors of 512 B (8 blocks of 64 B), 2-way → 4 sets.
        SectorTagStore::new(4096, 2, 512, 64, ReplacementPolicy::Lru)
    }

    fn sector_addr(set: u64, tag: u64) -> u64 {
        (tag * 4 + set) * 512
    }

    #[test]
    fn shape() {
        let s = store();
        assert_eq!(s.sets(), 4);
        assert_eq!(s.blocks_per_sector(), 8);
    }

    #[test]
    fn probe_states() {
        let mut s = store();
        let a = sector_addr(1, 3);
        assert_eq!(s.probe(a), SectorProbe::SectorMiss);
        s.fill_sector(a, false);
        assert_eq!(s.probe(a), SectorProbe::BlockHit);
        // Another block in the same sector: present sector, absent block.
        assert_eq!(s.probe(a + 64), SectorProbe::BlockMiss);
        s.fill_block(a + 64, false);
        assert_eq!(s.probe(a + 64), SectorProbe::BlockHit);
        assert_eq!(s.block_hits, 2);
        assert_eq!(s.block_misses, 1);
        assert_eq!(s.sector_misses, 1);
    }

    #[test]
    fn peek_does_not_count() {
        let mut s = store();
        let a = sector_addr(0, 1);
        assert_eq!(s.peek(a), SectorProbe::SectorMiss);
        s.fill_sector(a, false);
        assert_eq!(s.peek(a), SectorProbe::BlockHit);
        assert_eq!(s.peek(a + 64), SectorProbe::BlockMiss);
        assert_eq!(s.block_hits, 0);
        assert_eq!(s.sector_misses, 0);
    }

    #[test]
    fn victim_reports_dirty_block_count() {
        let mut s = store();
        let a = sector_addr(2, 1);
        s.fill_sector(a, true); // block 0 dirty
        s.fill_block(a + 64, true);
        s.fill_block(a + 128, false);
        s.fill_sector(sector_addr(2, 2), false);
        let v = s.fill_sector(sector_addr(2, 3), false).expect("victim");
        assert_eq!(v.addr, a);
        assert_eq!(v.dirty_blocks, 2);
        assert_eq!(v.valid_blocks, 3);
    }

    #[test]
    fn mark_dirty_only_on_valid_blocks() {
        let mut s = store();
        let a = sector_addr(3, 1);
        assert!(!s.mark_dirty(a));
        s.fill_sector(a, false);
        assert!(s.mark_dirty(a));
        assert!(!s.mark_dirty(a + 64), "block not yet filled");
        s.fill_block(a + 64, false);
        assert!(s.mark_dirty(a + 64));
        s.fill_sector(sector_addr(3, 2), false);
        let v = s.fill_sector(sector_addr(3, 9), false).unwrap();
        assert_eq!(v.dirty_blocks, 2);
    }

    #[test]
    fn lru_across_sectors() {
        let mut s = store();
        s.fill_sector(sector_addr(0, 1), false);
        s.fill_sector(sector_addr(0, 2), false);
        s.probe(sector_addr(0, 1)); // touch tag 1
        let v = s.fill_sector(sector_addr(0, 3), false).unwrap();
        assert_eq!(v.addr, sector_addr(0, 2));
    }

    #[test]
    #[should_panic(expected = "sector to be present")]
    fn fill_block_without_sector_panics() {
        let mut s = store();
        s.fill_block(sector_addr(0, 1), false);
    }

    #[test]
    #[should_panic(expected = "at most 64 blocks")]
    fn too_many_blocks_per_sector_panics() {
        SectorTagStore::new(1 << 20, 2, 8192, 64, ReplacementPolicy::Lru);
    }

    #[test]
    fn paper_scale_tag_store_cost() {
        // The paper's SC: 1 GB data, 4 KB sectors, 64 B blocks, 32-way.
        let s = SectorTagStore::new(1 << 30, 32, 4096, 64, ReplacementPolicy::Lru);
        let sectors = (1u64 << 30) / 4096;
        assert_eq!(s.sets() * 32, sectors);
        // ~6 MB SRAM: 262144 sectors × ~24 B (tag + 2×64-bit masks + state).
        let sram_bytes = sectors * 24;
        assert!(sram_bytes <= 7 << 20);
    }
}
