//! Generic set-associative cache with per-line metadata.
//!
//! [`SetAssocCache`] models contents and replacement only — timing belongs
//! to the system model in `bear-core`. The metadata type parameter `M` lets
//! the L3 carry its BEAR *DRAM Cache Presence* bit without this crate
//! knowing anything about DRAM caches.

use crate::replacement::{ReplState, ReplacementPolicy, Replacer};

/// Size/shape description of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or capacity is not an exact multiple
    /// of `ways * line_bytes`.
    pub fn new(capacity_bytes: u64, ways: u32, line_bytes: u64) -> Self {
        assert!(capacity_bytes > 0 && ways > 0 && line_bytes > 0);
        assert!(
            capacity_bytes.is_multiple_of(ways as u64 * line_bytes),
            "capacity must be a whole number of sets"
        );
        CacheGeometry {
            capacity_bytes,
            ways,
            line_bytes,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (self.ways as u64 * self.line_bytes)
    }

    /// Total number of lines.
    pub fn lines(&self) -> u64 {
        self.capacity_bytes / self.line_bytes
    }

    /// Splits a byte address into (set, tag).
    #[inline]
    pub fn decompose(&self, addr: u64) -> (u64, u64) {
        let line = addr / self.line_bytes;
        (line % self.sets(), line / self.sets())
    }

    /// Reconstructs a line-aligned byte address from (set, tag).
    #[inline]
    pub fn recompose(&self, set: u64, tag: u64) -> u64 {
        (tag * self.sets() + set) * self.line_bytes
    }
}

#[derive(Debug, Clone)]
struct Line<M> {
    valid: bool,
    tag: u64,
    dirty: bool,
    repl: ReplState,
    meta: M,
}

/// Description of an evicted line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Victim<M> {
    /// Line-aligned byte address of the evicted line.
    pub addr: u64,
    /// Whether the line was dirty.
    pub dirty: bool,
    /// Its metadata at eviction.
    pub meta: M,
}

/// Hit/contents statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Demand probes that hit.
    pub hits: u64,
    /// Demand probes that missed.
    pub misses: u64,
    /// Fills performed.
    pub fills: u64,
    /// Evictions of dirty lines.
    pub dirty_evictions: u64,
    /// Evictions of clean lines.
    pub clean_evictions: u64,
}

impl CacheStats {
    /// Hit ratio over demand probes (0 if no probes).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative cache holding tags and metadata (no data payloads —
/// this is an architectural content model).
#[derive(Debug, Clone)]
pub struct SetAssocCache<M> {
    geom: CacheGeometry,
    lines: Vec<Line<M>>,
    replacer: Replacer,
    /// Access statistics.
    pub stats: CacheStats,
}

impl<M: Clone + Default> SetAssocCache<M> {
    /// Creates an empty cache.
    pub fn new(geom: CacheGeometry, policy: ReplacementPolicy) -> Self {
        Self::with_seed(geom, policy, 0x5EED)
    }

    /// Creates an empty cache with an explicit replacement RNG seed.
    pub fn with_seed(geom: CacheGeometry, policy: ReplacementPolicy, seed: u64) -> Self {
        let n = (geom.sets() * geom.ways as u64) as usize;
        SetAssocCache {
            geom,
            lines: vec![
                Line {
                    valid: false,
                    tag: 0,
                    dirty: false,
                    repl: 0,
                    meta: M::default(),
                };
                n
            ],
            replacer: Replacer::new(policy, seed),
            stats: CacheStats::default(),
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    #[inline]
    fn set_range(&self, set: u64) -> std::ops::Range<usize> {
        let start = (set * self.geom.ways as u64) as usize;
        start..start + self.geom.ways as usize
    }

    fn find(&self, addr: u64) -> Option<usize> {
        let (set, tag) = self.geom.decompose(addr);
        let range = self.set_range(set);
        self.lines[range.clone()]
            .iter()
            .position(|l| l.valid && l.tag == tag)
            .map(|i| range.start + i)
    }

    /// Non-updating presence check.
    pub fn contains(&self, addr: u64) -> bool {
        self.find(addr).is_some()
    }

    /// Looks up `addr` *without* recording a demand access (no stats, no
    /// recency update). Returns the metadata if present.
    pub fn peek(&self, addr: u64) -> Option<&M> {
        self.find(addr).map(|i| &self.lines[i].meta)
    }

    /// Demand access: updates recency and hit/miss statistics. `is_write`
    /// marks the line dirty on a hit. Returns a mutable reference to the
    /// line's metadata on a hit.
    pub fn access(&mut self, addr: u64, is_write: bool) -> Option<&mut M> {
        match self.find(addr) {
            Some(i) => {
                self.stats.hits += 1;
                let line = &mut self.lines[i];
                self.replacer.on_hit(&mut line.repl);
                if is_write {
                    line.dirty = true;
                }
                Some(&mut self.lines[i].meta)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Alias for [`SetAssocCache::access`] with `is_write == false`,
    /// returning an immutable view.
    pub fn probe(&mut self, addr: u64) -> Option<&M> {
        self.access(addr, false).map(|m| &*m)
    }

    /// Inserts `addr`, evicting if the set is full. Returns the victim, if
    /// a valid line was displaced.
    pub fn fill(&mut self, addr: u64, dirty: bool, meta: M) -> Option<Victim<M>> {
        debug_assert!(
            self.find(addr).is_none(),
            "fill of a line already present: {addr:#x}"
        );
        self.stats.fills += 1;
        let (set, tag) = self.geom.decompose(addr);
        let range = self.set_range(set);

        // Prefer an invalid way.
        let way = self.lines[range.clone()].iter().position(|l| !l.valid);
        let (idx, victim) = match way {
            Some(w) => (range.start + w, None),
            None => {
                let mut states: Vec<ReplState> =
                    self.lines[range.clone()].iter().map(|l| l.repl).collect();
                let vway = self.replacer.pick_victim(&mut states);
                for (l, s) in self.lines[range.clone()].iter_mut().zip(states) {
                    l.repl = s;
                }
                let idx = range.start + vway;
                let v = &self.lines[idx];
                let victim = Victim {
                    addr: self.geom.recompose(set, v.tag),
                    dirty: v.dirty,
                    meta: v.meta.clone(),
                };
                if v.dirty {
                    self.stats.dirty_evictions += 1;
                } else {
                    self.stats.clean_evictions += 1;
                }
                (idx, Some(victim))
            }
        };

        let line = &mut self.lines[idx];
        line.valid = true;
        line.tag = tag;
        line.dirty = dirty;
        line.meta = meta;
        self.replacer.on_fill(&mut line.repl);
        victim
    }

    /// Removes `addr` if present, returning its victim descriptor (used for
    /// back-invalidation in the inclusive design).
    pub fn invalidate(&mut self, addr: u64) -> Option<Victim<M>> {
        self.find(addr).map(|i| {
            let line = &mut self.lines[i];
            line.valid = false;
            Victim {
                addr,
                dirty: line.dirty,
                meta: line.meta.clone(),
            }
        })
    }

    /// Applies `f` to the metadata of `addr` if present (no recency update).
    /// Returns whether the line was present.
    pub fn update_meta(&mut self, addr: u64, f: impl FnOnce(&mut M)) -> bool {
        match self.find(addr) {
            Some(i) => {
                f(&mut self.lines[i].meta);
                true
            }
            None => false,
        }
    }

    /// Marks `addr` clean (after its writeback has been accepted downstream).
    pub fn mark_clean(&mut self, addr: u64) -> bool {
        match self.find(addr) {
            Some(i) => {
                self.lines[i].dirty = false;
                true
            }
            None => false,
        }
    }

    /// Number of valid lines (O(n); diagnostics only).
    pub fn occupancy(&self) -> u64 {
        self.lines.iter().filter(|l| l.valid).count() as u64
    }

    /// Iterates over valid lines as `(line-aligned byte address, dirty,
    /// metadata)` in storage order. Used by whole-cache invariant scans.
    pub fn iter(&self) -> impl Iterator<Item = (u64, bool, &M)> + '_ {
        let ways = self.geom.ways as u64;
        self.lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.valid)
            .map(move |(i, l)| {
                let set = i as u64 / ways;
                (self.geom.recompose(set, l.tag), l.dirty, &l.meta)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache<u8> {
        // 4 sets × 2 ways × 64 B lines.
        SetAssocCache::new(CacheGeometry::new(512, 2, 64), ReplacementPolicy::Lru)
    }

    fn addr(set: u64, tag: u64) -> u64 {
        (tag * 4 + set) * 64
    }

    #[test]
    fn geometry_math() {
        let g = CacheGeometry::new(8 << 20, 16, 64);
        assert_eq!(g.sets(), 8192);
        assert_eq!(g.lines(), 131072);
        let a = 0xDEAD_BEEF & !63;
        let (s, t) = g.decompose(a);
        assert_eq!(g.recompose(s, t), a);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn ragged_geometry_panics() {
        CacheGeometry::new(1000, 3, 64);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert!(c.access(addr(1, 5), false).is_none());
        assert!(c.fill(addr(1, 5), false, 7).is_none());
        assert_eq!(c.access(addr(1, 5), false).copied(), Some(7));
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.fills, 1);
    }

    #[test]
    fn eviction_reports_victim_address() {
        let mut c = small();
        c.fill(addr(2, 1), false, 0);
        c.fill(addr(2, 2), false, 0);
        // Set 2 is full; next fill evicts the LRU line (tag 1).
        let v = c.fill(addr(2, 3), false, 0).expect("victim expected");
        assert_eq!(v.addr, addr(2, 1));
        assert!(!v.dirty);
        assert!(!c.contains(addr(2, 1)));
        assert!(c.contains(addr(2, 2)));
        assert!(c.contains(addr(2, 3)));
    }

    #[test]
    fn lru_respects_recency() {
        let mut c = small();
        c.fill(addr(0, 1), false, 0);
        c.fill(addr(0, 2), false, 0);
        c.access(addr(0, 1), false); // make tag 1 MRU
        let v = c.fill(addr(0, 3), false, 0).unwrap();
        assert_eq!(v.addr, addr(0, 2));
    }

    #[test]
    fn writes_set_dirty_and_dirty_evictions_counted() {
        let mut c = small();
        c.fill(addr(3, 1), false, 0);
        c.access(addr(3, 1), true);
        c.fill(addr(3, 2), false, 0);
        let v = c.fill(addr(3, 3), false, 0).unwrap();
        assert_eq!(v.addr, addr(3, 1));
        assert!(v.dirty);
        assert_eq!(c.stats.dirty_evictions, 1);
        assert_eq!(c.stats.clean_evictions, 0);
    }

    #[test]
    fn fill_dirty_flag_preserved() {
        let mut c = small();
        c.fill(addr(0, 1), true, 0);
        c.fill(addr(0, 2), false, 0);
        let v = c.fill(addr(0, 3), false, 0).unwrap();
        assert!(v.dirty, "dirty-at-fill line must write back");
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.fill(addr(1, 1), true, 9);
        let v = c.invalidate(addr(1, 1)).unwrap();
        assert!(v.dirty);
        assert_eq!(v.meta, 9);
        assert!(!c.contains(addr(1, 1)));
        assert!(c.invalidate(addr(1, 1)).is_none());
    }

    #[test]
    fn peek_does_not_touch_stats_or_recency() {
        let mut c = small();
        c.fill(addr(0, 1), false, 3);
        c.fill(addr(0, 2), false, 4);
        for _ in 0..10 {
            assert_eq!(c.peek(addr(0, 1)).copied(), Some(3));
        }
        assert_eq!(c.stats.hits, 0);
        // tag 1 is still LRU despite the peeks.
        let v = c.fill(addr(0, 3), false, 0).unwrap();
        assert_eq!(v.addr, addr(0, 1));
    }

    #[test]
    fn update_meta_and_mark_clean() {
        let mut c = small();
        c.fill(addr(2, 2), true, 1);
        assert!(c.update_meta(addr(2, 2), |m| *m = 42));
        assert_eq!(c.peek(addr(2, 2)).copied(), Some(42));
        assert!(c.mark_clean(addr(2, 2)));
        c.fill(addr(2, 1), false, 0);
        let v = c.fill(addr(2, 5), false, 0).unwrap();
        assert!(!v.dirty, "mark_clean must clear dirty state");
        assert!(!c.update_meta(0xFFFF_0000, |_| {}));
        assert!(!c.mark_clean(0xFFFF_0000));
    }

    #[test]
    fn occupancy_and_hit_rate() {
        let mut c = small();
        assert_eq!(c.occupancy(), 0);
        c.fill(addr(0, 1), false, 0);
        c.fill(addr(1, 1), false, 0);
        assert_eq!(c.occupancy(), 2);
        c.access(addr(0, 1), false);
        c.access(addr(3, 9), false);
        assert!((c.stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn iter_reports_resident_lines_with_state() {
        let mut c = small();
        c.fill(addr(1, 5), true, 7);
        c.fill(addr(3, 2), false, 9);
        let mut seen: Vec<_> = c.iter().map(|(a, d, m)| (a, d, *m)).collect();
        seen.sort_unstable();
        let mut want = vec![(addr(1, 5), true, 7u8), (addr(3, 2), false, 9u8)];
        want.sort_unstable();
        assert_eq!(seen, want);
        c.invalidate(addr(1, 5));
        assert_eq!(c.iter().count(), 1);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small();
        for set in 0..4 {
            c.fill(addr(set, 1), false, 0);
            c.fill(addr(set, 2), false, 0);
        }
        assert_eq!(c.occupancy(), 8);
        for set in 0..4 {
            assert!(c.contains(addr(set, 1)));
            assert!(c.contains(addr(set, 2)));
        }
    }
}
