//! MissMap: line-presence tracking for the Loh-Hill cache.
//!
//! The Loh-Hill design consults an on-chip *MissMap* before accessing the
//! DRAM cache so that definite misses skip the in-DRAM tag lookup. The
//! paper models the MissMap as having the LLC's latency (24 cycles) and,
//! for the Mostly-Clean variant, as a perfect hit/miss predictor. We model
//! the content exactly (a presence set at line granularity, organized in
//! segments like the original proposal) and let `bear-core` attach the
//! latency.

use std::collections::HashMap;

/// Presence map over cache-line addresses, bucketed into page-sized
/// segments (the original MissMap's organization: one bit vector per 4 KB
/// segment).
#[derive(Debug, Clone, Default)]
pub struct MissMap {
    segments: HashMap<u64, u64>,
    line_bytes: u64,
    lines_per_segment: u32,
}

impl MissMap {
    /// Creates an empty map with 64 B lines and 4 KB segments.
    pub fn new() -> Self {
        Self::with_shape(64, 4096)
    }

    /// Creates an empty map with explicit line/segment sizes.
    ///
    /// # Panics
    ///
    /// Panics if the segment does not hold a whole number of ≤64 lines.
    pub fn with_shape(line_bytes: u64, segment_bytes: u64) -> Self {
        assert!(line_bytes > 0 && segment_bytes.is_multiple_of(line_bytes));
        let lines_per_segment = (segment_bytes / line_bytes) as u32;
        assert!(
            lines_per_segment <= 64,
            "segment bit vector limited to 64 lines"
        );
        MissMap {
            segments: HashMap::new(),
            line_bytes,
            lines_per_segment,
        }
    }

    fn key(&self, addr: u64) -> (u64, u64) {
        let line = addr / self.line_bytes;
        let seg = line / self.lines_per_segment as u64;
        let bit = line % self.lines_per_segment as u64;
        (seg, bit)
    }

    /// Whether the line holding `addr` is marked present.
    pub fn contains(&self, addr: u64) -> bool {
        let (seg, bit) = self.key(addr);
        self.segments
            .get(&seg)
            .is_some_and(|mask| mask & (1 << bit) != 0)
    }

    /// Marks the line present.
    pub fn insert(&mut self, addr: u64) {
        let (seg, bit) = self.key(addr);
        *self.segments.entry(seg).or_insert(0) |= 1 << bit;
    }

    /// Marks the line absent.
    pub fn remove(&mut self, addr: u64) {
        let (seg, bit) = self.key(addr);
        if let Some(mask) = self.segments.get_mut(&seg) {
            *mask &= !(1 << bit);
            if *mask == 0 {
                self.segments.remove(&seg);
            }
        }
    }

    /// Number of lines marked present.
    pub fn len(&self) -> u64 {
        self.segments.values().map(|m| m.count_ones() as u64).sum()
    }

    /// Whether no lines are present.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Number of live segments (storage diagnostics).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut m = MissMap::new();
        assert!(!m.contains(0x1000));
        m.insert(0x1000);
        assert!(m.contains(0x1000));
        assert!(m.contains(0x1010), "same 64B line");
        assert!(!m.contains(0x1040), "next line");
        m.remove(0x1000);
        assert!(!m.contains(0x1000));
        assert!(m.is_empty());
    }

    #[test]
    fn lines_within_a_segment_share_a_mask() {
        let mut m = MissMap::new();
        for i in 0..64 {
            m.insert(i * 64);
        }
        assert_eq!(m.segment_count(), 1);
        assert_eq!(m.len(), 64);
        m.insert(64 * 64);
        assert_eq!(m.segment_count(), 2);
    }

    #[test]
    fn empty_segments_are_reclaimed() {
        let mut m = MissMap::new();
        m.insert(0);
        m.insert(64);
        m.remove(0);
        assert_eq!(m.segment_count(), 1);
        m.remove(64);
        assert_eq!(m.segment_count(), 0);
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut m = MissMap::new();
        m.remove(0xABC0);
        assert!(m.is_empty());
    }

    #[test]
    fn custom_shape() {
        let mut m = MissMap::with_shape(64, 2048);
        m.insert(0);
        m.insert(2048);
        assert_eq!(m.segment_count(), 2);
    }

    #[test]
    #[should_panic(expected = "64 lines")]
    fn oversized_segment_panics() {
        MissMap::with_shape(64, 64 * 128);
    }
}
