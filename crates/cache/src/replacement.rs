//! Replacement policies for [`crate::set_assoc::SetAssocCache`].
//!
//! The paper's L3 uses LRU; random replacement exists for ablation studies,
//! and SRRIP (re-reference interval prediction, one of the policies the
//! paper cites as orthogonal cache optimization) is provided as an extension
//! so ablation benches can quantify how little replacement sophistication
//! matters next to bandwidth bloat.

use bear_sim::rng::SimRng;

/// Which victim-selection policy a cache instance uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used (the paper's baseline for SRAM caches).
    #[default]
    Lru,
    /// Uniform-random victim selection.
    Random,
    /// Static re-reference interval prediction with 2-bit RRPVs.
    Srrip,
}

/// Per-line replacement state: an LRU stamp or an RRPV depending on policy.
pub type ReplState = u32;

/// Maximum RRPV for 2-bit SRRIP.
const RRPV_MAX: u32 = 3;
/// RRPV assigned on insertion ("long re-reference interval").
const RRPV_INSERT: u32 = 2;

/// Policy engine owned by one cache instance.
#[derive(Debug, Clone)]
pub struct Replacer {
    policy: ReplacementPolicy,
    /// Monotonic clock for LRU stamps.
    clock: u64,
    rng: SimRng,
}

impl Replacer {
    /// Creates a replacer; `seed` only matters for [`ReplacementPolicy::Random`].
    pub fn new(policy: ReplacementPolicy, seed: u64) -> Self {
        Replacer {
            policy,
            clock: 0,
            rng: SimRng::new(seed),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// State for a line that was just touched (hit).
    pub fn on_hit(&mut self, state: &mut ReplState) {
        match self.policy {
            ReplacementPolicy::Lru => {
                self.clock += 1;
                *state = self.clock as ReplState;
            }
            ReplacementPolicy::Random => {}
            ReplacementPolicy::Srrip => *state = 0,
        }
    }

    /// State for a line that was just inserted.
    pub fn on_fill(&mut self, state: &mut ReplState) {
        match self.policy {
            ReplacementPolicy::Lru => {
                self.clock += 1;
                *state = self.clock as ReplState;
            }
            ReplacementPolicy::Random => {}
            ReplacementPolicy::Srrip => *state = RRPV_INSERT,
        }
    }

    /// Picks a victim way among `states` (all ways valid). May mutate the
    /// states (SRRIP ages lines until one reaches `RRPV_MAX`).
    pub fn pick_victim(&mut self, states: &mut [ReplState]) -> usize {
        debug_assert!(!states.is_empty());
        match self.policy {
            ReplacementPolicy::Lru => states
                .iter()
                .enumerate()
                .min_by_key(|(_, &s)| s)
                .map(|(i, _)| i)
                .expect("non-empty"),
            ReplacementPolicy::Random => self.rng.next_below(states.len() as u64) as usize,
            ReplacementPolicy::Srrip => loop {
                if let Some(i) = states.iter().position(|&s| s >= RRPV_MAX) {
                    break i;
                }
                for s in states.iter_mut() {
                    *s += 1;
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut r = Replacer::new(ReplacementPolicy::Lru, 0);
        let mut states = [0u32; 4];
        for s in states.iter_mut() {
            r.on_fill(s);
        }
        // Touch ways 0, 2, 3 → way 1 is LRU.
        r.on_hit(&mut states[0]);
        r.on_hit(&mut states[2]);
        r.on_hit(&mut states[3]);
        assert_eq!(r.pick_victim(&mut states), 1);
    }

    #[test]
    fn lru_victim_changes_with_access_order() {
        let mut r = Replacer::new(ReplacementPolicy::Lru, 0);
        let mut states = [0u32; 3];
        for s in states.iter_mut() {
            r.on_fill(s);
        }
        r.on_hit(&mut states[0]);
        assert_eq!(r.pick_victim(&mut states), 1);
        r.on_hit(&mut states[1]);
        assert_eq!(r.pick_victim(&mut states), 2);
    }

    #[test]
    fn random_covers_all_ways() {
        let mut r = Replacer::new(ReplacementPolicy::Random, 42);
        let mut states = [0u32; 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.pick_victim(&mut states)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn srrip_inserts_at_long_interval_and_promotes_on_hit() {
        let mut r = Replacer::new(ReplacementPolicy::Srrip, 0);
        let mut a = 0;
        r.on_fill(&mut a);
        assert_eq!(a, RRPV_INSERT);
        r.on_hit(&mut a);
        assert_eq!(a, 0);
    }

    #[test]
    fn srrip_prefers_distant_lines_and_ages() {
        let mut r = Replacer::new(ReplacementPolicy::Srrip, 0);
        let mut states = [0, RRPV_MAX, 2, 2];
        assert_eq!(r.pick_victim(&mut states), 1);
        // Aging path: no line at max → everyone ages until one reaches max.
        let mut states = [0u32, 1, 2, 2];
        let v = r.pick_victim(&mut states);
        assert!(v == 2 || v == 3);
        assert_eq!(states[0], 1);
    }

    #[test]
    fn policy_accessor() {
        assert_eq!(
            Replacer::new(ReplacementPolicy::Srrip, 0).policy(),
            ReplacementPolicy::Srrip
        );
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }
}
