#![warn(missing_docs)]

//! SRAM cache models used around the DRAM cache.
//!
//! Three structures from the paper's system live here:
//!
//! - [`set_assoc::SetAssocCache`]: a generic set-associative cache with
//!   pluggable replacement and per-line metadata. Used for the 8 MB / 16-way
//!   on-chip L3 (whose per-line metadata carries the BEAR *DRAM Cache
//!   Presence* bit) and for the Tags-In-SRAM (TIS) tag store of Section 8.
//! - [`sector::SectorTagStore`]: the Sector Cache (SC) tag organization —
//!   4 KB sectors with per-block valid/dirty state — also from Section 8.
//! - [`missmap::MissMap`]: the line-presence tracker used by the Loh-Hill
//!   cache and its Mostly-Clean extension (Section 7.5).
//!
//! # Example
//!
//! ```
//! use bear_cache::set_assoc::{CacheGeometry, SetAssocCache};
//! use bear_cache::replacement::ReplacementPolicy;
//!
//! // An 8 MB, 16-way L3 with 64 B lines (the paper's Table 1).
//! let geom = CacheGeometry::new(8 << 20, 16, 64);
//! let mut l3: SetAssocCache<bool> = SetAssocCache::new(geom, ReplacementPolicy::Lru);
//! assert!(l3.probe(0x1000).is_none());
//! l3.fill(0x1000, false, false);
//! assert!(l3.probe(0x1000).is_some());
//! ```

pub mod missmap;
pub mod replacement;
pub mod sector;
pub mod set_assoc;

pub use missmap::MissMap;
pub use replacement::ReplacementPolicy;
pub use sector::{SectorProbe, SectorTagStore};
pub use set_assoc::{CacheGeometry, SetAssocCache, Victim};
