//! Property tests: the set-associative cache against a reference model,
//! driven by the in-tree [`bear_sim::check`] engine.

use bear_cache::{CacheGeometry, MissMap, ReplacementPolicy, SetAssocCache};
use bear_sim::check::{check, Source};
use bear_sim::{prop_assert, prop_assert_eq};
use std::collections::{HashMap, HashSet};

/// Contents always agree with a naive map model (ignoring replacement
/// choice): a line reported present was filled and not displaced, and
/// the number of valid lines per set never exceeds the associativity.
#[test]
fn set_assoc_contents_sound() {
    check(256, |src: &mut Source| {
        let addrs = src.vec_with(1..300, |s| s.u64_in(0..4096));
        let writes = src.vec_with(1..300, |s| s.bool());
        let geom = CacheGeometry::new(2048, 2, 64); // 16 sets × 2 ways
        let mut cache: SetAssocCache<()> = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        let mut resident: HashSet<u64> = HashSet::new();
        for (i, &a) in addrs.iter().enumerate() {
            let addr = a * 64;
            let w = writes[i % writes.len()];
            let hit = cache.access(addr, w).is_some();
            prop_assert_eq!(hit, resident.contains(&addr), "addr {}", addr);
            if !hit {
                if let Some(v) = cache.fill(addr, false, ()) {
                    prop_assert!(resident.remove(&v.addr), "victim {:x} unknown", v.addr);
                }
                resident.insert(addr);
            }
            prop_assert!(resident.len() as u64 <= geom.lines());
        }
        prop_assert_eq!(cache.occupancy(), resident.len() as u64);
        Ok(())
    });
}

/// Dirty state round-trips: a line written is dirty at eviction unless
/// marked clean in between.
#[test]
fn dirty_bits_tracked() {
    check(256, |src: &mut Source| {
        let ops = src.vec_with(1..200, |s| (s.u64_in(0..64), s.bool()));
        let geom = CacheGeometry::new(1024, 2, 64); // 8 sets × 2 ways
        let mut cache: SetAssocCache<()> = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        let mut dirty: HashMap<u64, bool> = HashMap::new();
        for &(a, w) in &ops {
            let addr = a * 64;
            if cache.access(addr, w).is_some() {
                if w {
                    dirty.insert(addr, true);
                }
            } else {
                if let Some(v) = cache.fill(addr, w, ()) {
                    let expect = dirty.remove(&v.addr).unwrap_or(false);
                    prop_assert_eq!(v.dirty, expect, "victim {:x}", v.addr);
                }
                dirty.insert(addr, w);
            }
        }
        Ok(())
    });
}

/// The MissMap is an exact set.
#[test]
fn missmap_is_a_set() {
    check(256, |src: &mut Source| {
        let ops = src.vec_with(1..300, |s| (s.u64_in(0..1024), s.bool()));
        let mut m = MissMap::new();
        let mut model: HashSet<u64> = HashSet::new();
        for &(line, insert) in &ops {
            let addr = line * 64;
            if insert {
                m.insert(addr);
                model.insert(line);
            } else {
                m.remove(addr);
                model.remove(&line);
            }
            prop_assert_eq!(m.contains(addr), model.contains(&line));
        }
        prop_assert_eq!(m.len(), model.len() as u64);
        Ok(())
    });
}

/// Geometry decompose/recompose is a bijection on line addresses.
#[test]
fn geometry_roundtrip() {
    check(256, |src: &mut Source| {
        let addr = src.u64_in(0..(1 << 40));
        let geom = CacheGeometry::new(8 << 20, 16, 64);
        let aligned = addr & !63;
        let (set, tag) = geom.decompose(aligned);
        prop_assert!(set < geom.sets());
        prop_assert_eq!(geom.recompose(set, tag), aligned);
        Ok(())
    });
}
