//! Workload suites: 16 rate-mode runs, 8 named mixes (Table 3), and 30
//! generated mixes, for the paper's 54-workload evaluation.

use crate::profile::{BenchmarkProfile, IntensityClass, TABLE2};
use bear_sim::rng::SimRng;

/// Number of cores (the paper's system; Table 1).
pub const CORES: usize = 8;

/// One multi-programmed workload: a name plus one benchmark per core.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Workload name (`rate:mcf`, `MIX3`, `GENMIX12`, ...).
    pub name: String,
    /// Benchmark running on each of the 8 cores.
    pub benchmarks: [BenchmarkProfile; CORES],
    /// Whether this is a rate-mode run (8 copies of one benchmark).
    pub is_rate: bool,
}

impl Workload {
    /// Rate-mode workload: eight copies of `profile`.
    pub fn rate(profile: BenchmarkProfile) -> Self {
        Workload {
            name: format!("rate:{}", profile.name),
            benchmarks: [profile; CORES],
            is_rate: true,
        }
    }

    /// Mixed workload from eight named benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if any name is unknown.
    pub fn mix(name: &str, benchmarks: [&str; CORES]) -> Self {
        let profiles = benchmarks.map(|n| {
            BenchmarkProfile::by_name(n)
                .unwrap_or_else(|| panic!("unknown benchmark {n} in {name}"))
        });
        Workload {
            name: name.to_string(),
            benchmarks: profiles,
            is_rate: false,
        }
    }

    /// Counts of (high, medium) intensity benchmarks, e.g. `(6, 2)` for a
    /// "6H+2M" mix.
    pub fn intensity_split(&self) -> (usize, usize) {
        let high = self
            .benchmarks
            .iter()
            .filter(|b| b.class == IntensityClass::High)
            .count();
        (high, CORES - high)
    }
}

/// The 16 rate-mode workloads (Table 2).
pub fn rate_workloads() -> Vec<Workload> {
    TABLE2.iter().copied().map(Workload::rate).collect()
}

/// The eight named mixes of Table 3.
pub fn named_mixes() -> Vec<Workload> {
    vec![
        Workload::mix(
            "MIX1",
            [
                "libq", "mcf", "soplex", "milc", "bwaves", "lbm", "omnetp", "gcc",
            ],
        ),
        Workload::mix(
            "MIX2",
            [
                "libq", "mcf", "soplex", "milc", "lbm", "omnetp", "Gems", "sphinx",
            ],
        ),
        Workload::mix(
            "MIX3",
            [
                "mcf", "soplex", "milc", "bwave", "gcc", "lbm", "leslie", "cactus",
            ],
        ),
        Workload::mix(
            "MIX4",
            [
                "libq", "mcf", "soplex", "milc", "Gems", "leslie", "wrf", "zeusmp",
            ],
        ),
        Workload::mix(
            "MIX5",
            [
                "bwave", "lbm", "omnetp", "gcc", "cactus", "xalanc", "bzip", "sphinx",
            ],
        ),
        Workload::mix(
            "MIX6",
            [
                "libq", "gcc", "Gems", "leslie", "wrf", "zeusmp", "cactus", "xalanc",
            ],
        ),
        Workload::mix(
            "MIX7",
            [
                "mcf", "omnetp", "Gems", "leslie", "wrf", "xalanc", "bzip", "sphinx",
            ],
        ),
        Workload::mix(
            "MIX8",
            [
                "Gems", "leslie", "wrf", "zeusmp", "cactus", "xalanc", "bzip", "sphinx",
            ],
        ),
    ]
}

/// Thirty additional mixes generated deterministically from the Table 2
/// pool, completing the paper's 38-mix suite.
pub fn generated_mixes() -> Vec<Workload> {
    let mut rng = SimRng::new(0x54_C0DE);
    let mut out = Vec::with_capacity(30);
    for i in 0..30 {
        let mut benchmarks = [TABLE2[0]; CORES];
        for slot in benchmarks.iter_mut() {
            *slot = TABLE2[rng.next_below(TABLE2.len() as u64) as usize];
        }
        out.push(Workload {
            name: format!("GENMIX{:02}", i + 1),
            benchmarks,
            is_rate: false,
        });
    }
    out
}

/// All 38 mixed workloads (8 named + 30 generated).
pub fn mix_workloads() -> Vec<Workload> {
    let mut v = named_mixes();
    v.extend(generated_mixes());
    v
}

/// The full 54-workload suite: 16 rate + 38 mixes.
pub fn all_workloads() -> Vec<Workload> {
    let mut v = rate_workloads();
    v.extend(mix_workloads());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_paper() {
        assert_eq!(rate_workloads().len(), 16);
        assert_eq!(named_mixes().len(), 8);
        assert_eq!(mix_workloads().len(), 38);
        assert_eq!(all_workloads().len(), 54);
    }

    #[test]
    fn rate_mode_runs_eight_copies() {
        let w = Workload::rate(BenchmarkProfile::by_name("mcf").unwrap());
        assert!(w.is_rate);
        assert!(w.benchmarks.iter().all(|b| b.name == "mcf"));
        assert_eq!(w.name, "rate:mcf");
    }

    #[test]
    fn table3_intensity_splits() {
        let mixes = named_mixes();
        let expected = [
            (8, 0),
            (6, 2),
            (6, 2),
            (4, 4),
            (4, 4),
            (2, 6),
            (2, 6),
            (0, 8),
        ];
        for (mix, want) in mixes.iter().zip(expected) {
            assert_eq!(mix.intensity_split(), want, "{}", mix.name);
        }
    }

    #[test]
    fn generated_mixes_are_deterministic() {
        let a = generated_mixes();
        let b = generated_mixes();
        assert_eq!(a, b);
        let names: std::collections::HashSet<_> = a.iter().map(|w| w.name.clone()).collect();
        assert_eq!(names.len(), 30);
    }

    #[test]
    fn all_names_unique() {
        let all = all_workloads();
        let names: std::collections::HashSet<_> = all.iter().map(|w| &w.name).collect();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_mix_member_panics() {
        Workload::mix(
            "BAD",
            ["mcf", "nope", "mcf", "mcf", "mcf", "mcf", "mcf", "mcf"],
        );
    }
}
