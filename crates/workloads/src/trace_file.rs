//! Trace recording and replay.
//!
//! Research users often want to drive the simulator with *real* traces
//! rather than the synthetic generators. This module defines a simple,
//! line-oriented text format and a reader/writer pair:
//!
//! ```text
//! # comment lines start with '#'
//! <inst_gap> <hex addr> <L|S> <hex pc>
//! ```
//!
//! # Example
//!
//! ```
//! use bear_workloads::trace_file::{parse_trace, TraceFile};
//! use bear_workloads::{TraceEvent, TraceSource};
//!
//! let text = "# demo\n5 1000 L 400000\n3 1040 S 400004\n";
//! let events = parse_trace(text).unwrap();
//! let mut replay = TraceFile::new("demo", events);
//! assert_eq!(replay.next_event().addr, 0x1000);
//! assert!(replay.next_event().is_store);
//! // Replay loops forever:
//! assert_eq!(replay.next_event().addr, 0x1000);
//! ```

use crate::generator::{TraceEvent, TraceSource};
use std::fmt;

/// Error from [`parse_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for ParseTraceError {}

/// Parses the text trace format into events.
///
/// # Errors
///
/// Returns the first malformed line (wrong field count, bad number, bad
/// access kind, or unaligned address).
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, ParseTraceError> {
    let mut events = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |reason: &str| ParseTraceError {
            line: i + 1,
            reason: reason.to_string(),
        };
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(err("expected 4 fields: <gap> <addr> <L|S> <pc>"));
        }
        let inst_gap: u32 = fields[0].parse().map_err(|_| err("bad instruction gap"))?;
        let addr = u64::from_str_radix(fields[1], 16).map_err(|_| err("bad hex address"))?;
        if addr % 64 != 0 {
            return Err(err("address must be 64-byte aligned"));
        }
        let is_store = match fields[2] {
            "L" | "l" => false,
            "S" | "s" => true,
            _ => return Err(err("access kind must be L or S")),
        };
        let pc = u64::from_str_radix(fields[3], 16).map_err(|_| err("bad hex pc"))?;
        events.push(TraceEvent {
            inst_gap: inst_gap.max(1),
            addr,
            is_store,
            pc,
        });
    }
    Ok(events)
}

/// Serializes events back to the text format (the inverse of
/// [`parse_trace`]).
pub fn format_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 24);
    for e in events {
        out.push_str(&format!(
            "{} {:x} {} {:x}\n",
            e.inst_gap,
            e.addr,
            if e.is_store { 'S' } else { 'L' },
            e.pc
        ));
    }
    out
}

/// A replayable trace: loops over a fixed event sequence forever (matching
/// the infinite-stream contract of [`TraceSource`]).
#[derive(Debug, Clone)]
pub struct TraceFile {
    name: String,
    events: Vec<TraceEvent>,
    at: usize,
    /// Number of complete passes over the trace so far.
    pub wraps: u64,
}

impl TraceFile {
    /// Creates a replay source.
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty (an empty trace cannot honor the
    /// infinite-stream contract).
    pub fn new(name: impl Into<String>, events: Vec<TraceEvent>) -> Self {
        assert!(!events.is_empty(), "trace must contain at least one event");
        TraceFile {
            name: name.into(),
            events,
            at: 0,
            wraps: 0,
        }
    }

    /// Parses `text` and builds a replay source.
    ///
    /// # Errors
    ///
    /// Propagates [`ParseTraceError`]; additionally errors on empty traces.
    pub fn from_text(name: impl Into<String>, text: &str) -> Result<Self, ParseTraceError> {
        let events = parse_trace(text)?;
        if events.is_empty() {
            return Err(ParseTraceError {
                line: 0,
                reason: "trace contains no events".into(),
            });
        }
        Ok(Self::new(name, events))
    }

    /// Number of events in one pass.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Always false (construction forbids empty traces); provided for
    /// idiomatic pairing with [`TraceFile::len`].
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSource for TraceFile {
    fn next_event(&mut self) -> TraceEvent {
        let ev = self.events[self.at];
        self.at += 1;
        if self.at == self.events.len() {
            self.at = 0;
            self.wraps += 1;
        }
        ev
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Records the first `n` events of any source into a replayable trace —
/// useful for capturing a synthetic generator's stream into a file.
pub fn record(source: &mut dyn TraceSource, n: usize) -> Vec<TraceEvent> {
    (0..n).map(|_| source.next_event()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BenchmarkProfile;
    use crate::TraceGenerator;

    #[test]
    fn parse_roundtrip() {
        let text = "5 1000 L 400000\n3 1040 S 400004\n";
        let events = parse_trace(text).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(format_trace(&events), text);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let events = parse_trace("# header\n\n  \n1 0 L 0\n").unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_trace("1 0 L 0\nbogus\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(format!("{err}").contains("line 2"));
        assert!(parse_trace("1 0 X 0").is_err());
        assert!(parse_trace("1 zz L 0").is_err());
        assert!(parse_trace("1 0 L").is_err());
        let unaligned = parse_trace("1 7 L 0").unwrap_err();
        assert!(unaligned.reason.contains("aligned"));
    }

    #[test]
    fn empty_and_whitespace_files_parse_to_no_events() {
        assert_eq!(parse_trace("").unwrap(), vec![]);
        assert_eq!(parse_trace("\n\n   \n").unwrap(), vec![]);
        assert_eq!(parse_trace("# only comments\n# here\n").unwrap(), vec![]);
    }

    #[test]
    fn truncated_lines_are_rejected_with_their_line_number() {
        let err = parse_trace("# hdr\n1 40 L 0\n2 80\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.reason.contains("4 fields"), "reason: {}", err.reason);
        // A single dangling field behaves the same.
        assert_eq!(parse_trace("7\n").unwrap_err().line, 1);
    }

    #[test]
    fn overflowing_numbers_are_rejected_not_wrapped() {
        // 20 hex digits exceed u64: must be a parse error, never a
        // silent truncation.
        let err = parse_trace("1 fffffffffffffffff40 L 0\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("bad hex address"));
        // Same for the pc field...
        let err = parse_trace("1 40 L 10000000000000000ff\n").unwrap_err();
        assert!(err.reason.contains("bad hex pc"));
        // ...and a gap beyond u32.
        let err = parse_trace("99999999999 40 L 0\n").unwrap_err();
        assert!(err.reason.contains("instruction gap"));
        // Negative gaps are malformed, not wrap-arounds.
        assert!(parse_trace("-1 40 L 0").is_err());
    }

    #[test]
    fn crlf_line_endings_parse_like_lf() {
        let events = parse_trace("# hdr\r\n1 40 L 0\r\n2 80 S 4\r\n").unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].addr, 0x80);
        assert!(events[1].is_store);
    }

    #[test]
    fn error_line_numbers_count_comments_and_blanks() {
        // The reported number must match what an editor shows, so skipped
        // lines still advance the count.
        let err = parse_trace("# one\n\n# three\n1 41 L 0\n").unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.reason.contains("aligned"));
    }

    #[test]
    fn zero_gap_clamped_to_one() {
        let events = parse_trace("0 0 L 0").unwrap();
        assert_eq!(events[0].inst_gap, 1);
    }

    #[test]
    fn replay_loops_and_counts_wraps() {
        let mut t = TraceFile::from_text("t", "1 0 L 0\n2 40 S 4\n").unwrap();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        for _ in 0..5 {
            t.next_event();
        }
        assert_eq!(t.wraps, 2);
        assert_eq!(t.name(), "t");
    }

    #[test]
    fn empty_trace_rejected() {
        assert!(TraceFile::from_text("e", "# nothing\n").is_err());
    }

    #[test]
    fn record_captures_generator_stream() {
        let profile = BenchmarkProfile::by_name("gcc").unwrap();
        let mut gen = TraceGenerator::new(profile, 0, 9, 7);
        let events = record(&mut gen, 100);
        assert_eq!(events.len(), 100);
        // Round-trip through the text format.
        let text = format_trace(&events);
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(parsed, events);
        // Replay equals the recording.
        let mut replay = TraceFile::new("gcc-replay", events.clone());
        for e in &events {
            assert_eq!(replay.next_event(), *e);
        }
    }
}
