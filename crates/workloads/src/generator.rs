//! Synthetic trace generation.
//!
//! [`TraceGenerator`] turns a [`BenchmarkProfile`] into an infinite,
//! deterministic stream of [`TraceEvent`]s. The model is a two-region
//! mixture with sequential runs:
//!
//! - each *run* targets the hot region (probability `hot_prob`) or the cold
//!   region, starting at a random line within the region;
//! - the run covers a geometric number of consecutive lines (mean
//!   `seq_mean`), capturing spatial locality (row-buffer hits, NTC wins);
//! - accesses are stores with probability `write_frac`;
//! - `inst_gap` spaces accesses so that L3 accesses arrive at the profile's
//!   APKI.
//!
//! The hot/cold split produces temporal reuse skew: the hot region is small
//! enough to be retained by the DRAM cache (and partially by the L3), so
//! hit-rate-sensitive behaviour (GemsFDTD, zeusmp in Figure 5) emerges from
//! the profile knobs rather than being hard-coded.
//!
//! A third ingredient models *short-term* recency: with probability
//! `1 - mpki/apki` an access revisits one of the last few hundred lines
//! touched. Those accesses hit the on-chip L3, which is how the generator
//! realizes the profile's L3 MPKI from its APKI.

use crate::profile::BenchmarkProfile;
use bear_sim::rng::SimRng;

/// Lines remembered for short-term reuse. Small enough that revisits land
/// within an L3-sized reuse distance even at the smallest scaled L3.
const RECENT_RING: usize = 96;

/// One synthetic reference reaching the L3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Instructions retired since the previous event (≥ 1).
    pub inst_gap: u32,
    /// Byte address (64 B aligned).
    pub addr: u64,
    /// Store (may dirty the L3 line) vs. load.
    pub is_store: bool,
    /// Synthetic program counter of the instruction (for MAP-I).
    pub pc: u64,
}

/// An infinite source of trace events.
///
/// Implemented by [`TraceGenerator`]; kept as a trait so tests and examples
/// can inject scripted traces.
pub trait TraceSource {
    /// Produces the next event. Never exhausts.
    fn next_event(&mut self) -> TraceEvent;

    /// Name for reporting.
    fn name(&self) -> &str;
}

/// Deterministic synthetic trace generator for one benchmark instance.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: BenchmarkProfile,
    base_addr: u64,
    footprint_lines: u64,
    hot_lines: u64,
    rng: SimRng,
    /// Current position (line index within footprint).
    pos: u64,
    /// Remaining lines in the current sequential run.
    run_left: u64,
    /// Whether the current run is in the hot region.
    in_hot: bool,
    /// Current run's synthetic PC.
    pc: u64,
    /// Carry for fractional instruction gaps.
    gap_carry: f64,
    /// Recently touched lines (short-term reuse pool).
    recent: Vec<u64>,
    /// Next slot to overwrite in `recent`.
    recent_at: usize,
    /// Probability an access revisits a recent line (≈ 1 − MPKI/APKI).
    reuse_prob: f64,
}

impl TraceGenerator {
    /// Creates a generator for `profile`.
    ///
    /// `base_addr` offsets the whole footprint (distinct per core so mixes
    /// never collide, mirroring the paper's virtual-memory setup);
    /// `scale_shift` jointly scales the footprint with the rest of the
    /// system; `seed` selects the deterministic stream.
    pub fn new(profile: BenchmarkProfile, base_addr: u64, scale_shift: u32, seed: u64) -> Self {
        let footprint_lines = profile.scaled_footprint_lines(scale_shift);
        let hot_lines = ((footprint_lines as f64 * profile.hot_frac) as u64).max(64);
        let reuse_prob = (1.0 - profile.mpki / profile.apki).clamp(0.0, 0.9);
        TraceGenerator {
            profile,
            base_addr,
            footprint_lines,
            hot_lines: hot_lines.min(footprint_lines),
            rng: SimRng::new(seed ^ 0xBEA2_2015),
            pos: 0,
            run_left: 0,
            in_hot: false,
            pc: 0,
            gap_carry: 0.0,
            recent: Vec::with_capacity(RECENT_RING),
            recent_at: 0,
            reuse_prob,
        }
    }

    /// The short-term reuse probability this generator targets.
    pub fn reuse_prob(&self) -> f64 {
        self.reuse_prob
    }

    fn remember(&mut self, line: u64) {
        if self.recent.len() < RECENT_RING {
            self.recent.push(line);
        } else {
            self.recent[self.recent_at] = line;
            self.recent_at = (self.recent_at + 1) % RECENT_RING;
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Scaled footprint in lines.
    pub fn footprint_lines(&self) -> u64 {
        self.footprint_lines
    }

    /// Hot-region size in lines.
    pub fn hot_lines(&self) -> u64 {
        self.hot_lines
    }

    fn start_run(&mut self) {
        self.in_hot = self.rng.chance(self.profile.hot_prob);
        let (lo, len) = if self.in_hot {
            (0, self.hot_lines)
        } else {
            (
                self.hot_lines,
                (self.footprint_lines - self.hot_lines).max(1),
            )
        };
        self.pos = lo + self.rng.next_below(len);
        self.run_left = self.rng.geometric(self.profile.seq_mean);
        // PC correlates with the region and a coarse position bucket so that
        // MAP-I sees stable per-PC behaviour.
        let bucket = self.pos >> 6;
        let h = bucket
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17)
            .wrapping_add(self.in_hot as u64);
        self.pc = 0x40_0000 + (h % self.profile.pc_count as u64) * 4;
    }
}

impl TraceSource for TraceGenerator {
    fn next_event(&mut self) -> TraceEvent {
        // Short-term reuse: revisit a recent line (lands in the L3).
        let reuse = !self.recent.is_empty() && self.rng.chance(self.reuse_prob);
        let line = if reuse {
            self.recent[self.rng.next_below(self.recent.len() as u64) as usize]
        } else {
            if self.run_left == 0 {
                self.start_run();
            }
            let line = self.pos % self.footprint_lines;
            self.pos = (self.pos + 1) % self.footprint_lines;
            self.run_left -= 1;
            self.remember(line);
            line
        };

        // Instruction gap with deterministic fractional carry.
        let mean_gap = self.profile.inst_per_access();
        let jitter = 0.5 + self.rng.next_f64(); // uniform in [0.5, 1.5)
        let gap_f = mean_gap * jitter + self.gap_carry;
        let gap = gap_f.floor().max(1.0);
        self.gap_carry = gap_f - gap;

        TraceEvent {
            inst_gap: gap as u32,
            addr: self.base_addr + line * 64,
            is_store: self.rng.chance(self.profile.write_frac),
            pc: self.pc,
        }
    }

    fn name(&self) -> &str {
        self.profile.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BenchmarkProfile;

    fn generator(name: &str, seed: u64) -> TraceGenerator {
        TraceGenerator::new(BenchmarkProfile::by_name(name).unwrap(), 0, 3, seed)
    }

    #[test]
    fn determinism() {
        let mut a = generator("mcf", 1);
        let mut b = generator("mcf", 1);
        for _ in 0..1000 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = generator("mcf", 1);
        let mut b = generator("mcf", 2);
        let same = (0..100)
            .filter(|_| a.next_event().addr == b.next_event().addr)
            .count();
        assert!(same < 10);
    }

    #[test]
    fn addresses_stay_in_scaled_footprint() {
        let mut g = generator("sphinx3", 3);
        let bound = g.footprint_lines() * 64;
        for _ in 0..10_000 {
            let e = g.next_event();
            assert!(e.addr < bound);
            assert_eq!(e.addr % 64, 0);
        }
    }

    #[test]
    fn base_address_offsets_everything() {
        let p = BenchmarkProfile::by_name("gcc").unwrap();
        let mut g = TraceGenerator::new(p, 1 << 40, 3, 5);
        for _ in 0..1000 {
            assert!(g.next_event().addr >= 1 << 40);
        }
    }

    #[test]
    fn store_fraction_tracks_profile() {
        let mut g = generator("lbm", 9);
        let expect = g.profile().write_frac;
        let n = 50_000;
        let stores = (0..n).filter(|_| g.next_event().is_store).count();
        let frac = stores as f64 / n as f64;
        assert!(
            (frac - expect).abs() < 0.02,
            "store frac {frac} vs {expect}"
        );
    }

    #[test]
    fn mean_gap_tracks_apki() {
        let mut g = generator("mcf", 11); // apki 110 → mean gap ≈ 9.09
        let n = 50_000;
        let total: u64 = (0..n).map(|_| g.next_event().inst_gap as u64).sum();
        let mean = total as f64 / n as f64;
        let expect = 1000.0 / 110.0;
        assert!((mean - expect).abs() < 0.8, "mean gap {mean} vs {expect}");
    }

    #[test]
    fn streaming_profiles_have_long_runs() {
        let mut g = generator("libquantum", 13); // seq_mean = 24
        let mut seq = 0usize;
        let mut prev = None;
        let n = 20_000;
        for _ in 0..n {
            let a = g.next_event().addr;
            if let Some(p) = prev {
                if a == p + 64 {
                    seq += 1;
                }
            }
            prev = Some(a);
        }
        let frac = seq as f64 / n as f64;
        // Short-term reuse revisits interleave with the streams, so the
        // observed fraction is the run fraction times (1 - reuse)^2-ish.
        assert!(frac > 0.45, "sequential fraction {frac}");
    }

    #[test]
    fn pointer_chasing_profiles_have_short_runs() {
        let mut g = generator("mcf", 13); // seq_mean = 1.2
        let mut seq = 0usize;
        let mut prev = None;
        let n = 20_000;
        for _ in 0..n {
            let a = g.next_event().addr;
            if let Some(p) = prev {
                if a == p + 64 {
                    seq += 1;
                }
            }
            prev = Some(a);
        }
        let frac = seq as f64 / n as f64;
        assert!(frac < 0.4, "sequential fraction {frac}");
    }

    #[test]
    fn hot_region_receives_its_share() {
        let mut g = generator("GemsFDTD", 21);
        let hot_prob = g.profile().hot_prob;
        let hot_bound = g.hot_lines() * 64;
        let n = 50_000;
        let hot = (0..n).filter(|_| g.next_event().addr < hot_bound).count();
        let frac = hot as f64 / n as f64;
        // Reuse revisits sample past accesses, which preserves the hot/cold
        // mixture in expectation.
        assert!(
            (frac - hot_prob).abs() < 0.05,
            "hot frac {frac} vs {hot_prob}"
        );
    }

    #[test]
    fn pcs_are_bounded_and_aligned() {
        let mut g = generator("gcc", 3);
        let pcs: std::collections::HashSet<u64> = (0..10_000).map(|_| g.next_event().pc).collect();
        assert!(pcs.len() <= 96);
        assert!(pcs.iter().all(|pc| pc % 4 == 0 && *pc >= 0x40_0000));
    }

    #[test]
    fn name_reports_profile() {
        assert_eq!(generator("wrf", 0).name(), "wrf");
    }
}
