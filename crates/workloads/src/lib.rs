#![warn(missing_docs)]

//! Synthetic SPEC-like workloads for the BEAR experiments.
//!
//! The paper evaluates 16 SPEC CPU2006 benchmarks (Table 2) in 8-core rate
//! mode plus 38 mixed workloads (Table 3 names eight of them). SimPoint
//! traces are not redistributable, so this crate generates *synthetic*
//! reference streams whose statistical shape is calibrated to the published
//! characteristics: L3 miss intensity (MPKI), memory footprint, write
//! fraction, temporal reuse skew, and spatial run length. DESIGN.md §2
//! documents the substitution argument.
//!
//! # Example
//!
//! ```
//! use bear_workloads::{BenchmarkProfile, TraceGenerator, TraceSource};
//!
//! let profile = BenchmarkProfile::by_name("mcf").unwrap();
//! let mut gen = TraceGenerator::new(profile, /*base_addr=*/0, /*scale_shift=*/3, /*seed=*/7);
//! let ev = gen.next_event();
//! assert!(ev.inst_gap >= 1);
//! ```

pub mod adversarial;
pub mod generator;
pub mod profile;
pub mod suites;
pub mod trace_file;

pub use adversarial::{AdversarialPattern, ScriptedTrace};
pub use generator::{TraceEvent, TraceGenerator, TraceSource};
pub use profile::{BenchmarkProfile, IntensityClass};
pub use suites::{
    all_workloads, generated_mixes, mix_workloads, named_mixes, rate_workloads, Workload,
};
pub use trace_file::{parse_trace, TraceFile};
