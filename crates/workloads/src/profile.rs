//! Per-benchmark workload profiles.
//!
//! Each profile encodes the published characteristics of one SPEC CPU2006
//! benchmark from Table 2 of the paper (L3 MPKI, footprint) together with
//! locality knobs chosen to reproduce the behaviours the paper's figures
//! depend on: which workloads are hurt by naive bypass (hit-rate-sensitive
//! GemsFDTD/zeusmp), which have writeback-heavy streams that reward DCP
//! (omnetpp/gcc), and which stream sequentially (libquantum/lbm/bwaves).

/// Memory-intensity class used for grouping (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntensityClass {
    /// L3 MPKI > 12.
    High,
    /// L3 MPKI between 2 and 12.
    Medium,
}

/// Statistical description of one benchmark's post-L2 reference stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name (SPEC CPU2006 short name).
    pub name: &'static str,
    /// Target L3 misses per kilo-instruction (Table 2).
    pub mpki: f64,
    /// Memory footprint in bytes at full scale (Table 2).
    pub footprint_bytes: u64,
    /// Intensity class (Table 2 grouping).
    pub class: IntensityClass,
    /// L3 accesses per kilo-instruction; MPKI emerges after L3 filtering.
    pub apki: f64,
    /// Fraction of accesses that are stores.
    pub write_frac: f64,
    /// Fraction of the footprint forming the hot region.
    pub hot_frac: f64,
    /// Probability an access run targets the hot region.
    pub hot_prob: f64,
    /// Mean sequential run length in 64 B lines.
    pub seq_mean: f64,
    /// Number of distinct miss-PCs (for the MAP-I predictor).
    pub pc_count: u32,
}

const GB: u64 = 1 << 30;
const MB: u64 = 1 << 20;

/// The sixteen benchmarks of Table 2.
///
/// `apki` is set above `mpki` so that the modeled L3 filters a realistic
/// share; locality knobs are calibrated against the paper's aggregate
/// DRAM-cache hit rate (~63 % for the 1 GB Alloy baseline) and the
/// per-benchmark behaviours called out in the text.
pub const TABLE2: [BenchmarkProfile; 16] = [
    BenchmarkProfile {
        name: "mcf",
        mpki: 74.6,
        footprint_bytes: 10 * GB + 200 * MB,
        class: IntensityClass::High,
        apki: 110.0,
        write_frac: 0.132,
        hot_frac: 0.00313,
        hot_prob: 0.53,
        seq_mean: 1.2,
        pc_count: 48,
    },
    BenchmarkProfile {
        name: "lbm",
        mpki: 32.7,
        footprint_bytes: 3 * GB + 100 * MB,
        class: IntensityClass::High,
        apki: 46.0,
        write_frac: 0.288,
        hot_frac: 0.0129,
        hot_prob: 0.68,
        seq_mean: 12.0,
        pc_count: 12,
    },
    BenchmarkProfile {
        name: "soplex",
        mpki: 27.1,
        footprint_bytes: GB + 900 * MB,
        class: IntensityClass::High,
        apki: 40.0,
        write_frac: 0.15,
        hot_frac: 0.021,
        hot_prob: 0.68,
        seq_mean: 3.0,
        pc_count: 32,
    },
    BenchmarkProfile {
        name: "milc",
        mpki: 26.1,
        footprint_bytes: 4 * GB + 500 * MB,
        class: IntensityClass::High,
        apki: 38.0,
        write_frac: 0.18,
        hot_frac: 0.0089,
        hot_prob: 0.63,
        seq_mean: 6.0,
        pc_count: 24,
    },
    BenchmarkProfile {
        name: "libquantum",
        mpki: 25.5,
        footprint_bytes: 256 * MB,
        class: IntensityClass::High,
        apki: 33.0,
        write_frac: 0.18,
        hot_frac: 0.1875,
        hot_prob: 0.83,
        seq_mean: 24.0,
        pc_count: 6,
    },
    BenchmarkProfile {
        name: "omnetpp",
        mpki: 21.1,
        footprint_bytes: GB + 100 * MB,
        class: IntensityClass::High,
        apki: 34.0,
        write_frac: 0.252,
        hot_frac: 0.0364,
        hot_prob: 0.73,
        seq_mean: 1.3,
        pc_count: 64,
    },
    BenchmarkProfile {
        name: "bwaves",
        mpki: 18.7,
        footprint_bytes: GB + 500 * MB,
        class: IntensityClass::High,
        apki: 26.0,
        write_frac: 0.168,
        hot_frac: 0.0267,
        hot_prob: 0.73,
        seq_mean: 16.0,
        pc_count: 10,
    },
    BenchmarkProfile {
        name: "gcc",
        mpki: 18.6,
        footprint_bytes: 680 * MB,
        class: IntensityClass::High,
        apki: 30.0,
        write_frac: 0.27,
        hot_frac: 0.0706,
        hot_prob: 0.81,
        seq_mean: 2.5,
        pc_count: 96,
    },
    BenchmarkProfile {
        // 12.4 MPKI sits on the High/Medium boundary; Table 3's mix labels
        // (e.g. MIX8 = "8M" includes sphinx) treat sphinx3 as Medium.
        name: "sphinx3",
        mpki: 12.4,
        footprint_bytes: 136 * MB,
        class: IntensityClass::Medium,
        apki: 19.0,
        write_frac: 0.108,
        hot_frac: 0.353,
        hot_prob: 0.93,
        seq_mean: 4.0,
        pc_count: 28,
    },
    BenchmarkProfile {
        name: "GemsFDTD",
        mpki: 9.9,
        footprint_bytes: 5 * GB + 300 * MB,
        class: IntensityClass::Medium,
        apki: 14.0,
        write_frac: 0.21,
        hot_frac: 0.0236,
        hot_prob: 0.93,
        seq_mean: 8.0,
        pc_count: 20,
    },
    BenchmarkProfile {
        name: "leslie3d",
        mpki: 7.6,
        footprint_bytes: 616 * MB,
        class: IntensityClass::Medium,
        apki: 11.5,
        write_frac: 0.192,
        hot_frac: 0.0779,
        hot_prob: 0.85,
        seq_mean: 7.0,
        pc_count: 22,
    },
    BenchmarkProfile {
        name: "wrf",
        mpki: 6.8,
        footprint_bytes: 488 * MB,
        class: IntensityClass::Medium,
        apki: 10.5,
        write_frac: 0.18,
        hot_frac: 0.0984,
        hot_prob: 0.85,
        seq_mean: 5.0,
        pc_count: 30,
    },
    BenchmarkProfile {
        name: "cactusADM",
        mpki: 5.5,
        footprint_bytes: GB + 200 * MB,
        class: IntensityClass::Medium,
        apki: 8.5,
        write_frac: 0.228,
        hot_frac: 0.0333,
        hot_prob: 0.78,
        seq_mean: 4.0,
        pc_count: 18,
    },
    BenchmarkProfile {
        name: "zeusmp",
        mpki: 4.8,
        footprint_bytes: GB + 500 * MB,
        class: IntensityClass::Medium,
        apki: 7.5,
        write_frac: 0.204,
        hot_frac: 0.064,
        hot_prob: 0.93,
        seq_mean: 5.0,
        pc_count: 16,
    },
    BenchmarkProfile {
        name: "bzip2",
        mpki: 3.7,
        footprint_bytes: 2 * GB + 400 * MB,
        class: IntensityClass::Medium,
        apki: 6.0,
        write_frac: 0.18,
        hot_frac: 0.01,
        hot_prob: 0.58,
        seq_mean: 3.0,
        pc_count: 40,
    },
    BenchmarkProfile {
        name: "xalancbmk",
        mpki: 2.3,
        footprint_bytes: GB + 300 * MB,
        class: IntensityClass::Medium,
        apki: 4.0,
        write_frac: 0.15,
        hot_frac: 0.0308,
        hot_prob: 0.83,
        seq_mean: 1.5,
        pc_count: 80,
    },
];

impl BenchmarkProfile {
    /// Looks a profile up by its SPEC short name (also accepts the
    /// abbreviations the paper uses in mix tables, e.g. `libq`, `Gems`).
    pub fn by_name(name: &str) -> Option<BenchmarkProfile> {
        let canonical = match name {
            "libq" => "libquantum",
            "Gems" => "GemsFDTD",
            "leslie" => "leslie3d",
            "cactus" => "cactusADM",
            "xalanc" => "xalancbmk",
            "bzip" => "bzip2",
            "sphinx" => "sphinx3",
            "omnetp" | "omnet" => "omnetpp",
            "bwave" => "bwaves",
            other => other,
        };
        TABLE2.iter().find(|p| p.name == canonical).copied()
    }

    /// Footprint in 64 B lines after scaling down by `scale_shift` powers of
    /// two (the whole system — cache capacity included — is scaled jointly;
    /// see DESIGN.md §2). Always at least 1024 lines.
    pub fn scaled_footprint_lines(&self, scale_shift: u32) -> u64 {
        ((self.footprint_bytes >> scale_shift) / 64).max(1024)
    }

    /// Mean instructions between successive L3 accesses.
    pub fn inst_per_access(&self) -> f64 {
        1000.0 / self.apki
    }

    /// All High-intensity profiles.
    pub fn high_intensity() -> impl Iterator<Item = BenchmarkProfile> {
        TABLE2
            .iter()
            .filter(|p| p.class == IntensityClass::High)
            .copied()
    }

    /// All Medium-intensity profiles.
    pub fn medium_intensity() -> impl Iterator<Item = BenchmarkProfile> {
        TABLE2
            .iter()
            .filter(|p| p.class == IntensityClass::Medium)
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_profiles_with_table2_grouping() {
        assert_eq!(TABLE2.len(), 16);
        assert_eq!(BenchmarkProfile::high_intensity().count(), 8);
        assert_eq!(BenchmarkProfile::medium_intensity().count(), 8);
    }

    #[test]
    fn class_thresholds_match_mpki() {
        for p in TABLE2 {
            match p.class {
                IntensityClass::High => assert!(p.mpki > 12.0, "{} misclassified", p.name),
                IntensityClass::Medium => {
                    // sphinx3 (12.4) is grouped Medium per Table 3's labels.
                    assert!((2.0..=12.4).contains(&p.mpki), "{} misclassified", p.name)
                }
            }
        }
    }

    #[test]
    fn lookup_by_name_and_aliases() {
        assert_eq!(BenchmarkProfile::by_name("mcf").unwrap().name, "mcf");
        assert_eq!(
            BenchmarkProfile::by_name("libq").unwrap().name,
            "libquantum"
        );
        assert_eq!(BenchmarkProfile::by_name("Gems").unwrap().name, "GemsFDTD");
        assert_eq!(
            BenchmarkProfile::by_name("xalanc").unwrap().name,
            "xalancbmk"
        );
        assert!(BenchmarkProfile::by_name("nonexistent").is_none());
    }

    #[test]
    fn mpki_values_match_table2() {
        let m = |n: &str| BenchmarkProfile::by_name(n).unwrap().mpki;
        assert_eq!(m("mcf"), 74.6);
        assert_eq!(m("lbm"), 32.7);
        assert_eq!(m("xalancbmk"), 2.3);
    }

    #[test]
    fn apki_exceeds_mpki_everywhere() {
        for p in TABLE2 {
            assert!(
                p.apki > p.mpki,
                "{}: L3 accesses must exceed misses",
                p.name
            );
        }
    }

    #[test]
    fn probability_knobs_are_probabilities() {
        for p in TABLE2 {
            for v in [p.write_frac, p.hot_frac, p.hot_prob] {
                assert!((0.0..=1.0).contains(&v), "{} has knob {v}", p.name);
            }
            assert!(p.seq_mean >= 1.0);
            assert!(p.pc_count > 0);
        }
    }

    #[test]
    fn scaled_footprint_has_floor() {
        let p = BenchmarkProfile::by_name("sphinx3").unwrap();
        assert!(p.scaled_footprint_lines(0) > 1024);
        assert_eq!(p.scaled_footprint_lines(40), 1024);
        // Scaling by 3 divides by 8.
        assert_eq!(p.scaled_footprint_lines(3), (p.footprint_bytes >> 3) / 64);
    }

    #[test]
    fn inst_per_access_inverse_of_apki() {
        let p = BenchmarkProfile::by_name("mcf").unwrap();
        assert!((p.inst_per_access() - 1000.0 / 110.0).abs() < 1e-9);
    }
}
