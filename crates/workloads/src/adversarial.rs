//! Adversarial workload generation for the differential oracle.
//!
//! Randomized benchmark-shaped traffic ([`crate::TraceGenerator`]) explores
//! the common paths; the fuzzer's job is the *uncommon* ones. Each
//! [`AdversarialPattern`] concentrates accesses on a structural weak point
//! of the BEAR hierarchy — direct-mapped set conflicts, dirty-eviction
//! writeback storms, BAB duel-set mode thrashing, NTC neighbor-entry
//! aliasing — so that a handful of thousand accesses exercises state
//! transitions that organic traffic reaches only after millions.
//!
//! The generators are pure functions of `(pattern, pool, len, seed)`:
//! identical inputs produce identical traces (seeded from
//! [`bear_sim::rng::SimRng`]), which is what makes divergence shrinking and
//! repro files possible. The *pool* is the set of byte addresses the
//! pattern plays with; callers that know the physical translation craft
//! pools whose lines collide in DRAM-cache sets or alias as NTC
//! neighbors — this crate stays address-agnostic.

use crate::generator::{TraceEvent, TraceSource};
use bear_sim::rng::SimRng;

/// Families of adversarial access patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversarialPattern {
    /// Rapid cycling over set-colliding lines: every access conflict-misses
    /// a direct-mapped set, stressing fill/evict/bypass decisions and the
    /// NTC's view of constantly-changing occupants.
    SetConflictStorm,
    /// Store-heavy sweeps wider than the L3: a continuous stream of dirty
    /// L3 evictions stresses the writeback path (probes, DCP hints,
    /// write-allocate victims).
    DirtyEvictionFlood,
    /// Alternating reuse-friendly and scan phases on the same lines: the
    /// BAB duel flips its mode bit repeatedly, exercising fills and
    /// bypasses in close succession on the same sets.
    DuelSetThrash,
    /// Ping-pong between neighboring sets with rotating tags: NTC entries
    /// are recorded, aliased, and invalidated in tight succession.
    NtcNeighborAlias,
}

impl AdversarialPattern {
    /// All patterns, in campaign order.
    pub const ALL: [AdversarialPattern; 4] = [
        AdversarialPattern::SetConflictStorm,
        AdversarialPattern::DirtyEvictionFlood,
        AdversarialPattern::DuelSetThrash,
        AdversarialPattern::NtcNeighborAlias,
    ];

    /// Stable label used in repro files and reports.
    pub fn label(self) -> &'static str {
        match self {
            AdversarialPattern::SetConflictStorm => "set-conflict-storm",
            AdversarialPattern::DirtyEvictionFlood => "dirty-eviction-flood",
            AdversarialPattern::DuelSetThrash => "duel-set-thrash",
            AdversarialPattern::NtcNeighborAlias => "ntc-neighbor-alias",
        }
    }

    /// Recovers a pattern from its [`AdversarialPattern::label`].
    pub fn from_label(label: &str) -> Option<AdversarialPattern> {
        Self::ALL.into_iter().find(|p| p.label() == label)
    }

    /// Generates `len` events over `pool` (64 B-aligned byte addresses),
    /// deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty.
    pub fn generate(self, pool: &[u64], len: usize, seed: u64) -> Vec<TraceEvent> {
        assert!(!pool.is_empty(), "adversarial pool must not be empty");
        // Salt the stream per pattern so campaigns sharing one seed do not
        // replay correlated random choices across patterns.
        let mut rng = SimRng::new(seed ^ (self.label().len() as u64) << 56 ^ 0xAD5E_7215);
        let mut out = Vec::with_capacity(len);
        match self {
            AdversarialPattern::SetConflictStorm => {
                // Tight rotation with occasional random jumps: the same few
                // sets see a new tag almost every access.
                let mut at = 0usize;
                for _ in 0..len {
                    at = if rng.chance(0.85) {
                        (at + 1) % pool.len()
                    } else {
                        rng.next_below(pool.len() as u64) as usize
                    };
                    out.push(TraceEvent {
                        inst_gap: 1 + rng.next_below(3) as u32,
                        addr: pool[at],
                        is_store: rng.chance(0.2),
                        pc: 0x4000 + (at as u64 % 8) * 64,
                    });
                }
            }
            AdversarialPattern::DirtyEvictionFlood => {
                // Two passes over each address: a store dirties the L3
                // line, a later conflict pushes it out dirty. High store
                // fraction keeps the writeback queue saturated.
                for i in 0..len {
                    let at = if rng.chance(0.7) {
                        i % pool.len()
                    } else {
                        rng.next_below(pool.len() as u64) as usize
                    };
                    out.push(TraceEvent {
                        inst_gap: 1,
                        addr: pool[at],
                        is_store: rng.chance(0.9),
                        pc: 0x8000 + (at as u64 % 4) * 64,
                    });
                }
            }
            AdversarialPattern::DuelSetThrash => {
                // Alternate phases: a reuse loop over a tiny prefix of the
                // pool (hit-friendly), then a scan across the whole pool
                // (miss-heavy). Each boundary pushes the duel toward the
                // opposite verdict.
                let phase = 48usize;
                let hot = pool.len().div_ceil(8).max(1);
                for i in 0..len {
                    let scanning = (i / phase) % 2 == 1;
                    let at = if scanning {
                        rng.next_below(pool.len() as u64) as usize
                    } else {
                        i % hot
                    };
                    out.push(TraceEvent {
                        inst_gap: 1 + rng.next_below(2) as u32,
                        addr: pool[at],
                        is_store: rng.chance(0.1),
                        pc: 0xC000 + if scanning { 64 } else { 0 },
                    });
                }
            }
            AdversarialPattern::NtcNeighborAlias => {
                // Visit pool entries in adjacent pairs (even/odd), flipping
                // between them so each probe streams the other's tag into
                // the NTC right before that tag changes. Stores mix dirty
                // occupants into the recorded entries.
                let pairs = (pool.len() / 2).max(1);
                for _ in 0..len {
                    let pair = rng.next_below(pairs as u64) as usize;
                    let side = rng.next_below(2) as usize;
                    let at = (2 * pair + side).min(pool.len() - 1);
                    out.push(TraceEvent {
                        inst_gap: 1 + rng.next_below(2) as u32,
                        addr: pool[at],
                        is_store: rng.chance(0.3),
                        pc: 0x1_0000 + (pair as u64 % 8) * 64,
                    });
                }
            }
        }
        out
    }
}

/// A finite scripted trace replayed as an endless loop.
///
/// [`TraceSource`] contractually never exhausts, so the script wraps
/// around; fuzz campaigns and shrunk repros bound their runs by cycles, not
/// by trace length.
#[derive(Debug, Clone)]
pub struct ScriptedTrace {
    name: String,
    events: Vec<TraceEvent>,
    at: usize,
}

impl ScriptedTrace {
    /// Wraps `events` (non-empty) as a looping trace source.
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty.
    pub fn new(name: impl Into<String>, events: Vec<TraceEvent>) -> Self {
        assert!(!events.is_empty(), "scripted trace must not be empty");
        ScriptedTrace {
            name: name.into(),
            events,
            at: 0,
        }
    }

    /// The underlying script.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }
}

impl TraceSource for ScriptedTrace {
    fn next_event(&mut self) -> TraceEvent {
        let ev = self.events[self.at];
        self.at = (self.at + 1) % self.events.len();
        ev
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Vec<u64> {
        (0..32u64).map(|i| i * 4096).collect()
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for p in AdversarialPattern::ALL {
            let a = p.generate(&pool(), 500, 42);
            let b = p.generate(&pool(), 500, 42);
            let c = p.generate(&pool(), 500, 43);
            assert_eq!(a, b, "{p:?} not deterministic");
            assert_ne!(a, c, "{p:?} ignores its seed");
            assert_eq!(a.len(), 500);
        }
    }

    #[test]
    fn events_stay_within_pool_and_are_aligned() {
        let pool = pool();
        for p in AdversarialPattern::ALL {
            for ev in p.generate(&pool, 300, 7) {
                assert!(pool.contains(&ev.addr), "{p:?} left the pool");
                assert_eq!(ev.addr % 64, 0);
                assert!(ev.inst_gap >= 1);
            }
        }
    }

    #[test]
    fn patterns_differ_in_store_intensity() {
        let pool = pool();
        let stores = |p: AdversarialPattern| {
            p.generate(&pool, 2000, 9)
                .iter()
                .filter(|e| e.is_store)
                .count()
        };
        let flood = stores(AdversarialPattern::DirtyEvictionFlood);
        let thrash = stores(AdversarialPattern::DuelSetThrash);
        assert!(
            flood > 4 * thrash,
            "flood {flood} must be store-heavy vs thrash {thrash}"
        );
    }

    #[test]
    fn labels_round_trip() {
        for p in AdversarialPattern::ALL {
            assert_eq!(AdversarialPattern::from_label(p.label()), Some(p));
        }
        assert_eq!(AdversarialPattern::from_label("nope"), None);
    }

    #[test]
    fn scripted_trace_loops() {
        let evs = AdversarialPattern::SetConflictStorm.generate(&pool(), 3, 1);
        let mut t = ScriptedTrace::new("loop", evs.clone());
        assert_eq!(t.name(), "loop");
        for i in 0..9 {
            assert_eq!(t.next_event(), evs[i % 3]);
        }
        assert_eq!(t.events().len(), 3);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_script_rejected() {
        ScriptedTrace::new("x", Vec::new());
    }
}
