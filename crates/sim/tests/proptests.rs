//! Property tests for the simulation substrate, driven by the in-tree
//! [`bear_sim::check`] engine (no external frameworks).

use bear_sim::check::{check, Source};
use bear_sim::queue::BoundedQueue;
use bear_sim::rng::SimRng;
use bear_sim::stats::{geometric_mean, Histogram};
use bear_sim::time::{Cycle, DerivedClock};
use bear_sim::{prop_assert, prop_assert_eq};

/// A bounded queue behaves exactly like a VecDeque with a length cap.
#[test]
fn queue_matches_model() {
    check(256, |src: &mut Source| {
        let cap = src.usize_in(1..16);
        let ops = src.vec_with(1..200, |s| s.u8_in(0..3));
        let mut q = BoundedQueue::new(cap);
        let mut model = std::collections::VecDeque::new();
        let mut next = 0u32;
        for op in ops {
            match op {
                0 => {
                    let accepted = q.try_push(next).is_ok();
                    prop_assert_eq!(accepted, model.len() < cap);
                    if accepted {
                        model.push_back(next);
                    }
                    next += 1;
                }
                1 => prop_assert_eq!(q.pop(), model.pop_front()),
                _ => prop_assert_eq!(q.front(), model.front()),
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.is_full(), model.len() == cap);
        }
        Ok(())
    });
}

/// Out-of-order removal preserves the remaining order.
#[test]
fn queue_remove_preserves_order() {
    check(256, |src: &mut Source| {
        let n = src.usize_in(2..12);
        let idx = src.usize_in(0..12);
        let mut q = BoundedQueue::new(16);
        for i in 0..n {
            q.try_push(i).unwrap();
        }
        let removed = q.remove(idx);
        prop_assert_eq!(removed.is_some(), idx < n);
        let rest: Vec<_> = q.iter().copied().collect();
        let mut expect: Vec<_> = (0..n).collect();
        if idx < n {
            expect.remove(idx);
        }
        prop_assert_eq!(rest, expect);
        Ok(())
    });
}

/// Rng bounds are respected for any bound.
#[test]
fn rng_next_below_in_range() {
    check(256, |src: &mut Source| {
        let seed = src.any_u64();
        let bound = src.u64_in(1..1_000_000);
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_below(bound) < bound);
        }
        Ok(())
    });
}

/// Clock edge alignment: the next edge is aligned and never in the past.
#[test]
fn clock_edges_align() {
    check(256, |src: &mut Source| {
        let divisor = src.u64_in(1..64);
        let t = src.u64_in(0..1_000_000);
        let c = DerivedClock::new(divisor);
        let edge = c.next_edge(Cycle(t));
        prop_assert!(edge.raw() >= t);
        prop_assert_eq!(edge.raw() % divisor, 0);
        prop_assert!(edge.raw() - t < divisor);
        Ok(())
    });
}

/// Histogram totals equal samples recorded; percentile is monotone.
#[test]
fn histogram_invariants() {
    check(256, |src: &mut Source| {
        let values = src.vec_with(1..200, |s| s.u64_in(0..100_000));
        let mut h = Histogram::new(16, 12);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
        prop_assert_eq!(h.buckets().iter().sum::<u64>(), values.len() as u64);
        prop_assert!(h.percentile(0.25) <= h.percentile(0.75));
        Ok(())
    });
}

/// Geometric mean lies between min and max.
#[test]
fn geomean_bounded() {
    check(256, |src: &mut Source| {
        let values = src.vec_with(1..50, |s| s.f64_in(0.01..100.0));
        let g = geometric_mean(&values);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(g >= min * 0.999 && g <= max * 1.001);
        Ok(())
    });
}
