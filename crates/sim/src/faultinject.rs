//! Deterministic fault injection.
//!
//! The invariant checker ([`crate::invariants`]) is itself only
//! trustworthy if it demonstrably *fires* when the simulated state is
//! corrupted. This module plans deterministic mid-run corruptions — tag
//! bit flips, presence-bit flips, NTC desynchronisation, byte-accounting
//! perturbation — that the system layer applies at the scheduled cycle.
//! Tests then assert that every injected fault is caught and reported by
//! the matching invariant, never silently absorbed into results.
//!
//! # Example
//!
//! ```
//! use bear_sim::faultinject::{Fault, FaultKind, FaultPlan};
//!
//! let mut plan = FaultPlan::deterministic(7, 1_000, 10_000);
//! assert_eq!(plan.len(), FaultKind::ALL.len());
//! assert!(plan.next_due(0).is_none()); // nothing scheduled this early
//! let first: Fault = plan.next_due(u64::MAX).unwrap();
//! assert!(first.at_cycle >= 1_000);
//! ```

use crate::rng::SimRng;

/// A class of state corruption the injector knows how to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip a bit in a stored cache tag (caught by the NTC-mirror check).
    TagFlip,
    /// Flip a presence/DCP bit so the L3 believes a line is in the L4 when
    /// it is not (caught by the DCP-coherence check).
    PresenceFlip,
    /// Desynchronise a Neighboring-Tag-Cache entry from the tag store it
    /// mirrors (caught by the NTC-mirror check).
    NtcDesync,
    /// Perturb the expected-bytes counter so bus-byte conservation no
    /// longer balances (caught by the byte-conservation check).
    ByteAccounting,
}

impl FaultKind {
    /// Every corruption class, in injection-priority order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::TagFlip,
        FaultKind::PresenceFlip,
        FaultKind::NtcDesync,
        FaultKind::ByteAccounting,
    ];

    /// Stable label for diagnostics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::TagFlip => "tag-flip",
            FaultKind::PresenceFlip => "presence-flip",
            FaultKind::NtcDesync => "ntc-desync",
            FaultKind::ByteAccounting => "byte-accounting",
        }
    }

    /// Parses a [`FaultKind::label`] back into the kind — used when reading
    /// serialized fuzz reproducers. Returns `None` for unknown labels.
    pub fn from_label(label: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// One scheduled corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// What to corrupt.
    pub kind: FaultKind,
    /// Earliest cycle at which to apply it. If the target state does not
    /// exist yet (e.g. the NTC is empty), the injector retries on
    /// subsequent cycles until it lands.
    pub at_cycle: u64,
}

/// An ordered schedule of faults, consumed as simulated time advances.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Sorted by `at_cycle`, earliest last (popped from the back).
    pending: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with no faults (the normal case).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from an explicit fault list (any order).
    pub fn new(mut faults: Vec<Fault>) -> Self {
        // Reverse-sorted so `next_due` pops the earliest from the back.
        faults.sort_by_key(|f| std::cmp::Reverse(f.at_cycle));
        FaultPlan { pending: faults }
    }

    /// A plan with a single fault.
    pub fn single(kind: FaultKind, at_cycle: u64) -> Self {
        FaultPlan::new(vec![Fault { kind, at_cycle }])
    }

    /// Schedules one fault of every kind at deterministic,
    /// seed-reproducible cycles inside `[start, start + window)`.
    pub fn deterministic(seed: u64, start: u64, window: u64) -> Self {
        let mut rng = SimRng::new(seed ^ 0xFA_017);
        let faults = FaultKind::ALL
            .iter()
            .map(|&kind| Fault {
                kind,
                at_cycle: start + rng.next_below(window.max(1)),
            })
            .collect();
        FaultPlan::new(faults)
    }

    /// Pops the next fault whose `at_cycle` has been reached, if any.
    pub fn next_due(&mut self, now: u64) -> Option<Fault> {
        if self.pending.last().is_some_and(|f| f.at_cycle <= now) {
            self.pending.pop()
        } else {
            None
        }
    }

    /// Cycle of the earliest still-pending fault, without consuming it.
    /// Event-driven drivers must not fast-forward past this point: a fault
    /// applied late would corrupt different state than the plan describes.
    /// A retried fault keeps its original (now past) cycle, pinning the
    /// bound in the past until the fault finally lands.
    pub fn next_at(&self) -> Option<u64> {
        self.pending.last().map(|f| f.at_cycle)
    }

    /// Re-arms a fault that could not be applied (no target state existed
    /// yet); it becomes due again immediately.
    pub fn retry(&mut self, fault: Fault) {
        self.pending.push(Fault {
            at_cycle: fault.at_cycle,
            ..fault
        });
        self.pending.sort_by_key(|f| std::cmp::Reverse(f.at_cycle));
    }

    /// Faults not yet applied.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether every fault has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_pop_in_cycle_order() {
        let mut plan = FaultPlan::new(vec![
            Fault {
                kind: FaultKind::NtcDesync,
                at_cycle: 30,
            },
            Fault {
                kind: FaultKind::TagFlip,
                at_cycle: 10,
            },
            Fault {
                kind: FaultKind::ByteAccounting,
                at_cycle: 20,
            },
        ]);
        assert!(plan.next_due(9).is_none());
        assert_eq!(plan.next_due(10).unwrap().kind, FaultKind::TagFlip);
        assert!(plan.next_due(15).is_none());
        assert_eq!(plan.next_due(25).unwrap().kind, FaultKind::ByteAccounting);
        assert_eq!(plan.next_due(30).unwrap().kind, FaultKind::NtcDesync);
        assert!(plan.is_empty());
    }

    #[test]
    fn deterministic_plan_is_reproducible_and_in_window() {
        let a = FaultPlan::deterministic(42, 5_000, 1_000);
        let b = FaultPlan::deterministic(42, 5_000, 1_000);
        assert_eq!(a.pending, b.pending);
        assert_eq!(a.len(), FaultKind::ALL.len());
        for f in &a.pending {
            assert!((5_000..6_000).contains(&f.at_cycle));
        }
        let c = FaultPlan::deterministic(43, 5_000, 1_000);
        assert_ne!(a.pending, c.pending, "different seeds should differ");
    }

    #[test]
    fn retry_keeps_fault_due() {
        let mut plan = FaultPlan::single(FaultKind::PresenceFlip, 100);
        let f = plan.next_due(100).unwrap();
        plan.retry(f);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.next_due(101).unwrap().kind, FaultKind::PresenceFlip);
        assert!(plan.next_due(102).is_none());
    }

    #[test]
    fn next_at_peeks_without_consuming() {
        let mut plan = FaultPlan::new(vec![
            Fault {
                kind: FaultKind::TagFlip,
                at_cycle: 10,
            },
            Fault {
                kind: FaultKind::NtcDesync,
                at_cycle: 30,
            },
        ]);
        assert_eq!(plan.next_at(), Some(10));
        assert_eq!(plan.len(), 2);
        plan.next_due(10).unwrap();
        assert_eq!(plan.next_at(), Some(30));
        plan.next_due(30).unwrap();
        assert_eq!(plan.next_at(), None);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = FaultKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), FaultKind::ALL.len());
    }

    #[test]
    fn labels_round_trip_through_from_label() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(FaultKind::from_label("not-a-fault"), None);
    }
}
