//! Deterministic fault injection.
//!
//! The invariant checker ([`crate::invariants`]) is itself only
//! trustworthy if it demonstrably *fires* when the simulated state is
//! corrupted. This module plans deterministic mid-run corruptions — tag
//! bit flips, presence-bit flips, NTC desynchronisation, byte-accounting
//! perturbation — that the system layer applies at the scheduled cycle.
//! Tests then assert that every injected fault is caught and reported by
//! the matching invariant, never silently absorbed into results.
//!
//! # Two fault levels
//!
//! [`FaultKind`]/[`FaultPlan`] corrupt state *inside* one simulation, and
//! exist to prove the invariant checker fires. [`ChaosKind`]/[`ChaosPlan`]
//! operate one level up: they describe faults of the **campaign harness**
//! itself — worker panics, wall-clock stalls, torn or unsyncable
//! checkpoint files, and whole-process kills — and exist to prove the
//! campaign *supervision* layer (retry, backoff, quarantine, resume)
//! recovers from them. Both plans are seeded and replayable: the same
//! seed injects the same faults into the same cells, every time, on any
//! worker count. This crate only declares and schedules the chaos faults;
//! `bear-bench`'s supervisor applies them.
//!
//! # Example
//!
//! ```
//! use bear_sim::faultinject::{Fault, FaultKind, FaultPlan};
//!
//! let mut plan = FaultPlan::deterministic(7, 1_000, 10_000);
//! assert_eq!(plan.len(), FaultKind::ALL.len());
//! assert!(plan.next_due(0).is_none()); // nothing scheduled this early
//! let first: Fault = plan.next_due(u64::MAX).unwrap();
//! assert!(first.at_cycle >= 1_000);
//! ```

use crate::rng::SimRng;

/// A class of state corruption the injector knows how to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip a bit in a stored cache tag (caught by the NTC-mirror check).
    TagFlip,
    /// Flip a presence/DCP bit so the L3 believes a line is in the L4 when
    /// it is not (caught by the DCP-coherence check).
    PresenceFlip,
    /// Desynchronise a Neighboring-Tag-Cache entry from the tag store it
    /// mirrors (caught by the NTC-mirror check).
    NtcDesync,
    /// Perturb the expected-bytes counter so bus-byte conservation no
    /// longer balances (caught by the byte-conservation check).
    ByteAccounting,
}

impl FaultKind {
    /// Every corruption class, in injection-priority order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::TagFlip,
        FaultKind::PresenceFlip,
        FaultKind::NtcDesync,
        FaultKind::ByteAccounting,
    ];

    /// Stable label for diagnostics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::TagFlip => "tag-flip",
            FaultKind::PresenceFlip => "presence-flip",
            FaultKind::NtcDesync => "ntc-desync",
            FaultKind::ByteAccounting => "byte-accounting",
        }
    }

    /// Parses a [`FaultKind::label`] back into the kind — used when reading
    /// serialized fuzz reproducers. Returns `None` for unknown labels.
    pub fn from_label(label: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// One scheduled corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// What to corrupt.
    pub kind: FaultKind,
    /// Earliest cycle at which to apply it. If the target state does not
    /// exist yet (e.g. the NTC is empty), the injector retries on
    /// subsequent cycles until it lands.
    pub at_cycle: u64,
}

/// An ordered schedule of faults, consumed as simulated time advances.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Sorted by `at_cycle`, earliest last (popped from the back).
    pending: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with no faults (the normal case).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from an explicit fault list (any order).
    pub fn new(mut faults: Vec<Fault>) -> Self {
        // Reverse-sorted so `next_due` pops the earliest from the back.
        faults.sort_by_key(|f| std::cmp::Reverse(f.at_cycle));
        FaultPlan { pending: faults }
    }

    /// A plan with a single fault.
    pub fn single(kind: FaultKind, at_cycle: u64) -> Self {
        FaultPlan::new(vec![Fault { kind, at_cycle }])
    }

    /// Schedules one fault of every kind at deterministic,
    /// seed-reproducible cycles inside `[start, start + window)`.
    pub fn deterministic(seed: u64, start: u64, window: u64) -> Self {
        let mut rng = SimRng::new(seed ^ 0xFA_017);
        let faults = FaultKind::ALL
            .iter()
            .map(|&kind| Fault {
                kind,
                at_cycle: start + rng.next_below(window.max(1)),
            })
            .collect();
        FaultPlan::new(faults)
    }

    /// Pops the next fault whose `at_cycle` has been reached, if any.
    pub fn next_due(&mut self, now: u64) -> Option<Fault> {
        if self.pending.last().is_some_and(|f| f.at_cycle <= now) {
            self.pending.pop()
        } else {
            None
        }
    }

    /// Cycle of the earliest still-pending fault, without consuming it.
    /// Event-driven drivers must not fast-forward past this point: a fault
    /// applied late would corrupt different state than the plan describes.
    /// A retried fault keeps its original (now past) cycle, pinning the
    /// bound in the past until the fault finally lands.
    pub fn next_at(&self) -> Option<u64> {
        self.pending.last().map(|f| f.at_cycle)
    }

    /// Re-arms a fault that could not be applied (no target state existed
    /// yet); it becomes due again immediately.
    pub fn retry(&mut self, fault: Fault) {
        self.pending.push(Fault {
            at_cycle: fault.at_cycle,
            ..fault
        });
        self.pending.sort_by_key(|f| std::cmp::Reverse(f.at_cycle));
    }

    /// Faults not yet applied.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether every fault has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// A class of harness-level fault the chaos injector knows how to apply
/// to a campaign (as opposed to [`FaultKind`], which corrupts state
/// inside one simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// Panic the worker thread running a cell (recovered by per-cell
    /// panic isolation plus retry).
    WorkerPanic,
    /// Wedge a cell past its wall-clock deadline (recovered by the
    /// harness deadline declaring a timeout, then retry).
    Stall,
    /// Truncate a cell's checkpoint file after it was written, leaving a
    /// committed-looking but torn artifact (recovered by checkpoint
    /// validation rejecting the file and re-running the cell).
    TornCheckpoint,
    /// Fail the checkpoint write at fsync time, leaving the cell
    /// unpersisted (recovered by the in-memory result surviving and the
    /// cell simply re-running after a crash).
    CheckpointIo,
    /// Kill the whole campaign process at a cell-completion boundary
    /// (recovered by checkpoint/resume on the next invocation).
    Kill,
}

impl ChaosKind {
    /// Every chaos class, in catalogue order.
    pub const ALL: [ChaosKind; 5] = [
        ChaosKind::WorkerPanic,
        ChaosKind::Stall,
        ChaosKind::TornCheckpoint,
        ChaosKind::CheckpointIo,
        ChaosKind::Kill,
    ];

    /// Stable label for manifests and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosKind::WorkerPanic => "worker-panic",
            ChaosKind::Stall => "stall",
            ChaosKind::TornCheckpoint => "torn-checkpoint",
            ChaosKind::CheckpointIo => "checkpoint-io",
            ChaosKind::Kill => "kill",
        }
    }

    /// Parses a [`ChaosKind::label`] back into the kind. Returns `None`
    /// for unknown labels.
    pub fn from_label(label: &str) -> Option<ChaosKind> {
        ChaosKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// One chaos fault scheduled against a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosFault {
    /// What to inject.
    pub kind: ChaosKind,
    /// `false`: the fault fires on the cell's first attempt only, so a
    /// single retry heals it. `true`: the fault fires on *every* attempt,
    /// so the cell must exhaust its retries and be quarantined — the
    /// deterministic way to exercise the quarantine path.
    pub persistent: bool,
}

/// A seeded, replayable schedule of harness-level faults over a campaign
/// grid.
///
/// Decisions are keyed on the cell's stable identity hash (the same
/// `cell_hash` the checkpoint store uses), **not** on arrival order, so
/// the same plan injects the same faults into the same cells regardless
/// of `BEAR_WORKERS`, scheduling, or how many times the campaign was
/// killed and resumed. That determinism is what lets the chaos suite
/// assert byte-identical recovered reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed every per-cell decision derives from.
    pub seed: u64,
    /// Cell-completion counts at which to kill the whole process
    /// (consumed at most once each; the harness records a marker so a
    /// resumed campaign does not re-fire a spent kill point).
    pub kill_points: Vec<u64>,
}

impl ChaosPlan {
    /// The default plan for `seed`: roughly half the cells draw an
    /// attempt fault, a quarter draw a checkpoint fault, and two kill
    /// points land early in the campaign.
    pub fn new(seed: u64) -> Self {
        let mut rng = SimRng::new(seed ^ 0xC4A0_5EED);
        let first = 2 + rng.next_below(3);
        let second = first + 3 + rng.next_below(3);
        ChaosPlan {
            seed,
            kill_points: vec![first, second],
        }
    }

    /// One deterministic draw for `cell_key` under `salt` (distinct salts
    /// give independent decision streams for the same cell).
    fn roll(&self, cell_key: u64, salt: u64) -> u64 {
        SimRng::new(self.seed ^ cell_key.rotate_left(17) ^ salt).next_u64()
    }

    /// The attempt-level fault (worker panic or stall) to inject into
    /// attempt `attempt` of the cell identified by `cell_key`, if any.
    ///
    /// Transient faults fire on attempt 0 only — the first retry heals
    /// them. Persistent faults fire on every attempt and force the cell
    /// through retry exhaustion into quarantine.
    pub fn attempt_fault(&self, cell_key: u64, attempt: u32) -> Option<ChaosFault> {
        let (kind, persistent) = match self.roll(cell_key, 0xA77E_3047) % 8 {
            0 => (ChaosKind::WorkerPanic, false),
            1 => (ChaosKind::Stall, false),
            2 => (ChaosKind::WorkerPanic, true),
            3 => (ChaosKind::Stall, true),
            _ => return None,
        };
        if !persistent && attempt > 0 {
            return None;
        }
        Some(ChaosFault { kind, persistent })
    }

    /// The checkpoint-persistence fault (torn file or fsync failure) to
    /// inject when the cell identified by `cell_key` is stored, if any.
    /// Independent of [`ChaosPlan::attempt_fault`]'s stream: a cell can
    /// draw both.
    pub fn checkpoint_fault(&self, cell_key: u64) -> Option<ChaosKind> {
        match self.roll(cell_key, 0xC4EC_4901) % 8 {
            0 => Some(ChaosKind::TornCheckpoint),
            1 => Some(ChaosKind::CheckpointIo),
            _ => None,
        }
    }

    /// If `completed` cell completions is a scheduled kill point, returns
    /// its index (for the harness's spent-kill marker file).
    pub fn kill_due(&self, completed: u64) -> Option<usize> {
        self.kill_points.iter().position(|&k| k == completed)
    }

    /// The daemon-level fault to inject into the job identified by
    /// `job_key`, if any. Keyed on job identity (not arrival order), so a
    /// killed-and-restarted daemon redraws the same faults for the same
    /// jobs — which is what lets the daemon chaos suite assert
    /// byte-identical recovered reports.
    ///
    /// Independent of [`ChaosPlan::attempt_fault`] /
    /// [`ChaosPlan::checkpoint_fault`]: daemon faults attack the *service*
    /// (worker threads, the journal/ack boundary), never the job's result,
    /// so every daemon fault heals completely.
    pub fn daemon_fault(&self, job_key: u64) -> Option<DaemonChaosKind> {
        match self.roll(job_key, 0xDAE0_F417) % 8 {
            0 => Some(DaemonChaosKind::WorkerKill),
            1 => Some(DaemonChaosKind::DaemonKill),
            _ => None,
        }
    }

    /// Whether the daemon drops the connection instead of answering
    /// request number `request_no` on connection number `conn_index`
    /// (roughly one in four requests). Clients recover by reconnecting
    /// and resubmitting; submissions are idempotent by job id.
    pub fn conn_drop(&self, conn_index: u64, request_no: u64) -> bool {
        let key = conn_index
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(request_no);
        self.roll(key, 0xD0_C41D).is_multiple_of(4)
    }
}

/// A class of fault the chaos injector knows how to apply to the
/// *campaign daemon* (`beard`), one level above [`ChaosKind`]'s batch
/// campaign: these attack the service machinery — connections, worker
/// threads, the process itself — and every one of them must heal without
/// affecting any accepted job's result.
///
/// Deliberately a separate enum from [`ChaosKind`]: the batch chaos
/// suite pins a seed that covers exactly [`ChaosKind::ALL`], and growing
/// that catalogue would invalidate the pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DaemonChaosKind {
    /// Drop a client connection mid-stream without answering (recovered
    /// by the client reconnecting and resubmitting; submissions are
    /// idempotent by job id).
    ConnDrop,
    /// Kill the worker thread running a job, outside the supervised
    /// attempt (recovered by the pool monitor requeueing the job and
    /// respawning the worker).
    WorkerKill,
    /// Kill -9 the whole daemon *between* journaling a job and
    /// acknowledging it — the worst admission window (recovered by the
    /// restarted daemon resuming the journaled job and the client
    /// resubmitting the unacknowledged one; both converge on one run).
    DaemonKill,
}

impl DaemonChaosKind {
    /// Every daemon chaos class, in catalogue order.
    pub const ALL: [DaemonChaosKind; 3] = [
        DaemonChaosKind::ConnDrop,
        DaemonChaosKind::WorkerKill,
        DaemonChaosKind::DaemonKill,
    ];

    /// Stable label for markers, counters, and reports.
    pub fn label(&self) -> &'static str {
        match self {
            DaemonChaosKind::ConnDrop => "conn-drop",
            DaemonChaosKind::WorkerKill => "worker-kill",
            DaemonChaosKind::DaemonKill => "daemon-kill",
        }
    }

    /// Parses a [`DaemonChaosKind::label`] back into the kind. Returns
    /// `None` for unknown labels.
    pub fn from_label(label: &str) -> Option<DaemonChaosKind> {
        DaemonChaosKind::ALL
            .into_iter()
            .find(|k| k.label() == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_pop_in_cycle_order() {
        let mut plan = FaultPlan::new(vec![
            Fault {
                kind: FaultKind::NtcDesync,
                at_cycle: 30,
            },
            Fault {
                kind: FaultKind::TagFlip,
                at_cycle: 10,
            },
            Fault {
                kind: FaultKind::ByteAccounting,
                at_cycle: 20,
            },
        ]);
        assert!(plan.next_due(9).is_none());
        assert_eq!(plan.next_due(10).unwrap().kind, FaultKind::TagFlip);
        assert!(plan.next_due(15).is_none());
        assert_eq!(plan.next_due(25).unwrap().kind, FaultKind::ByteAccounting);
        assert_eq!(plan.next_due(30).unwrap().kind, FaultKind::NtcDesync);
        assert!(plan.is_empty());
    }

    #[test]
    fn deterministic_plan_is_reproducible_and_in_window() {
        let a = FaultPlan::deterministic(42, 5_000, 1_000);
        let b = FaultPlan::deterministic(42, 5_000, 1_000);
        assert_eq!(a.pending, b.pending);
        assert_eq!(a.len(), FaultKind::ALL.len());
        for f in &a.pending {
            assert!((5_000..6_000).contains(&f.at_cycle));
        }
        let c = FaultPlan::deterministic(43, 5_000, 1_000);
        assert_ne!(a.pending, c.pending, "different seeds should differ");
    }

    #[test]
    fn retry_keeps_fault_due() {
        let mut plan = FaultPlan::single(FaultKind::PresenceFlip, 100);
        let f = plan.next_due(100).unwrap();
        plan.retry(f);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.next_due(101).unwrap().kind, FaultKind::PresenceFlip);
        assert!(plan.next_due(102).is_none());
    }

    #[test]
    fn next_at_peeks_without_consuming() {
        let mut plan = FaultPlan::new(vec![
            Fault {
                kind: FaultKind::TagFlip,
                at_cycle: 10,
            },
            Fault {
                kind: FaultKind::NtcDesync,
                at_cycle: 30,
            },
        ]);
        assert_eq!(plan.next_at(), Some(10));
        assert_eq!(plan.len(), 2);
        plan.next_due(10).unwrap();
        assert_eq!(plan.next_at(), Some(30));
        plan.next_due(30).unwrap();
        assert_eq!(plan.next_at(), None);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = FaultKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), FaultKind::ALL.len());
    }

    #[test]
    fn labels_round_trip_through_from_label() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(FaultKind::from_label("not-a-fault"), None);
    }

    #[test]
    fn label_round_trip_property() {
        use crate::check::{check, Source};
        use crate::prop_assert;
        // Any drawn kind round-trips; any mutation of its label (or any
        // random short string) either parses to a kind whose label equals
        // the input exactly, or parses to nothing — `from_label` never
        // guesses and never panics.
        check(256, |src: &mut Source| {
            let kind = FaultKind::ALL[src.usize_in(0..FaultKind::ALL.len())];
            prop_assert!(
                FaultKind::from_label(kind.label()) == Some(kind),
                "kind {kind:?} failed to round-trip"
            );
            let chaos = ChaosKind::ALL[src.usize_in(0..ChaosKind::ALL.len())];
            prop_assert!(
                ChaosKind::from_label(chaos.label()) == Some(chaos),
                "chaos kind {chaos:?} failed to round-trip"
            );
            let garbled: String = src
                .vec_with(0..12, |s| (b'a' + s.u64_in(0..26) as u8) as char)
                .into_iter()
                .collect();
            if let Some(parsed) = FaultKind::from_label(&garbled) {
                prop_assert!(
                    parsed.label() == garbled,
                    "from_label({garbled:?}) -> {parsed:?} but labels differ"
                );
            }
            if let Some(parsed) = ChaosKind::from_label(&garbled) {
                prop_assert!(
                    parsed.label() == garbled,
                    "chaos from_label({garbled:?}) -> {parsed:?} but labels differ"
                );
            }
            Ok(())
        });
    }

    #[test]
    fn deterministic_plan_with_zero_window_is_panic_free() {
        // window == 0 degenerates to "inject everything exactly at
        // `start`" instead of panicking in the RNG bound.
        let plan = FaultPlan::deterministic(9, 1_234, 0);
        assert_eq!(plan.len(), FaultKind::ALL.len());
        for f in &plan.pending {
            assert_eq!(f.at_cycle, 1_234);
        }
    }

    #[test]
    fn chaos_labels_are_distinct_and_disjoint_from_fault_labels() {
        let mut labels: Vec<&str> = ChaosKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ChaosKind::ALL.len());
        for k in FaultKind::ALL {
            assert_eq!(
                ChaosKind::from_label(k.label()),
                None,
                "in-sim and harness fault namespaces must not overlap"
            );
        }
    }

    #[test]
    fn chaos_plan_is_reproducible_and_key_stable() {
        let a = ChaosPlan::new(1234);
        let b = ChaosPlan::new(1234);
        assert_eq!(a, b);
        for key in [0u64, 7, 0xDEAD_BEEF, u64::MAX] {
            for attempt in 0..3 {
                assert_eq!(a.attempt_fault(key, attempt), b.attempt_fault(key, attempt));
            }
            assert_eq!(a.checkpoint_fault(key), b.checkpoint_fault(key));
        }
        assert_ne!(
            ChaosPlan::new(1235).kill_points,
            Vec::<u64>::new(),
            "kill points are scheduled"
        );
    }

    #[test]
    fn transient_chaos_faults_clear_on_retry_and_persistent_ones_do_not() {
        let plan = ChaosPlan::new(42);
        let mut saw_transient = false;
        let mut saw_persistent = false;
        for key in 0..512u64 {
            if let Some(f) = plan.attempt_fault(key, 0) {
                if f.persistent {
                    saw_persistent = true;
                    assert_eq!(
                        plan.attempt_fault(key, 3),
                        Some(f),
                        "persistent faults fire on every attempt"
                    );
                } else {
                    saw_transient = true;
                    assert_eq!(
                        plan.attempt_fault(key, 1),
                        None,
                        "transient faults heal on the first retry"
                    );
                }
            }
        }
        assert!(saw_transient && saw_persistent, "both classes drawn");
    }

    #[test]
    fn daemon_labels_are_distinct_and_disjoint_from_both_namespaces() {
        let mut labels: Vec<&str> = DaemonChaosKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), DaemonChaosKind::ALL.len());
        for k in FaultKind::ALL {
            assert_eq!(
                DaemonChaosKind::from_label(k.label()),
                None,
                "in-sim and daemon fault namespaces must not overlap"
            );
        }
        for k in ChaosKind::ALL {
            assert_eq!(
                DaemonChaosKind::from_label(k.label()),
                None,
                "campaign and daemon fault namespaces must not overlap"
            );
        }
        for k in DaemonChaosKind::ALL {
            assert_eq!(DaemonChaosKind::from_label(k.label()), Some(k));
            assert_eq!(ChaosKind::from_label(k.label()), None);
            assert_eq!(FaultKind::from_label(k.label()), None);
        }
    }

    #[test]
    fn daemon_faults_are_reproducible_and_draw_every_kind() {
        let a = ChaosPlan::new(77);
        let b = ChaosPlan::new(77);
        let mut saw_worker = false;
        let mut saw_daemon = false;
        let mut saw_none = false;
        for key in 0..512u64 {
            let fault = a.daemon_fault(key);
            assert_eq!(fault, b.daemon_fault(key), "same seed, same draw");
            match fault {
                Some(DaemonChaosKind::WorkerKill) => saw_worker = true,
                Some(DaemonChaosKind::DaemonKill) => saw_daemon = true,
                Some(DaemonChaosKind::ConnDrop) => {
                    panic!("conn drops come from ChaosPlan::conn_drop, not daemon_fault")
                }
                None => saw_none = true,
            }
        }
        assert!(
            saw_worker && saw_daemon && saw_none,
            "512 keys must draw both kill kinds and plenty of clean jobs"
        );
    }

    #[test]
    fn conn_drops_are_reproducible_and_partial() {
        let a = ChaosPlan::new(77);
        let b = ChaosPlan::new(77);
        let mut dropped = 0u32;
        let mut total = 0u32;
        for conn in 0..16u64 {
            for req in 0..16u64 {
                assert_eq!(a.conn_drop(conn, req), b.conn_drop(conn, req));
                total += 1;
                if a.conn_drop(conn, req) {
                    dropped += 1;
                }
            }
        }
        assert!(dropped > 0, "some requests must be dropped");
        assert!(dropped < total, "not every request may be dropped");
    }

    #[test]
    fn kill_points_are_positional_and_bounded() {
        let armed = ChaosPlan::new(7);
        assert_eq!(armed.kill_points.len(), 2);
        assert!(armed.kill_points[0] < armed.kill_points[1]);
        let p = armed.kill_points[0];
        assert_eq!(armed.kill_due(p), Some(0));
        assert_eq!(armed.kill_due(p + 100), None);
    }
}
