//! Dependency-free property testing built on [`SimRng`].
//!
//! The workspace's property tests used to depend on an external framework;
//! this module replaces it with a small in-tree engine so the whole
//! repository builds and tests with **zero registry crates** (offline-first
//! is a hard requirement of the experiment campaign).
//!
//! # Model
//!
//! A property is a closure over a [`Source`]. The source hands out random
//! draws (integers, booleans, floats, vectors) from a deterministic
//! [`SimRng`] stream while recording every raw draw on a *tape*. When the
//! property fails, the engine minimizes the counterexample by
//! **shrink-by-bisection** directly on the tape:
//!
//! 1. bisect the tape *length* (a shorter tape replays with zeros beyond
//!    its end, which yields minimum-length vectors and minimal values), and
//! 2. bisect each recorded draw toward zero.
//!
//! Because every ranged combinator maps the raw draw `0` to its minimum
//! value, driving tape entries toward zero drives the decoded input toward
//! the smallest counterexample — no per-type shrinker is needed.
//!
//! # Example
//!
//! ```
//! use bear_sim::check::{check, Source};
//! use bear_sim::prop_assert;
//!
//! check(64, |src: &mut Source| {
//!     let xs = src.vec_with(0..10, |s| s.u64_in(0..100));
//!     let sum: u64 = xs.iter().sum();
//!     prop_assert!(sum <= 100 * xs.len() as u64, "sum {} too large", sum);
//!     Ok(())
//! });
//! ```
//!
//! Failures panic with the minimized input description, the failing case's
//! seed, and a `BEAR_PROP_SEED=…` hint that replays exactly that case.
//!
//! # Environment knobs
//!
//! - `BEAR_PROP_CASES` — override the number of cases every `check` runs.
//! - `BEAR_PROP_SEED` — replay a reported failure: the given seed becomes
//!   case 0's seed, so one case reproduces the counterexample.

use crate::rng::SimRng;
use std::ops::Range;

/// Per-case seed stride (golden-ratio increment, the Weyl constant).
const CASE_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Default number of cases for [`check`] when `BEAR_PROP_CASES` is unset.
pub const DEFAULT_CASES: u64 = 256;

/// Hard cap on property replays spent shrinking one failure.
const MAX_SHRINK_REPLAYS: u64 = 4096;

/// A recording/replaying randomness source handed to properties.
///
/// In *record* mode the source draws fresh values from its RNG and appends
/// each raw `u64` to the tape. In *replay* mode it reads the tape back,
/// substituting `0` once the tape is exhausted (the minimal draw).
#[derive(Debug)]
pub struct Source {
    rng: SimRng,
    tape: Vec<u64>,
    pos: usize,
    replay: bool,
}

impl Source {
    fn record(seed: u64) -> Self {
        Source {
            rng: SimRng::new(seed),
            tape: Vec::new(),
            pos: 0,
            replay: false,
        }
    }

    fn replay(tape: Vec<u64>) -> Self {
        Source {
            rng: SimRng::new(0),
            tape,
            pos: 0,
            replay: true,
        }
    }

    /// One raw draw: fresh from the RNG when recording, from the tape when
    /// replaying (zero past the end).
    fn draw(&mut self) -> u64 {
        let v = if self.replay {
            self.tape.get(self.pos).copied().unwrap_or(0)
        } else {
            let v = self.rng.next_u64();
            self.tape.push(v);
            v
        };
        self.pos += 1;
        v
    }

    /// Uniform `u64` over the full range.
    pub fn any_u64(&mut self) -> u64 {
        self.draw()
    }

    /// Uniform `u64` in `[range.start, range.end)`; the raw draw `0` maps
    /// to `range.start` so shrinking minimizes the value.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn u64_in(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + self.draw() % span
    }

    /// Uniform `u32` in `[range.start, range.end)`.
    pub fn u32_in(&mut self, range: Range<u32>) -> u32 {
        self.u64_in(range.start as u64..range.end as u64) as u32
    }

    /// Uniform `u8` in `[range.start, range.end)`.
    pub fn u8_in(&mut self, range: Range<u8>) -> u8 {
        self.u64_in(range.start as u64..range.end as u64) as u8
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.u64_in(range.start as u64..range.end as u64) as usize
    }

    /// A boolean; the raw draw `0` maps to `false`.
    pub fn bool(&mut self) -> bool {
        self.draw() & 1 == 1
    }

    /// Uniform float in `[range.start, range.end)`; shrinks toward
    /// `range.start`.
    pub fn f64_in(&mut self, range: Range<f64>) -> f64 {
        let unit = (self.draw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `elem`; shrinks toward the minimum length and minimal elements.
    pub fn vec_with<T>(
        &mut self,
        len: Range<usize>,
        mut elem: impl FnMut(&mut Source) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| elem(self)).collect()
    }

    /// `Some(elem(..))` or `None` (the raw draw `0` maps to `None`).
    pub fn option_of<T>(&mut self, elem: impl FnOnce(&mut Source) -> T) -> Option<T> {
        if self.bool() {
            Some(elem(self))
        } else {
            None
        }
    }
}

/// Outcome of one property evaluation.
pub type PropResult = Result<(), String>;

/// Runs `prop` against `cases` random inputs (overridable via
/// `BEAR_PROP_CASES`), shrinking and panicking on the first failure.
///
/// This is the porcelain entry point; see [`check_seeded`] to pin the base
/// seed explicitly.
///
/// # Panics
///
/// Panics with the minimized counterexample when the property fails.
///
/// ```
/// use bear_sim::check::{check, Source};
/// use bear_sim::prop_assert_eq;
///
/// check(32, |src: &mut Source| {
///     let v = src.u64_in(3..10);
///     prop_assert_eq!(v, v);
///     Ok(())
/// });
/// ```
pub fn check(cases: u64, prop: impl FnMut(&mut Source) -> PropResult) {
    let cases = std::env::var("BEAR_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cases);
    let seed = std::env::var("BEAR_PROP_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xBEA2_2015_u64);
    check_seeded(seed, cases, prop);
}

/// Runs `prop` for `cases` cases with an explicit base seed.
///
/// Case `i` uses seed `base_seed + i * CASE_STRIDE`, so replaying a
/// reported seed as the base reproduces the failing case as case 0.
///
/// # Panics
///
/// Panics with the minimized counterexample when the property fails.
pub fn check_seeded(base_seed: u64, cases: u64, mut prop: impl FnMut(&mut Source) -> PropResult) {
    for case in 0..cases {
        let case_seed = base_seed.wrapping_add(case.wrapping_mul(CASE_STRIDE));
        let mut src = Source::record(case_seed);
        if let Err(msg) = prop(&mut src) {
            let tape = std::mem::take(&mut src.tape);
            let (tape, msg, replays) = shrink(tape, msg, &mut prop);
            panic!(
                "property failed (case {case}, seed {case_seed}, \
                 minimized to {} draws after {replays} replays):\n  {msg}\n  \
                 tape: {:?}\n  replay with: BEAR_PROP_SEED={case_seed} BEAR_PROP_CASES=1",
                tape.len(),
                tape,
            );
        }
    }
}

/// Replays `tape`; returns the failure message if the property still fails.
fn replay_fails(tape: &[u64], prop: &mut impl FnMut(&mut Source) -> PropResult) -> Option<String> {
    let mut src = Source::replay(tape.to_vec());
    prop(&mut src).err()
}

/// Shrink-by-bisection on the recorded tape: first bisect the tape length,
/// then bisect every draw toward zero, repeating until a fixed point (or
/// the replay budget runs out). Returns the minimal failing tape, its
/// failure message, and the number of replays spent.
fn shrink(
    mut tape: Vec<u64>,
    mut msg: String,
    prop: &mut impl FnMut(&mut Source) -> PropResult,
) -> (Vec<u64>, String, u64) {
    let mut replays = 0u64;
    let mut try_tape = |t: &[u64], replays: &mut u64| -> Option<String> {
        if *replays >= MAX_SHRINK_REPLAYS {
            return None;
        }
        *replays += 1;
        replay_fails(t, prop)
    };

    loop {
        let mut progressed = false;

        // Phase 0: delete interior chunks (delta debugging with
        // bisection-sized windows), so a late interesting draw can move
        // to the front of the tape.
        let mut chunk = (tape.len() / 2).max(1);
        while chunk >= 1 && !tape.is_empty() {
            let mut i = 0;
            while i + chunk <= tape.len() {
                let mut cand = tape.clone();
                cand.drain(i..i + chunk);
                match try_tape(&cand, &mut replays) {
                    Some(m) => {
                        msg = m;
                        tape = cand;
                        progressed = true;
                    }
                    None => i += chunk,
                }
                if replays >= MAX_SHRINK_REPLAYS {
                    return (tape, msg, replays);
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Phase 1: bisect the length. lo is the longest prefix known to
        // pass (as a cut point), hi the shortest known to fail.
        let (mut lo, mut hi) = (0usize, tape.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match try_tape(&tape[..mid], &mut replays) {
                Some(m) => {
                    msg = m;
                    hi = mid;
                    progressed = progressed || hi < tape.len();
                }
                None => lo = mid + 1,
            }
        }
        if hi < tape.len() {
            tape.truncate(hi);
        }

        // Phase 2: bisect each draw toward zero.
        for i in 0..tape.len() {
            let (mut lo, mut hi) = (0u64, tape[i]);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let orig = tape[i];
                tape[i] = mid;
                match try_tape(&tape, &mut replays) {
                    Some(m) => {
                        msg = m;
                        hi = mid;
                        progressed = true;
                    }
                    None => {
                        tape[i] = orig;
                        lo = mid + 1;
                    }
                }
                if replays >= MAX_SHRINK_REPLAYS {
                    return (tape, msg, replays);
                }
            }
        }

        if !progressed || replays >= MAX_SHRINK_REPLAYS {
            return (tape, msg, replays);
        }
    }
}

/// Asserts a condition inside a property, failing the case with location
/// and optional formatted context.
///
/// Unlike [`assert!`], failure is reported by returning `Err` from the
/// enclosing property closure, so the engine can shrink the input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} — {} ({}:{})",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property (shrinking variant
/// of [`assert_eq!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (l, r) = (&$a, &$b);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {} == {}\n    left: {:?}\n   right: {:?} ({}:{})",
                stringify!($a),
                stringify!($b),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$a, &$b);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {} == {}\n    left: {:?}\n   right: {:?} — {} ({}:{})",
                stringify!($a),
                stringify!($b),
                l,
                r,
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    }};
}

/// Asserts two expressions are unequal inside a property (shrinking
/// variant of [`assert_ne!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (l, r) = (&$a, &$b);
        if !(l != r) {
            return Err(format!(
                "assertion failed: {} != {}\n    both: {:?} ({}:{})",
                stringify!($a),
                stringify!($b),
                l,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut n = 0u64;
        check_seeded(1, 50, |src| {
            n += 1;
            let v = src.u64_in(0..10);
            prop_assert!(v < 10);
            Ok(())
        });
        assert_eq!(n, 50);
    }

    #[test]
    fn ranged_draws_respect_bounds() {
        check_seeded(2, 200, |src| {
            prop_assert!(src.u64_in(5..9) >= 5);
            prop_assert!(src.u8_in(0..3) < 3);
            prop_assert!(src.u32_in(1..2) == 1);
            prop_assert!(src.usize_in(0..7) < 7);
            let f = src.f64_in(1.0..2.0);
            prop_assert!((1.0..2.0).contains(&f));
            let v = src.vec_with(2..5, |s| s.bool());
            prop_assert!((2..5).contains(&v.len()));
            Ok(())
        });
    }

    #[test]
    fn zero_tape_decodes_to_minimums() {
        let mut src = Source::replay(Vec::new());
        assert_eq!(src.u64_in(3..10), 3);
        assert_eq!(src.usize_in(1..200), 1);
        assert!(!src.bool());
        assert_eq!(src.f64_in(0.5..2.0), 0.5);
        assert_eq!(src.option_of(|s| s.any_u64()), None);
        assert_eq!(src.vec_with(0..10, |s| s.any_u64()), Vec::<u64>::new());
    }

    #[test]
    fn failure_shrinks_to_minimal_counterexample() {
        // Property: fails whenever any element is >= 50. The minimal
        // counterexample is a single-element vector [50].
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check_seeded(3, 1000, |src: &mut Source| {
                let xs = src.vec_with(0..20, |s| s.u64_in(0..100));
                prop_assert!(xs.iter().all(|&x| x < 50), "saw {:?}", xs);
                Ok(())
            });
        }));
        let msg = match caught {
            Ok(()) => panic!("property should have failed"),
            Err(e) => *e.downcast::<String>().expect("panic payload"),
        };
        assert!(msg.contains("[50]"), "not minimal: {msg}");
        assert!(msg.contains("BEAR_PROP_SEED="), "no replay hint: {msg}");
    }

    #[test]
    fn shrunk_failure_reports_latest_message() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check_seeded(4, 100, |src: &mut Source| {
                let v = src.u64_in(0..1000);
                prop_assert!(v < 10, "v was {}", v);
                Ok(())
            });
        }));
        let msg = match caught {
            Ok(()) => panic!("property should have failed"),
            Err(e) => *e.downcast::<String>().expect("panic payload"),
        };
        // Bisection lands exactly on the boundary value 10.
        assert!(msg.contains("v was 10"), "bad message: {msg}");
    }

    #[test]
    fn replay_env_seed_reproduces() {
        // The same seed must drive the same draws.
        let mut first = Vec::new();
        check_seeded(99, 1, |src| {
            first.push(src.any_u64());
            Ok(())
        });
        let mut second = Vec::new();
        check_seeded(99, 1, |src| {
            second.push(src.any_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }
}
