//! Global simulation time.
//!
//! The entire simulation runs on a single global clock measured in **CPU
//! cycles** (the paper's processor runs at 3.2 GHz). Slower clock domains —
//! the 1.6 GHz DDR bus of the stacked DRAM cache and the 800 MHz DDR bus of
//! main memory — are expressed through [`DerivedClock`], which converts
//! between CPU cycles and bus cycles.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in time (or a duration) measured in CPU cycles.
///
/// `Cycle` is a thin newtype over `u64`; arithmetic with plain `u64` cycle
/// counts is provided for convenience.
///
/// # Example
///
/// ```
/// use bear_sim::time::Cycle;
/// let start = Cycle(10);
/// let end = start + 5;
/// assert_eq!(end - start, 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The zero point of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Largest representable time; used as "never" in schedulers.
    pub const NEVER: Cycle = Cycle(u64::MAX);

    /// Returns the later of `self` and `other`.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of `self` and `other`.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Saturating subtraction: returns `0` instead of underflowing.
    #[inline]
    pub fn saturating_sub(self, other: Cycle) -> u64 {
        self.0.saturating_sub(other.0)
    }

    /// Raw cycle count.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "time went backwards: {self:?} - {rhs:?}");
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Self {
        Cycle(v)
    }
}

/// A clock domain slower than (or equal to) the CPU clock by an integer
/// divisor.
///
/// DRAM command and data-bus timing is naturally expressed in bus cycles; the
/// simulator keeps all bookkeeping in CPU cycles, so `DerivedClock` provides
/// the conversions. For example the paper's DRAM-cache bus runs at 1.6 GHz
/// with a 3.2 GHz CPU clock, a divisor of 2.
///
/// # Example
///
/// ```
/// use bear_sim::time::{Cycle, DerivedClock};
/// let bus = DerivedClock::new(2); // 1.6 GHz bus under a 3.2 GHz CPU
/// assert_eq!(bus.to_cpu_cycles(5), 10);
/// // The first bus edge at or after CPU cycle 3 is at CPU cycle 4.
/// assert_eq!(bus.next_edge(Cycle(3)), Cycle(4));
/// assert_eq!(bus.next_edge(Cycle(4)), Cycle(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DerivedClock {
    divisor: u64,
}

impl DerivedClock {
    /// Creates a clock running `divisor`× slower than the CPU clock.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn new(divisor: u64) -> Self {
        assert!(divisor > 0, "clock divisor must be non-zero");
        DerivedClock { divisor }
    }

    /// The integer divisor relative to the CPU clock.
    #[inline]
    pub fn divisor(self) -> u64 {
        self.divisor
    }

    /// Converts a duration in bus cycles to CPU cycles.
    #[inline]
    pub fn to_cpu_cycles(self, bus_cycles: u64) -> u64 {
        bus_cycles * self.divisor
    }

    /// First CPU cycle at or after `t` that is aligned to a bus clock edge.
    #[inline]
    pub fn next_edge(self, t: Cycle) -> Cycle {
        let rem = t.0 % self.divisor;
        if rem == 0 {
            t
        } else {
            Cycle(t.0 + (self.divisor - rem))
        }
    }
}

impl Default for DerivedClock {
    /// A pass-through clock with divisor 1.
    fn default() -> Self {
        DerivedClock::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let a = Cycle(100);
        assert_eq!(a + 44, Cycle(144));
        assert_eq!(Cycle(144) - a, 44);
        assert_eq!(a.max(Cycle(10)), a);
        assert_eq!(a.min(Cycle(10)), Cycle(10));
    }

    #[test]
    fn cycle_saturating_sub() {
        assert_eq!(Cycle(5).saturating_sub(Cycle(10)), 0);
        assert_eq!(Cycle(10).saturating_sub(Cycle(5)), 5);
    }

    #[test]
    fn cycle_display_and_from() {
        assert_eq!(Cycle::from(7u64), Cycle(7));
        assert_eq!(format!("{}", Cycle(9)), "9cy");
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    #[cfg(debug_assertions)]
    fn cycle_sub_underflow_panics_in_debug() {
        let _ = Cycle(1) - Cycle(2);
    }

    #[test]
    fn derived_clock_conversion() {
        let c = DerivedClock::new(4);
        assert_eq!(c.to_cpu_cycles(3), 12);
        assert_eq!(c.divisor(), 4);
    }

    #[test]
    fn derived_clock_edges() {
        let c = DerivedClock::new(4);
        assert_eq!(c.next_edge(Cycle(0)), Cycle(0));
        assert_eq!(c.next_edge(Cycle(1)), Cycle(4));
        assert_eq!(c.next_edge(Cycle(4)), Cycle(4));
        assert_eq!(c.next_edge(Cycle(7)), Cycle(8));
    }

    #[test]
    fn derived_clock_default_is_passthrough() {
        let c = DerivedClock::default();
        assert_eq!(c.to_cpu_cycles(11), 11);
        assert_eq!(c.next_edge(Cycle(13)), Cycle(13));
    }

    #[test]
    #[should_panic(expected = "divisor must be non-zero")]
    fn derived_clock_zero_divisor_panics() {
        let _ = DerivedClock::new(0);
    }
}
