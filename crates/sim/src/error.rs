//! Typed simulation errors.
//!
//! Every fallible layer of the workspace — configuration validation, the
//! DRAM device, the system step loop, and the campaign harness — reports
//! failures through one enum, [`SimError`], instead of ad-hoc `String`
//! errors and panics. A campaign cell that fails therefore degrades to a
//! machine-readable failure row (kind + message) rather than aborting the
//! whole experiment grid.
//!
//! # Example
//!
//! ```
//! use bear_sim::error::{RunOutcome, SimError};
//!
//! fn validate(ways: usize) -> RunOutcome<()> {
//!     if ways == 0 {
//!         return Err(SimError::config("l3", "ways must be non-zero"));
//!     }
//!     Ok(())
//! }
//!
//! let err = validate(0).unwrap_err();
//! assert_eq!(err.kind(), "config");
//! assert!(format!("{err}").contains("ways must be non-zero"));
//! ```

use std::fmt;

/// A typed simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A configuration was rejected before the simulation started.
    Config {
        /// Which configuration section was at fault (e.g. `"cache_dram"`).
        context: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A simulation cell panicked; the panic payload was captured.
    Panicked {
        /// What was running when the panic fired (e.g. `"alloy/mcf"`).
        context: String,
        /// The panic message (or a placeholder for non-string payloads).
        message: String,
    },
    /// The forward-progress watchdog saw no retired instructions for a
    /// full window.
    Stalled {
        /// Cycle at which the stall was declared.
        cycle: u64,
        /// Diagnostic snapshot of queue occupancies at that moment.
        snapshot: String,
    },
    /// A runtime invariant check failed (see [`crate::invariants`]).
    Invariant {
        /// Name of the violated invariant.
        name: String,
        /// What the checker observed.
        detail: String,
    },
    /// A filesystem operation in the campaign harness failed.
    Io {
        /// What the harness was doing (e.g. a file path).
        context: String,
        /// The underlying OS error message.
        message: String,
    },
    /// The harness-level supervisor declared the cell dead: it exceeded
    /// its wall-clock deadline (the escalation of the in-sim watchdog to
    /// the campaign layer — the sim may be live but too slow, wedged in a
    /// syscall, or stalled in a way the in-sim watchdog cannot see).
    Timeout {
        /// What was running when the deadline expired (e.g. `"alloy/mcf"`).
        context: String,
        /// The wall-clock budget that was exceeded, in milliseconds.
        limit_ms: u64,
    },
    /// The cycle-level model and the untimed shadow oracle disagreed on a
    /// functional outcome (hit/miss classification, presence state, bypass
    /// legality, or cumulative byte accounting).
    Divergence {
        /// Cycle at which the disagreement was observed.
        cycle: u64,
        /// Which oracle check fired (e.g. `"read-classification"`).
        check: String,
        /// What the cycle-level model reported.
        cycle_view: String,
        /// What the shadow oracle expected.
        oracle_view: String,
    },
}

impl SimError {
    /// Builds a [`SimError::Config`].
    pub fn config(context: impl Into<String>, reason: impl Into<String>) -> Self {
        SimError::Config {
            context: context.into(),
            reason: reason.into(),
        }
    }

    /// Builds a [`SimError::Panicked`].
    pub fn panicked(context: impl Into<String>, message: impl Into<String>) -> Self {
        SimError::Panicked {
            context: context.into(),
            message: message.into(),
        }
    }

    /// Builds a [`SimError::Io`].
    pub fn io(context: impl Into<String>, message: impl Into<String>) -> Self {
        SimError::Io {
            context: context.into(),
            message: message.into(),
        }
    }

    /// Builds a [`SimError::Invariant`].
    pub fn invariant(name: impl Into<String>, detail: impl Into<String>) -> Self {
        SimError::Invariant {
            name: name.into(),
            detail: detail.into(),
        }
    }

    /// Builds a [`SimError::Timeout`].
    pub fn timeout(context: impl Into<String>, limit_ms: u64) -> Self {
        SimError::Timeout {
            context: context.into(),
            limit_ms,
        }
    }

    /// Builds a [`SimError::Divergence`].
    pub fn divergence(
        cycle: u64,
        check: impl Into<String>,
        cycle_view: impl Into<String>,
        oracle_view: impl Into<String>,
    ) -> Self {
        SimError::Divergence {
            cycle,
            check: check.into(),
            cycle_view: cycle_view.into(),
            oracle_view: oracle_view.into(),
        }
    }

    /// Returns the same error with its `context` field replaced — used when
    /// an inner validation error is re-reported by an outer config (e.g. a
    /// DRAM error re-contextualised as `"cache_dram"`).
    pub fn in_context(self, context: impl Into<String>) -> Self {
        match self {
            SimError::Config { reason, .. } => SimError::Config {
                context: context.into(),
                reason,
            },
            SimError::Panicked { message, .. } => SimError::Panicked {
                context: context.into(),
                message,
            },
            SimError::Io { message, .. } => SimError::Io {
                context: context.into(),
                message,
            },
            SimError::Timeout { limit_ms, .. } => SimError::Timeout {
                context: context.into(),
                limit_ms,
            },
            other => other,
        }
    }

    /// Short machine-readable tag for report rows: one of `"config"`,
    /// `"panic"`, `"stalled"`, `"invariant"`, `"io"`, `"timeout"`,
    /// `"divergence"`.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Config { .. } => "config",
            SimError::Panicked { .. } => "panic",
            SimError::Stalled { .. } => "stalled",
            SimError::Invariant { .. } => "invariant",
            SimError::Io { .. } => "io",
            SimError::Timeout { .. } => "timeout",
            SimError::Divergence { .. } => "divergence",
        }
    }

    /// Whether a retry could plausibly succeed.
    ///
    /// The campaign supervisor only retries *transient* failures — ones
    /// caused by the environment (a poisoned worker, a wedged or slow
    /// host, a full disk) rather than by the cell itself. Deterministic
    /// failures (a rejected configuration, an invariant violation, an
    /// oracle divergence) would fail identically on every attempt, so
    /// retrying them wastes a full cell simulation per attempt and, worse,
    /// buries the real diagnostic under retry noise.
    pub fn is_transient(&self) -> bool {
        match self {
            SimError::Panicked { .. }
            | SimError::Stalled { .. }
            | SimError::Io { .. }
            | SimError::Timeout { .. } => true,
            SimError::Config { .. } | SimError::Invariant { .. } | SimError::Divergence { .. } => {
                false
            }
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config { context, reason } => {
                write!(f, "invalid configuration ({context}): {reason}")
            }
            SimError::Panicked { context, message } => {
                write!(f, "panic in {context}: {message}")
            }
            SimError::Stalled { cycle, snapshot } => {
                write!(f, "no forward progress by cycle {cycle}: {snapshot}")
            }
            SimError::Invariant { name, detail } => {
                write!(f, "invariant '{name}' violated: {detail}")
            }
            SimError::Io { context, message } => {
                write!(f, "io error ({context}): {message}")
            }
            SimError::Timeout { context, limit_ms } => {
                write!(
                    f,
                    "cell {context} exceeded its {limit_ms}ms wall-clock deadline"
                )
            }
            SimError::Divergence {
                cycle,
                check,
                cycle_view,
                oracle_view,
            } => {
                write!(
                    f,
                    "oracle divergence at cycle {cycle} ({check}): \
                     cycle model saw [{cycle_view}], oracle expected [{oracle_view}]"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Outcome of running (or preparing to run) one simulation cell.
pub type RunOutcome<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context_and_reason() {
        let e = SimError::config("mem_dram", "row size must be a power of two");
        assert_eq!(e.kind(), "config");
        let s = format!("{e}");
        assert!(s.contains("mem_dram"));
        assert!(s.contains("power of two"));
    }

    #[test]
    fn in_context_rewrites_config_context() {
        let e = SimError::config("dram", "zero channels").in_context("cache_dram");
        assert_eq!(
            e,
            SimError::config("cache_dram", "zero channels"),
            "context should be replaced, reason preserved"
        );
        // Stalled has no context field; in_context is a no-op.
        let s = SimError::Stalled {
            cycle: 7,
            snapshot: "q=3".into(),
        };
        assert_eq!(s.clone().in_context("x"), s);
    }

    #[test]
    fn every_kind_is_distinct() {
        let kinds = [
            SimError::config("a", "b").kind(),
            SimError::panicked("a", "b").kind(),
            SimError::Stalled {
                cycle: 0,
                snapshot: String::new(),
            }
            .kind(),
            SimError::invariant("a", "b").kind(),
            SimError::io("a", "b").kind(),
            SimError::timeout("a", 100).kind(),
            SimError::divergence(0, "a", "b", "c").kind(),
        ];
        let mut dedup = kinds.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), kinds.len());
    }

    #[test]
    fn timeout_display_and_context() {
        let e = SimError::timeout("BEAR/rate:mcf", 2_500);
        assert_eq!(e.kind(), "timeout");
        let s = format!("{e}");
        assert!(s.contains("BEAR/rate:mcf"));
        assert!(s.contains("2500ms"));
        assert_eq!(
            e.in_context("other"),
            SimError::timeout("other", 2_500),
            "in_context rewrites the timeout context, keeps the limit"
        );
    }

    #[test]
    fn transience_matches_retry_policy() {
        // Environmental failures are worth a retry...
        assert!(SimError::panicked("a", "b").is_transient());
        assert!(SimError::io("a", "b").is_transient());
        assert!(SimError::timeout("a", 1).is_transient());
        assert!(SimError::Stalled {
            cycle: 0,
            snapshot: String::new(),
        }
        .is_transient());
        // ...deterministic ones would fail identically every time.
        assert!(!SimError::config("a", "b").is_transient());
        assert!(!SimError::invariant("a", "b").is_transient());
        assert!(!SimError::divergence(0, "a", "b", "c").is_transient());
    }

    #[test]
    fn divergence_display_carries_both_views() {
        let e = SimError::divergence(512, "read-classification", "miss", "hit (line 0x40)");
        assert_eq!(e.kind(), "divergence");
        let s = format!("{e}");
        assert!(s.contains("cycle 512"));
        assert!(s.contains("read-classification"));
        assert!(s.contains("miss"), "cycle model's view must be shown");
        assert!(s.contains("hit (line 0x40)"), "oracle's view must be shown");
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(SimError::io("cells/x.json", "ENOSPC"));
        assert!(e.to_string().contains("ENOSPC"));
    }
}
