//! Bounded FIFO queues used between pipeline stages.
//!
//! Memory controllers in the simulator have finite read/write queues; when a
//! queue is full the producer must stall, which is exactly how bandwidth
//! bloat turns into queuing delay in the paper. [`BoundedQueue`] makes the
//! capacity limit explicit and impossible to bypass.

use std::collections::VecDeque;

/// A FIFO queue with a hard capacity bound.
///
/// # Example
///
/// ```
/// use bear_sim::queue::BoundedQueue;
/// let mut q = BoundedQueue::new(2);
/// assert!(q.try_push(1).is_ok());
/// assert!(q.try_push(2).is_ok());
/// assert!(q.try_push(3).is_err()); // full: producer must stall
/// assert_eq!(q.pop(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
}

/// Error returned by [`BoundedQueue::try_push`] when the queue is full; the
/// rejected element is handed back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull<T>(pub T);

impl<T> std::fmt::Display for QueueFull<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "queue is full")
    }
}

impl<T: std::fmt::Debug> std::error::Error for QueueFull<T> {}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        BoundedQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Attempts to enqueue; returns the element back inside [`QueueFull`] if
    /// there is no room.
    pub fn try_push(&mut self, item: T) -> Result<(), QueueFull<T>> {
        if self.items.len() >= self.capacity {
            Err(QueueFull(item))
        } else {
            self.items.push_back(item);
            Ok(())
        }
    }

    /// Dequeues the oldest element.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Oldest element without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Number of queued elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Maximum number of elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Remaining free slots.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Iterates over queued elements from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Removes and returns the element at `index` (0 = oldest). Used by
    /// FR-FCFS schedulers that pick row-buffer hits out of order.
    pub fn remove(&mut self, index: usize) -> Option<T> {
        self.items.remove(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_enforced_and_element_returned() {
        let mut q = BoundedQueue::new(1);
        q.try_push("a").unwrap();
        assert!(q.is_full());
        let err = q.try_push("b").unwrap_err();
        assert_eq!(err.0, "b");
        assert_eq!(format!("{err}"), "queue is full");
    }

    #[test]
    fn occupancy_reporting() {
        let mut q = BoundedQueue::new(3);
        assert!(q.is_empty());
        assert_eq!(q.free_slots(), 3);
        q.try_push(1).unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.capacity(), 3);
        assert_eq!(q.free_slots(), 2);
        assert_eq!(q.front(), Some(&1));
    }

    #[test]
    fn out_of_order_removal() {
        let mut q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.remove(2), Some(2));
        assert_eq!(q.len(), 3);
        let rest: Vec<_> = q.iter().copied().collect();
        assert_eq!(rest, vec![0, 1, 3]);
        assert_eq!(q.remove(10), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        BoundedQueue::<u8>::new(0);
    }
}
