//! Runtime invariant checking.
//!
//! The simulator's headline metric — the Bloat Factor — is only as
//! trustworthy as the byte accounting behind it, so debug builds verify a
//! set of structural invariants *while the simulation runs* (byte
//! conservation, DCP-bit coherence, NTC mirroring; see the catalogue in
//! `DESIGN.md`). This module provides the generic machinery: a
//! [`Violation`] record, a [`CheckMode`] policy, and an [`InvariantSink`]
//! that either panics immediately (debug default), records violations for
//! later inspection (fault-injection harness), or stays out of the way
//! entirely (release default).
//!
//! # Example
//!
//! ```
//! use bear_sim::invariants::{CheckMode, InvariantSink};
//!
//! let mut sink = InvariantSink::new(CheckMode::Record);
//! sink.report("byte-conservation", 1024, || "expected 160, device 80".into());
//! assert_eq!(sink.violations().len(), 1);
//! assert_eq!(sink.violations()[0].name, "byte-conservation");
//! ```

use crate::error::SimError;

/// One observed invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable invariant name (e.g. `"byte-conservation"`).
    pub name: &'static str,
    /// Cycle at which the check fired.
    pub cycle: u64,
    /// What the checker observed (expected vs. actual).
    pub detail: String,
}

impl Violation {
    /// Converts to a typed error for report rows.
    pub fn to_error(&self) -> SimError {
        SimError::invariant(
            self.name,
            format!("at cycle {}: {}", self.cycle, self.detail),
        )
    }
}

/// Policy applied when an invariant check fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// Checks are skipped entirely (release-build default: zero cost).
    Off,
    /// First violation panics with a diagnostic (debug-build default, so
    /// `cargo test` exercises every invariant on every run).
    Panic,
    /// Violations are recorded and the run continues — used by the
    /// fault-injection harness, which must observe that an injected fault
    /// was *detected* rather than crash on it.
    Record,
}

impl CheckMode {
    /// The default for the current build profile: [`CheckMode::Panic`] in
    /// debug builds, [`CheckMode::Off`] in release builds. Enabling the
    /// `oracle-checks` cargo feature forces [`CheckMode::Panic`] regardless
    /// of profile, so release-mode fuzz/oracle campaigns keep the
    /// corruption detectors armed at full simulation speed.
    pub fn default_for_build() -> Self {
        if cfg!(debug_assertions) || cfg!(feature = "oracle-checks") {
            CheckMode::Panic
        } else {
            CheckMode::Off
        }
    }
}

/// Collects invariant violations according to a [`CheckMode`].
#[derive(Debug, Clone)]
pub struct InvariantSink {
    mode: CheckMode,
    violations: Vec<Violation>,
}

impl InvariantSink {
    /// Creates a sink with the given policy.
    pub fn new(mode: CheckMode) -> Self {
        InvariantSink {
            mode,
            violations: Vec::new(),
        }
    }

    /// The active policy.
    pub fn mode(&self) -> CheckMode {
        self.mode
    }

    /// Whether checks should run at all. Callers gate potentially expensive
    /// scans on this so [`CheckMode::Off`] costs nothing.
    pub fn enabled(&self) -> bool {
        self.mode != CheckMode::Off
    }

    /// Reports a violation. The `detail` closure is only evaluated when the
    /// sink is enabled, so building the diagnostic string is free in
    /// [`CheckMode::Off`].
    ///
    /// # Panics
    ///
    /// Panics with the diagnostic in [`CheckMode::Panic`] mode.
    pub fn report(&mut self, name: &'static str, cycle: u64, detail: impl FnOnce() -> String) {
        match self.mode {
            CheckMode::Off => {}
            CheckMode::Panic => {
                let detail = detail();
                panic!("invariant '{name}' violated at cycle {cycle}: {detail}");
            }
            CheckMode::Record => {
                self.violations.push(Violation {
                    name,
                    cycle,
                    detail: detail(),
                });
            }
        }
    }

    /// Violations recorded so far (always empty outside
    /// [`CheckMode::Record`]).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Drains and returns the recorded violations.
    pub fn take(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }
}

impl Default for InvariantSink {
    fn default() -> Self {
        InvariantSink::new(CheckMode::default_for_build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_mode_skips_detail_closure() {
        let mut sink = InvariantSink::new(CheckMode::Off);
        assert!(!sink.enabled());
        sink.report("x", 0, || panic!("detail must not be evaluated"));
        assert!(sink.violations().is_empty());
    }

    #[test]
    #[should_panic(expected = "invariant 'byte-conservation' violated at cycle 42")]
    fn panic_mode_panics_with_name_and_cycle() {
        let mut sink = InvariantSink::new(CheckMode::Panic);
        sink.report("byte-conservation", 42, || "mismatch".into());
    }

    #[test]
    fn record_mode_accumulates_and_drains() {
        let mut sink = InvariantSink::new(CheckMode::Record);
        assert!(sink.enabled());
        sink.report("a", 1, || "one".into());
        sink.report("b", 2, || "two".into());
        assert_eq!(sink.violations().len(), 2);
        let taken = sink.take();
        assert_eq!(taken[1].name, "b");
        assert!(sink.violations().is_empty());
        let err = taken[0].to_error();
        assert_eq!(err.kind(), "invariant");
        assert!(format!("{err}").contains("cycle 1"));
    }

    #[test]
    fn build_default_matches_profile() {
        let mode = CheckMode::default_for_build();
        if cfg!(debug_assertions) || cfg!(feature = "oracle-checks") {
            assert_eq!(mode, CheckMode::Panic);
        } else {
            assert_eq!(mode, CheckMode::Off);
        }
    }
}
