//! Statistics primitives for the simulator.
//!
//! Every architectural component keeps its own statistics built from the
//! types here: plain [`Counter`]s, [`RunningMean`]s for latency averages, and
//! bucketed [`Histogram`]s for latency distributions. The DRAM-cache byte
//! accounting that underlies the paper's *Bloat Factor* metric is built on
//! top of these in `bear-core`.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use bear_sim::stats::Counter;
/// let mut c = Counter::default();
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Resets to zero (used at the warmup/measurement boundary).
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Incremental mean of a stream of samples.
///
/// # Example
///
/// ```
/// use bear_sim::stats::RunningMean;
/// let mut m = RunningMean::new();
/// m.record(10.0);
/// m.record(20.0);
/// assert_eq!(m.mean(), 15.0);
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    sum: f64,
    count: u64,
}

impl RunningMean {
    /// Creates an empty mean.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, sample: f64) {
        self.sum += sample;
        self.count += 1;
    }

    /// The mean of all samples, or `0.0` if none were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Total of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        *self = Self::default()
    }

    /// Merges another mean into this one.
    pub fn merge(&mut self, other: &RunningMean) {
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// A histogram with geometrically growing bucket bounds, suitable for
/// latency distributions spanning a few cycles to tens of thousands.
///
/// Bucket `i` covers `[bound(i-1), bound(i))` where bounds double from
/// `first_bound`. The final bucket is open-ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    first_bound: u64,
    buckets: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram whose first bucket covers `[0, first_bound)` with
    /// `num_buckets` doubling buckets.
    ///
    /// # Panics
    ///
    /// Panics if `first_bound` is zero or `num_buckets` < 2.
    pub fn new(first_bound: u64, num_buckets: usize) -> Self {
        assert!(first_bound > 0, "first_bound must be non-zero");
        assert!(num_buckets >= 2, "need at least two buckets");
        Histogram {
            first_bound,
            buckets: vec![0; num_buckets],
            total: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let mut bound = self.first_bound;
        let mut idx = 0;
        while idx + 1 < self.buckets.len() && value >= bound {
            bound = bound.saturating_mul(2);
            idx += 1;
        }
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Upper bound (exclusive) of bucket `i`; the last bucket returns
    /// `u64::MAX`.
    pub fn bucket_bound(&self, i: usize) -> u64 {
        if i + 1 >= self.buckets.len() {
            u64::MAX
        } else {
            self.first_bound << i
        }
    }

    /// Approximate p-th percentile (`0.0..=1.0`) using bucket upper bounds.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return self.bucket_bound(i);
            }
        }
        u64::MAX
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.total = 0;
    }
}

impl Default for Histogram {
    /// A latency-oriented histogram: first bucket `[0, 32)`, 16 buckets.
    fn default() -> Self {
        Histogram::new(32, 16)
    }
}

/// Geometric mean of a set of ratios; the paper reports all averages as
/// geometric means (Section 3.3).
///
/// Returns `1.0` for an empty slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(5);
        assert_eq!(c.get(), 6);
        c.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(format!("{}", Counter::new()), "0");
    }

    #[test]
    fn running_mean_basics() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), 0.0);
        m.record(2.0);
        m.record(4.0);
        assert_eq!(m.mean(), 3.0);
        assert_eq!(m.sum(), 6.0);
        assert_eq!(m.count(), 2);
        m.reset();
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn running_mean_merge() {
        let mut a = RunningMean::new();
        a.record(1.0);
        let mut b = RunningMean::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.mean(), 2.0);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(4, 4); // [0,4) [4,8) [8,16) [16,inf)
        h.record(0);
        h.record(3);
        h.record(4);
        h.record(9);
        h.record(1000);
        assert_eq!(h.buckets(), &[2, 1, 1, 1]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.bucket_bound(0), 4);
        assert_eq!(h.bucket_bound(1), 8);
        assert_eq!(h.bucket_bound(3), u64::MAX);
    }

    #[test]
    fn histogram_percentile() {
        let mut h = Histogram::new(4, 4);
        for _ in 0..99 {
            h.record(1);
        }
        h.record(100_000);
        assert_eq!(h.percentile(0.5), 4);
        assert_eq!(h.percentile(1.0), u64::MAX);
        assert_eq!(Histogram::default().percentile(0.5), 0);
    }

    #[test]
    fn histogram_reset() {
        let mut h = Histogram::default();
        h.record(7);
        h.reset();
        assert_eq!(h.total(), 0);
    }

    #[test]
    #[should_panic(expected = "first_bound")]
    fn histogram_zero_bound_panics() {
        Histogram::new(0, 4);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geometric_mean(&[]), 1.0);
        let g = geometric_mean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        let g3 = geometric_mean(&[2.0, 2.0, 2.0]);
        assert!((g3 - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geometric_mean(&[1.0, 0.0]);
    }
}
