//! Deterministic pseudo-random number generation.
//!
//! Simulation results must be exactly reproducible from a seed, so the
//! simulator does not use any global or OS-seeded randomness. [`SimRng`] is a
//! small, fast xoshiro256**-style generator seeded via SplitMix64, which is
//! statistically strong enough for workload generation and probabilistic
//! bypass decisions while being dependency-free.

/// A deterministic pseudo-random number generator.
///
/// # Example
///
/// ```
/// use bear_sim::rng::SimRng;
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Different seeds yield statistically independent streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next uniformly distributed 64-bit value (xoshiro256**).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift reduction; the tiny modulo bias is
    /// irrelevant for simulation purposes.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Samples a geometric-like run length with mean approximately `mean`
    /// (at least 1). Used for sequential-run modeling in workloads.
    pub fn geometric(&mut self, mean: f64) -> u64 {
        if mean <= 1.0 {
            return 1;
        }
        let p = 1.0 / mean;
        let mut n = 1;
        // Cap to keep pathological draws bounded.
        while n < (mean as u64).saturating_mul(16).max(16) && !self.chance(p) {
            n += 1;
        }
        n
    }

    /// Derives an independent child generator (for per-core streams).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }
}

impl Default for SimRng {
    fn default() -> Self {
        SimRng::new(0xBEA2_2015)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(9);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut r = SimRng::new(5);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_frequency_close_to_p() {
        let mut r = SimRng::new(77);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.9)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.9).abs() < 0.01, "freq was {freq}");
    }

    #[test]
    fn geometric_mean_roughly_matches() {
        let mut r = SimRng::new(3);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| r.geometric(4.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.5, "mean was {mean}");
    }

    #[test]
    fn geometric_small_mean_is_one() {
        let mut r = SimRng::new(3);
        assert_eq!(r.geometric(0.5), 1);
        assert_eq!(r.geometric(1.0), 1);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SimRng::new(10);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn next_below_zero_panics() {
        SimRng::new(1).next_below(0);
    }
}
