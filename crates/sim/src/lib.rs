#![warn(missing_docs)]

//! Simulation substrate for the BEAR DRAM-cache reproduction.
//!
//! This crate provides the low-level building blocks shared by every other
//! crate in the workspace:
//!
//! - [`time`]: the global cycle clock ([`time::Cycle`]) and derived-clock
//!   dividers for buses running slower than the CPU clock.
//! - [`stats`]: counters, running means, histograms, and byte accounting.
//! - [`rng`]: a small deterministic pseudo-random number generator so that
//!   every simulation is exactly reproducible from its seed.
//! - [`queue`]: bounded FIFO queues used between pipeline stages.
//! - [`check`]: a dependency-free property-testing engine (generation via
//!   [`rng::SimRng`], shrink-by-bisection) used by every crate's
//!   `tests/proptests.rs`.
//!
//! # Example
//!
//! ```
//! use bear_sim::time::Cycle;
//! use bear_sim::rng::SimRng;
//!
//! let mut rng = SimRng::new(42);
//! let t = Cycle(100) + 36;
//! assert_eq!(t, Cycle(136));
//! let p: f64 = rng.next_f64();
//! assert!((0.0..1.0).contains(&p));
//! ```

pub mod check;
pub mod error;
pub mod faultinject;
pub mod invariants;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use error::{RunOutcome, SimError};
pub use queue::BoundedQueue;
pub use rng::SimRng;
pub use stats::{Counter, Histogram, RunningMean};
pub use time::{Cycle, DerivedClock};
