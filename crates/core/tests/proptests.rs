//! Property tests for the BEAR core structures, driven by the in-tree
//! [`bear_sim::check`] engine.

use bear_core::bab::{BypassPolicy, SetGroup};
use bear_core::contents::{AssocStore, DirectStore};
use bear_core::ntc::{NeighboringTagCache, NtcAnswer};
use bear_sim::check::{check, Source};
use bear_sim::{prop_assert, prop_assert_eq};
use std::collections::HashMap;

/// DirectStore agrees with a HashMap model of (set → (tag, dirty)).
#[test]
fn direct_store_matches_model() {
    check(256, |src: &mut Source| {
        let ops = src.vec_with(1..300, |s| (s.u64_in(0..512), s.u8_in(0..3)));
        let sets = 32;
        let mut store = DirectStore::new(sets);
        let mut model: HashMap<u64, (u64, bool)> = HashMap::new();
        for &(line, op) in &ops {
            let (set, tag) = store.decompose(line);
            match op {
                0 => {
                    let victim = store.install(line, false);
                    let prev = model.insert(set, (tag, false));
                    let expect = match prev {
                        Some((ptag, pdirty)) if ptag != tag => {
                            Some((store.recompose(set, ptag), pdirty))
                        }
                        _ => None,
                    };
                    prop_assert_eq!(victim, expect);
                }
                1 => {
                    let marked = store.mark_dirty(line);
                    let expect = matches!(model.get(&set), Some((t, _)) if *t == tag);
                    prop_assert_eq!(marked, expect);
                    if marked {
                        model.insert(set, (tag, true));
                    }
                }
                _ => {
                    let present = store.contains(line);
                    let expect = matches!(model.get(&set), Some((t, _)) if *t == tag);
                    prop_assert_eq!(present, expect);
                }
            }
        }
        Ok(())
    });
}

/// AssocStore never exceeds its associativity and never loses a line
/// without reporting a victim.
#[test]
fn assoc_store_conservation() {
    check(256, |src: &mut Source| {
        let lines = src.vec_with(1..200, |s| s.u64_in(0..256));
        let mut store = AssocStore::new(8, 4);
        let mut resident: Vec<u64> = Vec::new();
        for &line in &lines {
            if store.contains(line) {
                continue;
            }
            let victim = store.install(line, false);
            if let Some(v) = victim {
                let pos = resident.iter().position(|&l| l == v.line);
                prop_assert!(pos.is_some(), "victim {} unknown", v.line);
                resident.remove(pos.unwrap());
            }
            resident.push(line);
            prop_assert!(resident.len() <= 8 * 4);
            for &l in &resident {
                prop_assert!(store.contains(l), "line {} lost", l);
            }
        }
        Ok(())
    });
}

/// NTC answers are always consistent with the last recorded state.
#[test]
fn ntc_consistent_with_records() {
    check(256, |src: &mut Source| {
        let records = src.vec_with(1..100, |s| {
            (s.u64_in(0..64), s.option_of(|s| s.u64_in(0..8)), s.bool())
        });
        let query_set = src.u64_in(0..64);
        let query_tag = src.u64_in(0..8);
        let mut ntc = NeighboringTagCache::new(1, 128); // roomy: no replacement
        let mut model: HashMap<u64, (Option<u64>, bool)> = HashMap::new();
        for &(set, tag, dirty) in &records {
            ntc.record(0, set, tag, dirty);
            // Recording an empty set forces clean state (an invalid entry
            // never needs a correctness probe).
            model.insert(set, (tag, dirty && tag.is_some()));
        }
        let answer = ntc.lookup(0, query_set, query_tag);
        let expect = match model.get(&query_set) {
            None => NtcAnswer::Unknown,
            Some((Some(t), _)) if *t == query_tag => NtcAnswer::Present,
            Some((_, true)) => NtcAnswer::AbsentDirty,
            Some((_, false)) => NtcAnswer::AbsentClean,
        };
        prop_assert_eq!(answer, expect);
        Ok(())
    });
}

/// BAB group assignment is stable and monitors are rare.
#[test]
fn bab_groups_stable() {
    check(256, |src: &mut Source| {
        let set = src.u64_in(0..(1 << 24));
        let p = BypassPolicy::paper_bab();
        prop_assert_eq!(p.group(set), p.group(set));
        // Baseline monitor sets never bypass.
        let mut p2 = BypassPolicy::paper_bab();
        if p.group(set) == SetGroup::BaselineMonitor {
            for _ in 0..8 {
                prop_assert!(!p2.should_bypass(set));
            }
        }
        Ok(())
    });
}
