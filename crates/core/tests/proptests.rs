//! Property tests for the BEAR core structures.

use bear_core::bab::{BypassPolicy, SetGroup};
use bear_core::contents::{AssocStore, DirectStore};
use bear_core::ntc::{NeighboringTagCache, NtcAnswer};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// DirectStore agrees with a HashMap model of (set → (tag, dirty)).
    #[test]
    fn direct_store_matches_model(
        ops in prop::collection::vec((0u64..512, 0u8..3), 1..300),
    ) {
        let sets = 32;
        let mut store = DirectStore::new(sets);
        let mut model: HashMap<u64, (u64, bool)> = HashMap::new();
        for &(line, op) in &ops {
            let (set, tag) = store.decompose(line);
            match op {
                0 => {
                    let victim = store.install(line, false);
                    let prev = model.insert(set, (tag, false));
                    let expect = match prev {
                        Some((ptag, pdirty)) if ptag != tag => {
                            Some((store.recompose(set, ptag), pdirty))
                        }
                        _ => None,
                    };
                    prop_assert_eq!(victim, expect);
                }
                1 => {
                    let marked = store.mark_dirty(line);
                    let expect = matches!(model.get(&set), Some((t, _)) if *t == tag);
                    prop_assert_eq!(marked, expect);
                    if marked {
                        model.insert(set, (tag, true));
                    }
                }
                _ => {
                    let present = store.contains(line);
                    let expect = matches!(model.get(&set), Some((t, _)) if *t == tag);
                    prop_assert_eq!(present, expect);
                }
            }
        }
    }

    /// AssocStore never exceeds its associativity and never loses a line
    /// without reporting a victim.
    #[test]
    fn assoc_store_conservation(lines in prop::collection::vec(0u64..256, 1..200)) {
        let mut store = AssocStore::new(8, 4);
        let mut resident: Vec<u64> = Vec::new();
        for &line in &lines {
            if store.contains(line) {
                continue;
            }
            let victim = store.install(line, false);
            if let Some(v) = victim {
                let pos = resident.iter().position(|&l| l == v.line);
                prop_assert!(pos.is_some(), "victim {} unknown", v.line);
                resident.remove(pos.unwrap());
            }
            resident.push(line);
            prop_assert!(resident.len() <= 8 * 4);
            for &l in &resident {
                prop_assert!(store.contains(l), "line {} lost", l);
            }
        }
    }

    /// NTC answers are always consistent with the last recorded state.
    #[test]
    fn ntc_consistent_with_records(
        records in prop::collection::vec((0u64..64, prop::option::of(0u64..8), any::<bool>()), 1..100),
        query_set in 0u64..64,
        query_tag in 0u64..8,
    ) {
        let mut ntc = NeighboringTagCache::new(1, 128); // roomy: no replacement
        let mut model: HashMap<u64, (Option<u64>, bool)> = HashMap::new();
        for &(set, tag, dirty) in &records {
            ntc.record(0, set, tag, dirty);
            // Recording an empty set forces clean state (an invalid entry
            // never needs a correctness probe).
            model.insert(set, (tag, dirty && tag.is_some()));
        }
        let answer = ntc.lookup(0, query_set, query_tag);
        let expect = match model.get(&query_set) {
            None => NtcAnswer::Unknown,
            Some((Some(t), _)) if *t == query_tag => NtcAnswer::Present,
            Some((_, true)) => NtcAnswer::AbsentDirty,
            Some((_, false)) => NtcAnswer::AbsentClean,
        };
        prop_assert_eq!(answer, expect);
    }

    /// BAB group assignment is stable and monitors are rare.
    #[test]
    fn bab_groups_stable(set in 0u64..(1 << 24)) {
        let p = BypassPolicy::paper_bab();
        prop_assert_eq!(p.group(set), p.group(set));
        // Baseline monitor sets never bypass.
        let mut p2 = BypassPolicy::paper_bab();
        if p.group(set) == SetGroup::BaselineMonitor {
            for _ in 0..8 {
                prop_assert!(!p2.should_bypass(set));
            }
        }
    }
}
