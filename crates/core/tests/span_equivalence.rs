//! Equivalence guards for the channel-sharded span fast path.
//!
//! The span advance claims to be *exact*: jumping the system clock across
//! a window in which only the DRAM channels are busy, ticking those
//! channels independently (possibly on worker threads), must land in
//! precisely the state per-cycle polling reaches. These tests pin that
//! claim end-to-end — full runs compared field-for-field between the
//! polled loop, the serial event loop, and every supported thread count.

use bear_core::config::{DesignKind, SystemConfig};
use bear_core::system::System;

const WARMUP: u64 = 20_000;
const MEASURE: u64 = 60_000;

fn run(cfg: &SystemConfig, event_driven: bool, threads: usize, bench: &str) -> String {
    let mut sys = System::build_rate(cfg, bench);
    sys.set_event_driven(event_driven);
    sys.set_sim_threads(threads);
    let stats = sys.run(WARMUP, MEASURE);
    format!("{stats:?}")
}

#[test]
fn span_advance_matches_polled_loop_for_every_design() {
    for design in [
        DesignKind::Alloy,
        DesignKind::NoCache,
        DesignKind::LohHill,
        DesignKind::TagsInSram,
        DesignKind::SectorCache,
    ] {
        let cfg = SystemConfig::paper_baseline(design);
        let polled = run(&cfg, false, 1, "mcf");
        let spanned = run(&cfg, true, 1, "mcf");
        assert_eq!(
            polled, spanned,
            "{design:?}: span loop diverged from polling"
        );
    }
}

#[test]
fn thread_count_never_changes_results() {
    let cfg = SystemConfig::paper_baseline(DesignKind::Alloy);
    let serial = run(&cfg, true, 1, "mcf");
    for threads in [2, 4, 7] {
        let threaded = run(&cfg, true, threads, "mcf");
        assert_eq!(serial, threaded, "threads={threads} diverged from serial");
    }
}

#[test]
fn salp_subarrays_preserve_span_equivalence() {
    // Multi-subarray banks (SALP) give every bank per-subarray open-row
    // and timing state; the busy hints and span horizons must stay exact.
    // verify.sh reruns this file under BEAR_GATE_DIAG=1, which re-executes
    // every elided tick and asserts it was a no-op — with these knobs
    // armed that audit covers the subarray-aware gating too.
    let mut cfg = SystemConfig::paper_baseline(DesignKind::Alloy);
    cfg.cache_dram.topology.subarrays_per_bank = 4;
    cfg.mem_dram.topology.subarrays_per_bank = 2;
    let polled = run(&cfg, false, 1, "mcf");
    for threads in [1, 4] {
        let spanned = run(&cfg, true, threads, "mcf");
        assert_eq!(
            polled, spanned,
            "SALP (threads={threads}): span loop diverged from polling"
        );
    }
}

#[test]
fn spans_actually_engage_on_memory_bound_work() {
    let cfg = SystemConfig::paper_baseline(DesignKind::Alloy);
    let mut sys = System::build_rate(&cfg, "mcf");
    sys.run(WARMUP, MEASURE);
    assert!(
        sys.span_cycles() > 0,
        "span fast path never engaged on a memory-bound benchmark"
    );
}
