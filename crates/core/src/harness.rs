//! Device harness: plumbing shared by every L4 controller.
//!
//! Each controller owns two DRAM devices (the stacked cache and commodity
//! memory) plus retry queues that apply backpressure when a device channel
//! queue is full — the mechanism through which bandwidth bloat becomes
//! queuing delay. Requests carry `(transaction id, leg)` so completions can
//! be routed back to the owning state machine.

use crate::ledger::AttributionLedger;
use bear_dram::config::DramConfig;
use bear_dram::device::{Completion, DramDevice};
use bear_dram::mapping::{AddressMapper, Interleave};
use bear_dram::request::{DramLocation, DramRequest, TrafficClass};
use bear_dram::shard::{ShardPool, SpanTask};
use bear_sim::invariants::InvariantSink;
use bear_sim::time::Cycle;
use std::collections::VecDeque;

/// Which step of a transaction a DRAM request implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Leg {
    /// Tag/data probe read on the cache device.
    CacheProbe = 0,
    /// Demand line read on the memory device.
    MemRead = 1,
    /// Posted write (fill/update/victim); completions are ignored.
    PostedWrite = 2,
    /// Data read on the cache device whose completion gates the
    /// transaction (LH data stage, TIS/SC hit reads, victim reads).
    CacheData = 3,
}

impl Leg {
    fn from_bits(b: u64) -> Leg {
        match b {
            0 => Leg::CacheProbe,
            1 => Leg::MemRead,
            2 => Leg::PostedWrite,
            _ => Leg::CacheData,
        }
    }
}

/// A routed completion: which transaction, which leg, when.
#[derive(Debug, Clone, Copy)]
pub struct RoutedCompletion {
    /// Transaction identifier supplied at issue time.
    pub txn: u64,
    /// Which leg finished.
    pub leg: Leg,
    /// Finish time of the last data beat.
    pub finish: Cycle,
}

/// Both DRAM devices plus issue/retry queues and completion routing.
#[derive(Debug)]
pub struct DeviceHarness {
    /// The stacked-DRAM cache device.
    pub cache: DramDevice,
    /// The commodity main-memory device.
    pub mem: DramDevice,
    mem_mapper: AddressMapper,
    cache_retry: VecDeque<DramRequest>,
    mem_retry: VecDeque<DramRequest>,
    scratch: Vec<Completion>,
    /// Bytes submitted to the cache device since the last stats reset —
    /// the "expected" side of the byte-conservation invariant.
    expected_cache_bytes: u64,
    /// Per-class byte attribution for both devices, charged at submit
    /// time — the "expected" side of the attribution-conservation
    /// invariant and the source feeding window samples and metrics.
    ledger: AttributionLedger,
    /// When set, [`DeviceHarness::tick`] elides channels whose memoized
    /// busy hint proves this cycle a no-op (see
    /// [`DramDevice::tick_gated`]). Both settings produce bit-identical
    /// device state; the flag only trades per-tick walk cost for hint
    /// reads, so the event-driven driver arms it and the per-cycle
    /// polling baseline leaves it off.
    event_gated: bool,
}

impl DeviceHarness {
    /// Builds the harness from the two device configurations.
    pub fn new(cache_cfg: DramConfig, mem_cfg: DramConfig) -> Self {
        DeviceHarness {
            cache: DramDevice::new(cache_cfg),
            mem: DramDevice::new(mem_cfg),
            mem_mapper: AddressMapper::new(mem_cfg.topology, Interleave::ChannelFirst),
            cache_retry: VecDeque::new(),
            mem_retry: VecDeque::new(),
            scratch: Vec::with_capacity(16),
            expected_cache_bytes: 0,
            ledger: AttributionLedger::new(),
            event_gated: false,
        }
    }

    /// Arms (or disarms) per-channel tick elision (see
    /// [`DeviceHarness::tick`]'s `event_gated` field).
    pub fn set_event_gating(&mut self, on: bool) {
        self.event_gated = on;
    }

    fn encode_id(txn: u64, leg: Leg) -> u64 {
        (txn << 2) | leg as u64
    }

    /// Queues a read on the cache device at `location`.
    pub fn cache_read(
        &mut self,
        txn: u64,
        leg: Leg,
        location: DramLocation,
        beats: u64,
        class: TrafficClass,
        now: Cycle,
    ) {
        debug_assert!(matches!(leg, Leg::CacheProbe | Leg::CacheData));
        let bytes = beats * self.cache.config().topology.beat_bytes;
        self.expected_cache_bytes += bytes;
        self.ledger.charge(class, bytes);
        self.cache_retry.push_back(DramRequest::read(
            Self::encode_id(txn, leg),
            location,
            beats,
            class,
            now,
        ));
    }

    /// Queues a posted write on the cache device.
    pub fn cache_write(
        &mut self,
        txn: u64,
        location: DramLocation,
        beats: u64,
        class: TrafficClass,
        now: Cycle,
    ) {
        let bytes = beats * self.cache.config().topology.beat_bytes;
        self.expected_cache_bytes += bytes;
        self.ledger.charge(class, bytes);
        self.cache_retry.push_back(DramRequest::write(
            Self::encode_id(txn, Leg::PostedWrite),
            location,
            beats,
            class,
            now,
        ));
    }

    /// Queues a demand line read on the memory device (address-mapped).
    pub fn mem_read(&mut self, txn: u64, line_addr: u64, class: TrafficClass, now: Cycle) {
        let loc = self.mem_mapper.map(line_addr * 64);
        let beats = self.mem.config().topology.beats_for(64);
        self.ledger
            .charge(class, beats * self.mem.config().topology.beat_bytes);
        self.mem_retry.push_back(DramRequest::read(
            Self::encode_id(txn, Leg::MemRead),
            loc,
            beats,
            class,
            now,
        ));
    }

    /// Queues a posted 64 B write on the memory device.
    pub fn mem_write(&mut self, txn: u64, line_addr: u64, class: TrafficClass, now: Cycle) {
        let loc = self.mem_mapper.map(line_addr * 64);
        let beats = self.mem.config().topology.beats_for(64);
        self.ledger
            .charge(class, beats * self.mem.config().topology.beat_bytes);
        self.mem_retry.push_back(DramRequest::write(
            Self::encode_id(txn, Leg::PostedWrite),
            loc,
            beats,
            class,
            now,
        ));
    }

    /// Drains retry queues into the devices (respecting backpressure),
    /// advances both devices one cycle, and routes completions.
    ///
    /// Posted-write completions are filtered out; only gating legs are
    /// returned.
    pub fn tick(&mut self, now: Cycle, out: &mut Vec<RoutedCompletion>) {
        // Issue as many queued requests as the channels will accept.
        Self::drain(&mut self.cache_retry, &mut self.cache);
        Self::drain(&mut self.mem_retry, &mut self.mem);

        self.scratch.clear();
        if self.event_gated {
            self.cache.tick_gated(now, &mut self.scratch);
            self.mem.tick_gated(now, &mut self.scratch);
        } else {
            self.cache.tick(now, &mut self.scratch);
            self.mem.tick(now, &mut self.scratch);
        }
        for c in &self.scratch {
            let leg = Leg::from_bits(c.request.id & 3);
            if leg == Leg::PostedWrite {
                continue;
            }
            out.push(RoutedCompletion {
                txn: c.request.id >> 2,
                leg,
                finish: c.finish,
            });
        }
    }

    fn drain(queue: &mut VecDeque<DramRequest>, device: &mut DramDevice) {
        // In-order per queue; head-of-line blocking is intentional (it is
        // the backpressure signal). A request the device rejects (full or
        // out-of-range channel) stays at the head; a permanently rejected
        // head therefore stalls the queue and surfaces as a watchdog
        // `Stalled` outcome rather than a panic.
        while let Some(req) = queue.pop_front() {
            if let Err(req) = device.try_enqueue(req) {
                queue.push_front(req);
                break;
            }
        }
    }

    /// Outstanding work anywhere in the harness.
    pub fn pending(&self) -> usize {
        self.cache.pending() + self.mem.pending() + self.cache_retry.len() + self.mem_retry.len()
    }

    /// Earliest cycle at which ticking the harness can change state: ticks
    /// strictly before it are guaranteed no-ops. Retry queues drain at tick
    /// start, so any backlog makes the harness busy immediately; otherwise
    /// the devices' own hints govern. [`Cycle::NEVER`] when fully drained.
    pub fn next_busy_cycle(&self, now: Cycle) -> Cycle {
        if !self.cache_retry.is_empty() || !self.mem_retry.is_empty() {
            return now;
        }
        let cache = self.cache.next_busy_cycle(now);
        if cache <= now {
            return cache;
        }
        cache.min(self.mem.next_busy_cycle(now))
    }

    /// A cycle strictly before which no device can produce a completion,
    /// provided nothing is submitted in the meantime (min over both
    /// devices' [`DramDevice::completion_horizon`]). Retry backlog makes
    /// the horizon `now` — a drained request could issue and pipeline
    /// behind in-flight work in ways only real ticking resolves.
    pub fn completion_horizon(&self, now: Cycle) -> Cycle {
        if !self.cache_retry.is_empty() || !self.mem_retry.is_empty() {
            return now;
        }
        self.cache
            .completion_horizon(now)
            .min(self.mem.completion_horizon(now))
    }

    /// Advances every channel of both devices from `now` to `horizon` on
    /// `pool`, replaying each channel's busy ticks exactly as per-cycle
    /// driving would (see [`Channel::advance_to`]). The caller must have
    /// established `horizon <= self.completion_horizon(now)` and must not
    /// submit requests during the span; under that contract no completion
    /// occurs, so the merged state is bit-identical across thread counts.
    ///
    /// [`Channel::advance_to`]: bear_dram::channel::Channel::advance_to
    pub fn advance_span(&mut self, now: Cycle, horizon: Cycle, pool: &mut ShardPool) {
        debug_assert!(
            self.cache_retry.is_empty() && self.mem_retry.is_empty(),
            "span advance with retry backlog"
        );
        // Spans shorter than this run serially even on a multi-thread
        // pool: waking workers costs more than ticking a few cycles.
        const PARALLEL_SPAN_MIN: u64 = 24;
        let mut tasks: Vec<SpanTask<'_>> = self
            .cache
            .channels_mut()
            .iter_mut()
            .chain(self.mem.channels_mut())
            .filter(|ch| ch.next_busy_cycle(now) < horizon)
            .map(|channel| SpanTask {
                channel,
                now,
                horizon,
            })
            .collect();
        if horizon - now < PARALLEL_SPAN_MIN {
            let mut scratch = Vec::new();
            for t in &mut tasks {
                t.channel.advance_to(t.now, t.horizon, &mut scratch);
                debug_assert!(scratch.is_empty(), "completion retired inside a span");
            }
        } else {
            pool.run(&mut tasks);
        }
    }

    /// Requests waiting in retry queues (backpressure depth).
    pub fn retry_depth(&self) -> usize {
        self.cache_retry.len() + self.mem_retry.len()
    }

    /// Bytes submitted to the cache device since the last stats reset.
    pub fn expected_cache_bytes(&self) -> u64 {
        self.expected_cache_bytes
    }

    /// Bytes sitting in the cache-device retry queue.
    pub fn cache_retry_bytes(&self) -> u64 {
        let beat_bytes = self.cache.config().topology.beat_bytes;
        self.cache_retry.iter().map(|r| r.beats * beat_bytes).sum()
    }

    /// The bandwidth-attribution ledger (per-class bytes, both devices).
    pub fn ledger(&self) -> &AttributionLedger {
        &self.ledger
    }

    /// Per-class bytes held in retry queues (both devices), not yet
    /// visible to either device's meters or channel queues.
    fn retry_bytes_by_class(&self) -> [u64; TrafficClass::COUNT] {
        let mut out = [0u64; TrafficClass::COUNT];
        let cache_beat = self.cache.config().topology.beat_bytes;
        for r in &self.cache_retry {
            out[(r.class.0 as usize).min(TrafficClass::COUNT - 1)] += r.beats * cache_beat;
        }
        let mem_beat = self.mem.config().topology.beat_bytes;
        for r in &self.mem_retry {
            out[(r.class.0 as usize).min(TrafficClass::COUNT - 1)] += r.beats * mem_beat;
        }
        out
    }

    /// Per-class bytes observable outside the ledger: device meters
    /// (counted at CAS issue) plus channel queues plus retry queues,
    /// summed over both devices. The attribution-conservation invariant
    /// compares this against the ledger class by class.
    fn observed_bytes_by_class(&self) -> [u64; TrafficClass::COUNT] {
        let mut out = self.retry_bytes_by_class();
        let cache_queued = self.cache.queued_bytes_by_class();
        let mem_queued = self.mem.queued_bytes_by_class();
        for (idx, slot) in out.iter_mut().enumerate() {
            let class = TrafficClass(idx as u8);
            *slot += self.cache.bytes_in_class(class)
                + self.mem.bytes_in_class(class)
                + cache_queued[idx]
                + mem_queued[idx];
        }
        out
    }

    /// Resets both devices' statistics and re-seeds the expected-bytes
    /// counter so the byte-conservation invariant stays balanced across a
    /// reset: transferred bytes restart at zero, so only bytes still
    /// queued (channel queues + retry queue) remain expected. Requests
    /// already issued to a bank were accounted at CAS time and drop out of
    /// both sides.
    pub fn reset_device_stats(&mut self) {
        self.cache.reset_stats();
        self.mem.reset_stats();
        self.expected_cache_bytes = self.cache.queued_bytes() + self.cache_retry_bytes();
        // Reseed the ledger the same way, class by class: transferred
        // bytes restart at zero, so only bytes still queued (channel
        // queues + retry queues, both devices) remain attributed.
        let mut seed = self.retry_bytes_by_class();
        let cache_queued = self.cache.queued_bytes_by_class();
        let mem_queued = self.mem.queued_bytes_by_class();
        for (idx, slot) in seed.iter_mut().enumerate() {
            *slot += cache_queued[idx] + mem_queued[idx];
        }
        self.ledger.reseed(seed);
    }

    /// Perturbs the expected-bytes counter (fault injection only).
    pub fn corrupt_expected_bytes(&mut self) {
        self.expected_cache_bytes ^= 0x40;
    }

    /// Perturbs the attribution ledger (fault injection only).
    pub fn corrupt_ledger(&mut self) {
        self.ledger.corrupt();
    }

    /// Byte-conservation invariant: every byte submitted on the cache bus
    /// is either transferred (device statistics), queued in a channel, or
    /// waiting in the retry queue. Holds at tick boundaries for every
    /// design because all cache-device traffic funnels through
    /// [`DeviceHarness::cache_read`] / [`DeviceHarness::cache_write`].
    pub fn check_byte_conservation(&self, now: Cycle, sink: &mut InvariantSink) {
        if !sink.enabled() {
            return;
        }
        let transferred = self.cache.total_bytes();
        let queued = self.cache.queued_bytes();
        let retry = self.cache_retry_bytes();
        let observed = transferred + queued + retry;
        let expected = self.expected_cache_bytes;
        if observed != expected {
            sink.report("byte-conservation", now.0, || {
                format!(
                    "expected {expected} cache-bus bytes but observed {observed} \
                     (transferred {transferred} + queued {queued} + retry {retry})"
                )
            });
        }
    }

    /// Attribution-conservation invariant: the per-class refinement of
    /// [`DeviceHarness::check_byte_conservation`], over *both* devices.
    /// Every byte the ledger attributed to a class must be transferred,
    /// queued in a channel, or waiting in a retry queue under that same
    /// class — so per-source attributed bytes always sum to total bytes
    /// moved, with nothing double-counted or dropped.
    pub fn check_attribution(&self, now: Cycle, sink: &mut InvariantSink) {
        if !sink.enabled() {
            return;
        }
        let observed = self.observed_bytes_by_class();
        for (idx, &seen) in observed.iter().enumerate() {
            let class = TrafficClass(idx as u8);
            let attributed = self.ledger.bytes_in_class(class);
            if attributed != seen {
                sink.report("attribution-conservation", now.0, || {
                    format!(
                        "class {idx}: ledger attributed {attributed} bytes \
                         but devices observed {seen}"
                    )
                });
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{BloatCategory, MemTraffic};

    fn harness() -> DeviceHarness {
        DeviceHarness::new(
            DramConfig::stacked_cache_8x(),
            DramConfig::commodity_memory(),
        )
    }

    fn loc(channel: u32, bank: u32, row: u64) -> DramLocation {
        DramLocation {
            channel,
            rank: 0,
            bank,
            row,
        }
    }

    fn run(h: &mut DeviceHarness, want: usize, max: u64) -> Vec<RoutedCompletion> {
        let mut out = Vec::new();
        let mut t = Cycle(0);
        while out.len() < want && t.0 < max {
            h.tick(t, &mut out);
            t += 1;
        }
        out
    }

    #[test]
    fn cache_read_completion_routed_with_txn_and_leg() {
        let mut h = harness();
        h.cache_read(
            42,
            Leg::CacheProbe,
            loc(0, 0, 1),
            5,
            BloatCategory::MissProbe.class(),
            Cycle(0),
        );
        let done = run(&mut h, 1, 10_000);
        assert_eq!(done[0].txn, 42);
        assert_eq!(done[0].leg, Leg::CacheProbe);
        assert_eq!(h.cache.bytes_in_class(BloatCategory::MissProbe.class()), 80);
    }

    #[test]
    fn posted_writes_complete_silently() {
        let mut h = harness();
        h.cache_write(
            7,
            loc(1, 0, 1),
            5,
            BloatCategory::MissFill.class(),
            Cycle(0),
        );
        let mut out = Vec::new();
        for t in 0..5_000u64 {
            h.tick(Cycle(t), &mut out);
        }
        assert!(out.is_empty(), "posted write must not be routed");
        assert_eq!(h.cache.bytes_in_class(BloatCategory::MissFill.class()), 80);
        assert_eq!(h.pending(), 0);
    }

    #[test]
    fn mem_read_and_write_are_mapped_and_counted() {
        let mut h = harness();
        h.mem_read(1, 0x1000, MemTraffic::DemandRead.class(), Cycle(0));
        h.mem_write(2, 0x2000, MemTraffic::VictimWrite.class(), Cycle(0));
        let done = run(&mut h, 1, 100_000);
        assert_eq!(done[0].leg, Leg::MemRead);
        assert_eq!(h.mem.bytes_in_class(MemTraffic::DemandRead.class()), 64);
        // Writes are posted and drain after reads; keep ticking.
        let mut out = Vec::new();
        let mut t = Cycle(100_000);
        while h.pending() > 0 {
            h.tick(t, &mut out);
            t += 1;
            assert!(t.0 < 1_000_000, "write never drained");
        }
        assert_eq!(h.mem.bytes_in_class(MemTraffic::VictimWrite.class()), 64);
    }

    #[test]
    fn retry_queue_applies_backpressure_without_loss() {
        let mut h = DeviceHarness::new(
            {
                let mut c = DramConfig::stacked_cache_8x();
                c.read_queue_capacity = 2;
                c
            },
            DramConfig::commodity_memory(),
        );
        for i in 0..20 {
            h.cache_read(
                i,
                Leg::CacheProbe,
                loc(0, 0, i),
                5,
                BloatCategory::Hit.class(),
                Cycle(0),
            );
        }
        assert!(h.retry_depth() > 0 || h.pending() == 20);
        let done = run(&mut h, 20, 1_000_000);
        assert_eq!(done.len(), 20, "all requests eventually serviced");
        assert_eq!(h.pending(), 0);
    }

    #[test]
    fn ledger_matches_devices_at_every_tick() {
        use bear_sim::invariants::{CheckMode, InvariantSink};
        let mut h = harness();
        let mut sink = InvariantSink::new(CheckMode::Record);
        h.cache_read(
            1,
            Leg::CacheProbe,
            loc(0, 0, 1),
            5,
            BloatCategory::MissProbe.class(),
            Cycle(0),
        );
        h.cache_write(
            2,
            loc(1, 0, 2),
            5,
            BloatCategory::MissFill.class(),
            Cycle(0),
        );
        h.mem_read(3, 0x1000, MemTraffic::DemandRead.class(), Cycle(0));
        h.mem_write(4, 0x2000, MemTraffic::VictimWrite.class(), Cycle(0));
        let mut out = Vec::new();
        let mut t = Cycle(0);
        while h.pending() > 0 && t.0 < 1_000_000 {
            h.tick(t, &mut out);
            h.check_attribution(t, &mut sink);
            h.check_byte_conservation(t, &mut sink);
            t += 1;
        }
        assert_eq!(h.pending(), 0);
        assert!(sink.violations().is_empty(), "{:?}", sink.violations());
        // Fully drained: attribution equals the device meters exactly.
        assert_eq!(
            h.ledger().bytes_in_class(BloatCategory::MissProbe.class()),
            h.cache.bytes_in_class(BloatCategory::MissProbe.class())
        );
        assert_eq!(
            h.ledger().total(),
            h.cache.total_bytes() + h.mem.total_bytes()
        );
    }

    #[test]
    fn ledger_survives_stats_reset_with_queued_work() {
        use bear_sim::invariants::{CheckMode, InvariantSink};
        let mut h = harness();
        for i in 0..12 {
            h.cache_read(
                i,
                Leg::CacheProbe,
                loc(0, 0, i),
                5,
                BloatCategory::Hit.class(),
                Cycle(0),
            );
            h.mem_write(
                100 + i,
                0x3000 + i * 64,
                MemTraffic::Writeback.class(),
                Cycle(0),
            );
        }
        // Advance a little so some requests are mid-flight, then reset.
        let mut out = Vec::new();
        for t in 0..40u64 {
            h.tick(Cycle(t), &mut out);
        }
        h.reset_device_stats();
        let mut sink = InvariantSink::new(CheckMode::Record);
        h.check_attribution(Cycle(40), &mut sink);
        let mut t = Cycle(41);
        while h.pending() > 0 && t.0 < 1_000_000 {
            h.tick(t, &mut out);
            h.check_attribution(t, &mut sink);
            t += 1;
        }
        assert!(sink.violations().is_empty(), "{:?}", sink.violations());
    }

    #[test]
    fn corrupted_ledger_trips_the_invariant() {
        use bear_sim::invariants::{CheckMode, InvariantSink};
        let mut h = harness();
        h.cache_read(
            1,
            Leg::CacheProbe,
            loc(0, 0, 1),
            5,
            BloatCategory::Hit.class(),
            Cycle(0),
        );
        h.corrupt_ledger();
        let mut sink = InvariantSink::new(CheckMode::Record);
        h.check_attribution(Cycle(0), &mut sink);
        assert_eq!(sink.violations().len(), 1);
        assert!(sink.violations()[0].detail.contains("ledger attributed"));
    }

    #[test]
    fn distinct_legs_of_one_txn_distinguished() {
        let mut h = harness();
        h.cache_read(
            9,
            Leg::CacheProbe,
            loc(0, 0, 1),
            5,
            BloatCategory::MissProbe.class(),
            Cycle(0),
        );
        h.mem_read(9, 0x40, MemTraffic::DemandRead.class(), Cycle(0));
        let done = run(&mut h, 2, 100_000);
        let legs: std::collections::HashSet<_> = done.iter().map(|c| c.leg).collect();
        assert!(legs.contains(&Leg::CacheProbe));
        assert!(legs.contains(&Leg::MemRead));
        assert!(done.iter().all(|c| c.txn == 9));
    }
}
